"""pdclint core: the rule protocol, suppression directives, and entry points.

The analyzer is a classic rule engine: each rule is a class with a stable
id (``PDC1xx`` for Python AST rules, ``PDC2xx`` for C pragma rules), a
severity, a one-line summary, and a fix hint.  Rules walk a parsed
:class:`SourceFile` and yield :class:`~repro.analysis.diagnostics.Diagnostic`
records; the engine partitions the findings against ``pdclint`` suppression
directives and packs everything into the same
:class:`~repro.analysis.diagnostics.AnalysisReport` the dynamic engines
emit, so ``repro lint`` and ``repro analyze`` share one report format.

Suppression syntax (Python ``#`` comments and C ``/* */`` or ``//``
comments alike)::

    counter.unsafe_read_modify_write(1)  # pdclint: disable=PDC101
    # pdclint: disable=PDC103,PDC104   <- standalone: applies file-wide
    balance = balance + 1;  /* pdclint: disable=PDC202 */

A trailing directive suppresses matching findings reported on its own
line; a directive on a line of its own suppresses them for the whole
file.  ``disable=all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from ..diagnostics import ERROR, AnalysisReport, Diagnostic

__all__ = [
    "ENGINE",
    "Rule",
    "SKIP_DIRS",
    "SourceFile",
    "Suppressions",
    "register_rule",
    "all_rules",
    "rule_ids",
    "scan_suppressions",
    "lint_source",
    "lint_path",
    "lint_patternlet",
    "lint_targets",
]

ENGINE = "pdclint"

PY_SUFFIXES = frozenset({".py"})
C_SUFFIXES = frozenset({".c", ".h"})

_DIRECTIVE_RE = re.compile(r"pdclint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")
_COMMENT_STARTS = ("#", "//", "/*")


@dataclass
class SourceFile:
    """One parsed unit of learner code handed to the rules.

    ``tree`` is the Python AST (``language == "python"``); ``pragmas`` is
    the parsed ``#pragma omp`` directive list (``language == "c"``).
    ``cache`` lets rules share per-file derived facts (e.g. the set of
    parallel-body functions) without recomputing them.
    """

    label: str
    text: str
    language: str  # "python" | "c"
    lines: list[str] = field(default_factory=list)
    tree: ast.Module | None = None
    pragmas: list[Any] = field(default_factory=list)
    cache: dict[str, Any] = field(default_factory=dict)


class Rule:
    """Base class for one pdclint rule."""

    id: str = ""
    name: str = ""  # machine-readable kind slug, e.g. "shared-write-in-parallel"
    severity: str = ERROR
    summary: str = ""
    fix_hint: str = ""
    language: str = "python"
    #: opt-in rules stay dormant unless explicitly enabled (or selected);
    #: the cost/scalability rules use this so `repro lint` stays fast by
    #: default and `repro lint --cost` turns the analysis on.
    opt_in: bool = False

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        src: SourceFile,
        line: int,
        message: str,
        severity: str | None = None,
        **details: Any,
    ) -> Diagnostic:
        return Diagnostic(
            kind=self.name,
            severity=severity or self.severity,
            message=message,
            location=f"{src.label}:{line}",
            details={"rule": self.id, "fix": self.fix_hint, **details},
        )


_RULES: list[Rule] = []


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    if not (cls.id and cls.name and cls.summary):
        raise ValueError(f"rule {cls.__name__} is missing id/name/summary")
    if any(r.id == cls.id for r in _RULES):
        raise ValueError(f"duplicate pdclint rule id {cls.id}")
    _RULES.append(cls())
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id (imports register on demand)."""
    from . import costrules, cpragma, protorules, pyrules  # noqa: F401  (registers rules)

    return sorted(_RULES, key=lambda r: r.id)


def rule_ids() -> list[str]:
    return [r.id for r in all_rules()]


@dataclass(frozen=True)
class Suppressions:
    """The pdclint directives found in one source file."""

    line_ids: dict[int, frozenset[str]]
    file_ids: frozenset[str]

    def covers(self, rule_id: str, line: int | None) -> bool:
        for ids in (self.file_ids, self.line_ids.get(line or -1, frozenset())):
            if "all" in ids or rule_id in ids:
                return True
        return False


def scan_suppressions(lines: Sequence[str]) -> Suppressions:
    line_ids: dict[int, frozenset[str]] = {}
    file_ids: set[str] = set()
    for num, line in enumerate(lines, start=1):
        match = _DIRECTIVE_RE.search(line)
        if not match:
            continue
        ids = frozenset(t.strip() for t in match.group(1).split(",") if t.strip())
        if line.strip().startswith(_COMMENT_STARTS):
            file_ids |= ids
        else:
            line_ids[num] = line_ids.get(num, frozenset()) | ids
    return Suppressions(line_ids, frozenset(file_ids))


def _normalize_ids(ids: Iterable[str] | str | None) -> frozenset[str] | None:
    if ids is None:
        return None
    if isinstance(ids, str):
        ids = [part for part in re.split(r"[,\s]+", ids) if part]
    wanted = frozenset(i.upper() for i in ids)
    known = frozenset(rule_ids())
    unknown = sorted(wanted - known)
    if unknown:
        raise ValueError(
            f"unknown pdclint rule id(s) {unknown}; known: {sorted(known)}"
        )
    return wanted


def _active_rules(
    language: str,
    select: frozenset[str] | None,
    ignore: frozenset[str] | None,
    enable: frozenset[str] | None = None,
) -> list[Rule]:
    enabled = enable or frozenset()
    rules = [
        r for r in all_rules()
        if r.language == language
        and (not r.opt_in or r.id in enabled
             or (select is not None and r.id in select))
    ]
    if select is not None:
        rules = [r for r in rules if r.id in select]
    if ignore is not None:
        rules = [r for r in rules if r.id not in ignore]
    return rules


def _location_line(diagnostic: Diagnostic) -> int | None:
    location = diagnostic.location or ""
    _, _, tail = location.rpartition(":")
    return int(tail) if tail.isdigit() else None


def _statement_spans(tree: ast.Module) -> dict[int, str]:
    """Full ``line:col-endLine:endCol`` span of the statement at each line.

    ``ast.walk`` is breadth-first, so ``setdefault`` keeps the outermost
    statement starting on a line — a finding anchored at a loop header
    annotates the whole construct.  Columns are 1-based (the AST's
    exclusive 0-based ``end_col_offset`` is exactly the inclusive 1-based
    end column).
    """
    spans: dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.end_lineno is not None:
            spans.setdefault(
                node.lineno,
                f"{node.lineno}:{node.col_offset + 1}"
                f"-{node.end_lineno}:{node.end_col_offset}",
            )
    return spans


def lint_source(
    text: str,
    label: str,
    language: str = "python",
    select: Iterable[str] | str | None = None,
    ignore: Iterable[str] | str | None = None,
    report: AnalysisReport | None = None,
    enable: Iterable[str] | str | None = None,
) -> AnalysisReport:
    """Lint one source text and return (or extend) an :class:`AnalysisReport`."""
    if report is None:
        report = AnalysisReport(target=label, engine=ENGINE)
    src = SourceFile(label=label, text=text, language=language,
                     lines=text.splitlines())
    found: list[Diagnostic] = []

    if language == "python":
        try:
            src.tree = ast.parse(text, filename=label)
        except SyntaxError as exc:
            report.add(Diagnostic(
                kind="parse-error",
                severity=ERROR,
                message=f"could not parse Python source: {exc.msg}",
                location=f"{label}:{exc.lineno or 0}",
                details={"rule": "parse-error"},
            ))
            return report
    elif language == "c":
        from .cpragma import parse_source

        src.pragmas, parse_diags = parse_source(text, label)
        found.extend(parse_diags)
    else:
        raise ValueError(f"unknown lint language {language!r}")

    for rule in _active_rules(language, _normalize_ids(select),
                              _normalize_ids(ignore), _normalize_ids(enable)):
        found.extend(rule.check(src))

    spans = _statement_spans(src.tree) if src.tree is not None else {}
    suppressions = scan_suppressions(src.lines)
    seen: set[tuple[str, str | None, str]] = set()
    for diagnostic in found:
        key = (diagnostic.kind, diagnostic.location, diagnostic.message)
        if key in seen:
            continue
        seen.add(key)
        line = _location_line(diagnostic)
        if line in spans and "span" not in diagnostic.details:
            diagnostic.details["span"] = spans[line]
        rule_id = str(diagnostic.details.get("rule", ""))
        if suppressions.covers(rule_id, _location_line(diagnostic)):
            report.add_suppressed(diagnostic)
        else:
            report.add(diagnostic)
    return report


def _label(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


#: directory names whose contents are never learner code
SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".pytest_cache",
                       ".ruff_cache", "node_modules"})


def _collect_files(path: Path) -> list[Path]:
    files = []
    for p in sorted(path.rglob("*")):
        if not p.is_file() or p.suffix not in (PY_SUFFIXES | C_SUFFIXES):
            continue
        relative = p.relative_to(path)
        if any(part in SKIP_DIRS for part in relative.parts[:-1]):
            continue
        files.append(p)
    return files


def lint_path(
    path: str | Path,
    select: Iterable[str] | str | None = None,
    ignore: Iterable[str] | str | None = None,
    report: AnalysisReport | None = None,
    target: str | None = None,
    enable: Iterable[str] | str | None = None,
) -> AnalysisReport:
    """Lint a file, or every ``.py``/``.c``/``.h`` file under a directory.

    Directory walks are defensive: ``__pycache__``-style tool directories
    are pruned, unreadable or non-UTF-8 files are skipped with a note in
    the report (never an exception), and empty files are noted rather
    than run through the rule set.
    """
    path = Path(path)
    if report is None:
        report = AnalysisReport(target=target or _label(path), engine=ENGINE)
    if path.is_dir():
        files = _collect_files(path)
    elif path.is_file():
        files = [path]
    else:
        raise FileNotFoundError(f"no such file or directory: {path}")
    for file in files:
        language = "python" if file.suffix in PY_SUFFIXES else "c"
        try:
            text = file.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            report.notes.append(f"skipped {_label(file)}: not UTF-8 text")
            continue
        except OSError as exc:
            report.notes.append(f"skipped {_label(file)}: {exc.strerror or exc}")
            continue
        if not text.strip():
            report.notes.append(f"skipped {_label(file)}: empty file")
            continue
        lint_source(text, _label(file), language,
                    select=select, ignore=ignore, report=report,
                    enable=enable)
    return report


def lint_patternlet(
    name: str,
    paradigm: str | None = None,
    select: Iterable[str] | str | None = None,
    ignore: Iterable[str] | str | None = None,
    report: AnalysisReport | None = None,
    enable: Iterable[str] | str | None = None,
) -> AnalysisReport:
    """Lint a registered patternlet: its Python runner and its C listing.

    The runner's defining file is linted whole (rules need module context),
    then findings are narrowed to the runner's own line span, so linting
    ``critical`` does not surface the intentional bug of ``race`` defined
    in the same module.
    """
    from ..runner import _resolve

    paradigm, patternlet = _resolve(name, paradigm)
    target = f"{paradigm}:{name}"
    if report is None:
        report = AnalysisReport(target=target, engine=ENGINE)

    source_file = patternlet.source_file
    if source_file:
        path = Path(source_file)
        sub = lint_source(path.read_text(), _label(path), "python",
                          select=select, ignore=ignore, enable=enable)
        lo, hi = patternlet.source_span
        for diagnostic in sub.diagnostics:
            line = _location_line(diagnostic)
            if line is None or lo <= line <= hi:
                report.add(diagnostic)
        for diagnostic in sub.suppressed:
            line = _location_line(diagnostic)
            if line is None or lo <= line <= hi:
                report.add_suppressed(diagnostic)

    listing = patternlet.c_listing
    if listing is not None:
        lint_source(listing, f"clisting:{name}", "c",
                    select=select, ignore=ignore, report=report)
    return report


def lint_targets(
    targets: Sequence[str],
    select: Iterable[str] | str | None = None,
    ignore: Iterable[str] | str | None = None,
    enable: Iterable[str] | str | None = None,
) -> AnalysisReport:
    """Lint a mix of paths and patternlet names into one combined report.

    The special target ``clistings`` runs the C-listing consistency check
    (every ``C_LISTINGS`` entry parses and names a registered patternlet).
    """
    report = AnalysisReport(target=" ".join(str(t) for t in targets),
                            engine=ENGINE)
    for target in targets:
        path = Path(target)
        if path.exists():
            lint_path(path, select=select, ignore=ignore, report=report,
                      enable=enable)
        elif target == "clistings":
            from .cpragma import check_clistings

            report.extend(check_clistings())
        else:
            lint_patternlet(target, select=select, ignore=ignore,
                            report=report, enable=enable)
    return report
