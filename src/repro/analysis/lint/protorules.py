"""MPI protocol rules backed by the static checker in ``analysis.flow``.

PDC103/PDC104 used to be lexical pattern matches; they are now fed by
:func:`repro.analysis.flow.protocol.check_protocol`, which evaluates each
SPMD body once per rank and plays the resulting send/recv/collective
traces against each other.  Three new rules report what only the
simulation can see:

* **PDC110** — an asymmetric message-wait cycle (rank 0 waits on rank 1
  which waits on rank 0, through different code paths);
* **PDC111** — every rank calls the same collectives but in different
  orders;
* **PDC112** — send/recv count mismatches: a ``recv`` whose sender
  finishes without sending (error), or buffered sends nobody receives
  (warning).

When a body is :class:`~repro.analysis.flow.protocol.Ambiguous` — a
``while`` loop around communication, a wildcard source — PDC103/PDC104
fall back to the old lexical heuristics and the protocol-only rules stay
silent: ambiguity never creates findings.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import ERROR, WARNING, Diagnostic
from ..flow.protocol import ProtocolFinding, spmd_roots
from ..scale.symbolic import check_protocol_symbolic
from .engine import Rule, SourceFile, register_rule

_SEND_METHODS = frozenset({"send", "Send", "ssend", "Ssend"})
_RECV_METHODS = frozenset({"recv", "Recv"})
_COLLECTIVE_METHODS = frozenset({
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce", "allreduce", "Allreduce", "allgather", "Allgather",
    "alltoall", "Alltoall", "barrier", "Barrier", "scan", "Scan", "exscan",
})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _protocol_results(src: SourceFile) -> dict:
    """Run the protocol checker once per source file; cache the verdicts.

    Each SPMD root is checked *symbolically* — the concrete simulator is
    replayed at every world size up to the rank-set domain cutoff — so a
    finding's details carry the smallest witness world size and the full
    list of sizes exhibiting it.  A root lands in ``ambiguous`` only when
    not even one world size could be simulated; roots that simulated some
    sizes but had to abstain from the universal claim are still
    ``analyzed`` (their concrete findings stand), with the abstention
    recorded in ``verdicts``.
    """
    if "protocol" not in src.cache:
        findings: list[ProtocolFinding] = []
        ambiguous: list[ast.AST] = []
        analyzed: list[ast.AST] = []
        verdicts: list[tuple[ast.AST, object]] = []
        if src.tree is not None:
            for root in spmd_roots(src.tree):
                verdict = check_protocol_symbolic(root, src.tree)
                verdicts.append((root, verdict))
                if not verdict.checked:
                    ambiguous.append(root)
                else:
                    analyzed.append(root)
                    findings.extend(verdict.findings)
        src.cache["protocol"] = {
            "findings": findings,
            "ambiguous": ambiguous,
            "analyzed": analyzed,
            "verdicts": verdicts,
        }
    return src.cache["protocol"]


def _yield_protocol(rule: Rule, src: SourceFile, rule_id: str) -> Iterator[Diagnostic]:
    seen: set[tuple] = set()
    for finding in _protocol_results(src)["findings"]:
        if finding.rule != rule_id:
            continue
        key = (finding.line, finding.message)
        if key in seen:
            continue
        seen.add(key)
        message = finding.message
        witness = finding.details.get("witness_p")
        if isinstance(witness, int) and witness > 2:
            # invisible to the old size-2 simulation: name the witness
            message = f"{message} (witness: P={witness})"
        yield rule.diag(src, finding.line, message,
                        severity=finding.severity, **finding.details)


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "rank" in sub.id.lower():
            return True
        if isinstance(sub, ast.Call) and _call_name(sub).lower() == "get_rank":
            return True
    return False


def _body_stmts(node: ast.AST) -> list[ast.stmt]:
    if isinstance(node, ast.Lambda):
        return [ast.Expr(value=node.body)]
    return list(getattr(node, "body", []))


@register_rule
class SymmetricDeadlock(Rule):
    id = "PDC103"
    name = "symmetric-deadlock"
    severity = ERROR
    summary = ("blocking send/recv issued in the same order by every rank "
               "(the ring/exchange deadlock shape)")
    fix_hint = ("break the symmetry: alternate the send/recv order by rank "
                "parity, or use comm.sendrecv() which pairs them safely")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        yield from _yield_protocol(self, src, "PDC103")
        # lexical fallback for bodies the evaluator could not follow
        for body in _protocol_results(src)["ambiguous"]:
            ops: list[tuple[str, int]] = []
            self._collect(_body_stmts(body), ops)
            if not ops:
                continue
            first_kind, first_line = ops[0]
            rest = {kind for kind, _ in ops[1:]}
            if first_kind == "recv" and "send" in rest:
                yield self.diag(
                    src, first_line,
                    "every rank blocks in recv() before reaching its send() "
                    "— the symmetric exchange deadlocks",
                )
            elif first_kind == "send" and "recv" in rest:
                yield self.diag(
                    src, first_line,
                    "every rank send()s before it recv()s; blocking sends "
                    "deadlock as soon as messages stop fitting in buffers",
                    severity=WARNING,
                )

    def _collect(self, stmts: list[ast.stmt], ops: list[tuple[str, int]]) -> bool:
        """Gather p2p calls on the all-ranks path; False stops the scan."""
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                # A rank-conditional branch that returns splits the ranks
                # for good: everything after runs on a subset only.
                if _mentions_rank(stmt.test) and any(
                    isinstance(sub, (ast.Return, ast.Raise))
                    for node in stmt.body + stmt.orelse
                    for sub in ast.walk(node)
                ):
                    return False
                continue  # conditional code: not executed by all ranks
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return False
            if isinstance(stmt, (ast.For, ast.While)):
                if not self._collect(stmt.body, ops):
                    return False
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    method = _call_name(sub)
                    if method in _SEND_METHODS:
                        ops.append(("send", sub.lineno))
                    elif method in _RECV_METHODS:
                        ops.append(("recv", sub.lineno))
        return True


@register_rule
class CollectiveInRankBranch(Rule):
    id = "PDC104"
    name = "collective-in-rank-branch"
    severity = ERROR
    summary = "collective call not matched across the ranks' control flow"
    fix_hint = ("collectives must be called by every rank: hoist the call "
                "out of the conditional and use its root=... argument to "
                "distinguish the root's role")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        yield from _yield_protocol(self, src, "PDC104")
        # Lexical scan for code the evaluator did not cover: ambiguous
        # roots and If statements outside any analyzed SPMD body.
        results = _protocol_results(src)
        covered: set[int] = set()
        for root in results["analyzed"]:
            for sub in ast.walk(root):
                if isinstance(sub, ast.If):
                    covered.add(id(sub))
        if src.tree is None:
            return
        for node in ast.walk(src.tree):
            if id(node) in covered:
                continue
            if not (isinstance(node, ast.If) and _mentions_rank(node.test)):
                continue
            body_calls = self._collectives(node.body)
            else_calls = self._collectives(node.orelse)
            body_methods = {m for m, _ in body_calls}
            else_methods = {m for m, _ in else_calls}
            for method, line in body_calls:
                if method not in else_methods:
                    yield self._finding(src, method, line)
            for method, line in else_calls:
                if method not in body_methods:
                    yield self._finding(src, method, line)

    def _finding(self, src: SourceFile, method: str, line: int) -> Diagnostic:
        return self.diag(
            src, line,
            f"collective '{method}' is only reached by a subset of ranks "
            "(it sits inside a rank conditional); the other ranks never "
            "enter the collective and the program hangs",
            collective=method,
        )

    @staticmethod
    def _collectives(stmts: list[ast.stmt]) -> list[tuple[str, int]]:
        calls = []
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _COLLECTIVE_METHODS):
                    calls.append((sub.func.attr, sub.lineno))
        return calls


@register_rule
class MessageWaitCycle(Rule):
    id = "PDC110"
    name = "message-wait-cycle"
    severity = ERROR
    summary = ("ranks deadlock in an asymmetric message-wait cycle found by "
               "static per-rank trace matching")
    fix_hint = ("draw the send/recv arrows per rank: some rank must send "
                "before it receives to break the cycle, or use "
                "comm.sendrecv() for paired exchanges")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        yield from _yield_protocol(self, src, "PDC110")


@register_rule
class CollectiveOrderMismatch(Rule):
    id = "PDC111"
    name = "collective-order-mismatch"
    severity = ERROR
    summary = "ranks call the same collectives in different program orders"
    fix_hint = ("reorder so every rank issues collective calls in the same "
                "sequence; collective matching is by call order, not by name")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        yield from _yield_protocol(self, src, "PDC111")


@register_rule
class SendRecvCountMismatch(Rule):
    id = "PDC112"
    name = "send-recv-count-mismatch"
    severity = ERROR
    summary = "sends and receives do not pair up across the ranks"
    fix_hint = ("count messages per (source, dest, tag): every recv() needs "
                "a matching send() and vice versa; loop bounds that differ "
                "by rank are the usual culprit")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        yield from _yield_protocol(self, src, "PDC112")
