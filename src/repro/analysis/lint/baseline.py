"""Baseline ratchets, CI annotations, and exploration seeds for pdclint.

Three small consumers of an :class:`~repro.analysis.diagnostics.AnalysisReport`:

* **Baseline ratchet** — ``repro lint --baseline known.json`` moves every
  finding whose fingerprint appears in the baseline file into the
  ``suppressed`` bucket, so legacy debt stays visible but non-fatal while
  *new* findings still fail the build.  Fingerprints deliberately omit the
  line number (``rule|file|message``) so unrelated edits above a known
  finding do not break the ratchet; ``--update-baseline`` rewrites the
  file from the current findings, which is how the debt shrinks.
* **GitHub annotations** — ``--format github`` renders findings as
  ``::error file=...,line=...`` workflow commands so CI runs mark up the
  diff in place.
* **Exploration seeds** — :func:`explore_hints` distills the static
  findings (including suppressed teaching bugs) into racy/deadlock hint
  lists that ``repro explore --seed-from-lint`` uses to prioritize
  conflict-flipping schedules.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..diagnostics import ERROR, AnalysisReport, Diagnostic

__all__ = [
    "RACY_RULES",
    "DEADLOCK_RULES",
    "finding_fingerprint",
    "BaselineDelta",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
    "render_github",
    "explore_hints",
]

#: Rules whose findings point at thread-interleaving (schedule) bugs.
RACY_RULES = frozenset({"PDC101", "PDC105", "PDC107", "PDC108", "PDC202"})
#: Rules whose findings point at blocking/communication (deadlock) bugs.
DEADLOCK_RULES = frozenset({
    "PDC102", "PDC103", "PDC104", "PDC106",
    "PDC110", "PDC111", "PDC112", "PDC201",
})


def finding_fingerprint(diagnostic: Diagnostic) -> str:
    """Stable identity of one finding: ``rule|file|message`` (no line)."""
    location = diagnostic.location or ""
    label, _, tail = location.rpartition(":")
    if not tail.isdigit():
        label = location
    rule = str(diagnostic.details.get("rule", ""))
    return f"{rule}|{label}|{diagnostic.message}"


@dataclass(frozen=True)
class BaselineDelta:
    """What one ``--update-baseline`` run changed.

    ``added`` are fingerprints newly accepted into the baseline — the
    ratchet loosening, which the CLI reports loudly; ``removed`` are
    stale fingerprints pruned because the finding no longer exists —
    the ratchet tightening, which is the expected direction of travel.
    """

    path: Path
    added: tuple[str, ...]
    removed: tuple[str, ...]
    total: int

    def summary(self) -> str:
        parts = [f"{self.total} finding(s) accepted"]
        if self.added:
            parts.append(f"+{len(self.added)} new")
        if self.removed:
            parts.append(f"-{len(self.removed)} pruned")
        return ", ".join(parts)


def write_baseline(report: AnalysisReport, path: str | Path) -> BaselineDelta:
    """Record the report's current findings as the accepted baseline.

    Always writes exactly the current findings — stale fingerprints from
    a previous baseline are pruned, never carried forward — and returns
    the delta against whatever the file held before (multiset-style, so
    a third instance of a twice-baselined finding counts as added).
    """
    path = Path(path)
    previous: list[str] = []
    if path.is_file():
        try:
            previous = load_baseline(path)
        except (ValueError, OSError):
            previous = []  # unreadable/foreign file: treat as empty
    current = sorted(finding_fingerprint(d) for d in report.diagnostics)
    before = Counter(previous)
    after = Counter(current)
    added = sorted((after - before).elements())
    removed = sorted((before - after).elements())
    payload = {
        "engine": report.engine,
        "fingerprints": current,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return BaselineDelta(path=path, added=tuple(added),
                         removed=tuple(removed), total=len(current))


def load_baseline(path: str | Path) -> list[str]:
    payload = json.loads(Path(path).read_text())
    fingerprints = payload.get("fingerprints")
    if not isinstance(fingerprints, list):
        raise ValueError(f"{path}: not a pdclint baseline (no fingerprint list)")
    return [str(f) for f in fingerprints]


def apply_baseline(report: AnalysisReport, fingerprints: list[str]) -> AnalysisReport:
    """Move baselined findings to ``suppressed``; leave new ones fatal.

    Matching is multiset-style: three identical legacy findings in the
    baseline excuse at most three in the report, so *adding* a fourth
    instance of a known mistake still fails.
    """
    budget = Counter(fingerprints)
    kept: list[Diagnostic] = []
    for diagnostic in report.diagnostics:
        fingerprint = finding_fingerprint(diagnostic)
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            report.add_suppressed(diagnostic)
        else:
            kept.append(diagnostic)
    report.diagnostics[:] = kept
    return report


#: the engine's ``details["span"]`` format: ``line:col-endLine:endCol``
_SPAN_RE = re.compile(r"(\d+):(\d+)-(\d+):(\d+)$")


def render_github(report: AnalysisReport) -> str:
    """Findings as GitHub Actions workflow commands, one per line.

    When the engine attached a full statement span the annotation carries
    ``endLine``/``col``/``endColumn`` so the diff markup highlights the
    whole flagged construct, not just its first line.
    """
    lines = []
    for diagnostic in report.sorted_diagnostics():
        location = diagnostic.location or ""
        label, _, tail = location.rpartition(":")
        file, line = (label, tail) if tail.isdigit() else (location, "1")
        level = "error" if diagnostic.severity == ERROR else "warning"
        rule = str(diagnostic.details.get("rule", diagnostic.kind))
        message = diagnostic.message.replace("\n", " ")
        span = ""
        match = _SPAN_RE.match(str(diagnostic.details.get("span", "")))
        if match and match.group(1) == line:
            span = (f",endLine={match.group(3)},col={match.group(2)}"
                    f",endColumn={match.group(4)}")
        lines.append(
            f"::{level} file={file},line={line}{span},"
            f"title=pdclint {rule}::{message}"
        )
    lines.append(
        f"pdclint: {len(report.errors)} error(s), "
        f"{len(report.warnings)} warning(s), "
        f"{len(report.suppressed)} suppressed/baselined"
    )
    return "\n".join(lines)


def explore_hints(report: AnalysisReport) -> dict[str, Any]:
    """Racy/deadlock hints for schedule exploration, from static findings.

    Suppressed findings count too: the curriculum's intentional bugs are
    annotated with ``pdclint: disable=...`` precisely so the linter knows
    about them, and they are what exploration should aim at.
    """
    hints: dict[str, Any] = {"racy": [], "deadlock": []}
    for diagnostic in (*report.diagnostics, *report.suppressed):
        rule = str(diagnostic.details.get("rule", ""))
        entry = {
            "rule": rule,
            "kind": diagnostic.kind,
            "location": diagnostic.location,
        }
        if rule in RACY_RULES:
            hints["racy"].append(entry)
        elif rule in DEADLOCK_RULES:
            hints["deadlock"].append(entry)
    return hints
