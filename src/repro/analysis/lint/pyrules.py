"""Python AST rules: the mistakes remote learners actually make.

Each rule targets one failure shape from the patternlet curriculum, phrased
against the ``repro.openmp`` / ``repro.mpi`` teaching APIs.  Since the
``repro.analysis.flow`` package landed, the shared-memory rules reason on
control-flow and may-happen-in-parallel facts instead of lexical pattern
matching:

* **PDC101** — write to a closure/shared variable inside a
  ``parallel_region``/``parallel_for`` body with *no* lock held on any
  path (flow-sensitive: ``with critical():``, ``with lock:`` and
  ``acquire()/release()`` pairing all count, and writes reached through a
  one-level helper are seen via the call graph);
* **PDC102** — ``barrier()`` reachable from inside a ``single``/``master``
  construct: only some threads arrive, the team hangs;
* **PDC105** — loop-carried dependence hints (neighbor indexing) in
  ``parallel_for`` bodies;
* **PDC106** — ``lock.acquire()`` with no matching ``release()``, either
  by count in the function or — new — on an early-``return`` path the
  CFG shows skipping the release;
* **PDC107** — a parallel body assigns a variable *without* declaring it
  ``nonlocal``, and the enclosing function reads the stale outer binding
  after the region: the classic forgotten-``nonlocal`` flag bug;
* **PDC108** — a shared write is lock-guarded on *some* paths but not
  all of them — worse than unguarded, because the guarded path passes
  every test that happens to take it.

The MPI protocol rules (PDC103/PDC104/PDC110–PDC112) live in
:mod:`.protorules`, backed by the static protocol checker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import ERROR, WARNING, Diagnostic
from ..flow.callgraph import build_callgraph
from ..flow.cfg import build_cfg
from ..flow.mhp import MHPAnalysis, StmtFacts, stmt_exec_nodes
from .engine import Rule, SourceFile, register_rule

#: callable-position of the body argument in each parallel launcher
_PARALLEL_LAUNCHERS = {"parallel_region": 0, "parallel_sections": 0,
                       "parallel_for": 1, "for_loop": 1}
_LOOP_LAUNCHERS = ("parallel_for", "for_loop")


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested functions."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _function_defs(src: SourceFile) -> dict[str, list[ast.FunctionDef]]:
    if "function_defs" not in src.cache:
        defs: dict[str, list[ast.FunctionDef]] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, []).append(node)
        src.cache["function_defs"] = defs
    return src.cache["function_defs"]


def _callable_arg(src: SourceFile, call: ast.Call, position: int) -> list[ast.AST]:
    """Resolve the callable passed at ``position``: lambdas and local defs."""
    if len(call.args) <= position:
        return []
    arg = call.args[position]
    if isinstance(arg, ast.Lambda):
        return [arg]
    if isinstance(arg, ast.Name):
        return list(_function_defs(src).get(arg.id, []))
    return []


def _launch_sites(src: SourceFile) -> list[tuple[ast.Call, ast.AST, str]]:
    """Every ``(launcher call, body function, launcher name)`` triple."""
    if "launch_sites" not in src.cache:
        sites: list[tuple[ast.Call, ast.AST, str]] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            launcher = _call_name(node)
            position = _PARALLEL_LAUNCHERS.get(launcher)
            if position is None:
                continue
            for body in _callable_arg(src, node, position):
                sites.append((node, body, launcher))
        src.cache["launch_sites"] = sites
    return src.cache["launch_sites"]


def _parallel_bodies(src: SourceFile) -> list[tuple[ast.AST, str]]:
    """Every function/lambda passed as the body of a parallel launcher."""
    if "parallel_bodies" not in src.cache:
        bodies: list[tuple[ast.AST, str]] = []
        seen: set[int] = set()
        for _, body, launcher in _launch_sites(src):
            if id(body) not in seen:
                seen.add(id(body))
                bodies.append((body, launcher))
        src.cache["parallel_bodies"] = bodies
    return src.cache["parallel_bodies"]


def _callgraph(src: SourceFile):
    if "callgraph" not in src.cache:
        src.cache["callgraph"] = build_callgraph(src.tree)
    return src.cache["callgraph"]


def _shared_write_sites(src: SourceFile) -> list[dict]:
    """Shared-write sites in parallel bodies, with their MHP guard facts.

    Each site: ``{"line", "kind", "launcher", "facts", ...}`` where kind is
    ``assign`` (``variable`` key), ``rmw`` (unsafe read-modify-write), or
    ``helper`` (``helper``/``variable`` keys: a one-level callee performs
    the shared write).
    """
    if "shared_write_sites" in src.cache:
        return src.cache["shared_write_sites"]
    sites: list[dict] = []
    graph = _callgraph(src)
    for body, launcher in _parallel_bodies(src):
        shared = {
            name
            for node in ast.walk(body)
            if isinstance(node, (ast.Nonlocal, ast.Global))
            for name in node.names
        }
        try:
            mhp = MHPAnalysis(body, module=src.tree)
        except (RecursionError, SyntaxError):  # pragma: no cover - defensive
            continue
        for _, stmt in mhp.cfg.statements():
            facts = mhp.facts(stmt)
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in shared:
                        sites.append({
                            "line": stmt.lineno, "kind": "assign",
                            "launcher": launcher, "facts": facts,
                            "variable": target.id,
                        })
            for node in stmt_exec_nodes(stmt):
                if not isinstance(node, ast.Call):
                    continue
                cname = _call_name(node)
                if cname == "unsafe_read_modify_write":
                    sites.append({
                        "line": node.lineno, "kind": "rmw",
                        "launcher": launcher, "facts": facts,
                    })
                elif isinstance(node.func, ast.Name):
                    summary = graph.summary(cname)
                    if (summary is not None and summary.node is not body
                            and summary.shared_writes):
                        variable = sorted(summary.shared_writes)[0]
                        sites.append({
                            "line": node.lineno, "kind": "helper",
                            "launcher": launcher, "facts": facts,
                            "helper": cname, "variable": variable,
                        })
    src.cache["shared_write_sites"] = sites
    return sites


@register_rule
class SharedWriteInParallel(Rule):
    id = "PDC101"
    name = "shared-write-in-parallel"
    severity = ERROR
    summary = ("write to a shared/closure variable inside a parallel body "
               "with no lock held on any path to it")
    fix_hint = ("guard the update with `with critical(...)`, switch to an "
                "AtomicCounter/AtomicAccumulator, or restructure the loop "
                "as a reduction")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for site in _shared_write_sites(src):
            facts: StmtFacts = site["facts"]
            if facts.guarded or facts.partially_guarded:
                continue  # safe, or PDC108's finding to make
            launcher = site["launcher"]
            if site["kind"] == "assign":
                yield self.diag(
                    src, site["line"],
                    f"write to shared variable '{site['variable']}' inside "
                    f"a `{launcher}` body without synchronization",
                    variable=site["variable"],
                )
            elif site["kind"] == "rmw":
                yield self.diag(
                    src, site["line"],
                    "unsynchronized read-modify-write on a shared counter "
                    f"inside a `{launcher}` body",
                )
            else:  # helper
                yield self.diag(
                    src, site["line"],
                    f"call to '{site['helper']}' writes shared variable "
                    f"'{site['variable']}' inside a `{launcher}` body "
                    "without synchronization",
                    variable=site["variable"], helper=site["helper"],
                )


@register_rule
class BarrierInSingle(Rule):
    id = "PDC102"
    name = "barrier-in-single"
    severity = ERROR
    summary = "barrier() reachable from inside a single/master construct"
    fix_hint = ("move the barrier() outside the single/master construct: a "
                "barrier only completes when *every* team thread reaches it")
    language = "python"

    _ONE_THREAD_CALLS = frozenset({"single", "master", "get_thread_num",
                                   "Get_thread_num"})

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.If) and self._is_one_thread_test(node.test):
                construct = self._construct_name(node.test)
                for branch, stmts in (("body", node.body),
                                      ("else branch", node.orelse)):
                    for line in self._barrier_lines(stmts):
                        yield self.diag(
                            src, line,
                            f"barrier() inside the {branch} of an "
                            f"`if {construct}()` guard deadlocks the team",
                            construct=construct,
                        )
            elif (isinstance(node, ast.Call)
                  and _call_name(node) in ("single", "master") and node.args):
                for body in ([node.args[0]] if isinstance(node.args[0], ast.Lambda)
                             else _callable_arg(src, node, 0)):
                    for line in self._barrier_lines([body]):
                        yield self.diag(
                            src, line,
                            "barrier() inside a function run under "
                            f"`{_call_name(node)}(...)` deadlocks the team",
                            construct=_call_name(node),
                        )

    def _is_one_thread_test(self, test: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call)
            and _call_name(sub) in self._ONE_THREAD_CALLS
            for sub in ast.walk(test)
        )

    def _construct_name(self, test: ast.AST) -> str:
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Call)
                    and _call_name(sub) in self._ONE_THREAD_CALLS):
                return _call_name(sub)
        return "single"

    @staticmethod
    def _barrier_lines(nodes: list[ast.AST]) -> list[int]:
        lines = []
        for node in nodes:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "barrier":
                    lines.append(sub.lineno)
        return lines


@register_rule
class LoopCarriedDependence(Rule):
    id = "PDC105"
    name = "loop-carried-dependence"
    severity = WARNING
    summary = "parallel_for body indexes neighbor elements of the loop variable"
    fix_hint = ("parallel_for iterations must be independent; restructure "
                "(prefix-scan, ghost cells, or double buffering) or run the "
                "loop sequentially")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for body, launcher in _parallel_bodies(src):
            if launcher not in _LOOP_LAUNCHERS:
                continue
            args = body.args.args
            if not args:
                continue
            index = args[0].arg
            root = body.body if isinstance(body, ast.Lambda) else body
            nodes = [root] if isinstance(root, ast.AST) else list(root)
            for node in nodes:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Subscript) and \
                            self._neighbor_index(sub.slice, index):
                        yield self.diag(
                            src, sub.lineno,
                            "subscript "
                            f"'{ast.unparse(sub)}' reads/writes a neighbor "
                            f"of loop variable '{index}' — iterations are "
                            "not independent",
                            index=index,
                        )

    @staticmethod
    def _neighbor_index(slice_node: ast.AST, index: str) -> bool:
        for sub in ast.walk(slice_node):
            if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, (ast.Add, ast.Sub)):
                names = {
                    n.id for n in ast.walk(sub) if isinstance(n, ast.Name)
                }
                if index in names:
                    return True
        return False


@register_rule
class UnreleasedLock(Rule):
    id = "PDC106"
    name = "unreleased-lock"
    severity = WARNING
    summary = ("lock.acquire() without a matching release() — by count, or "
               "on an early-return path")
    fix_hint = ("release in a `finally:` block, or hold the lock with "
                "`with lock:` so every exit path releases it")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        scopes: list[ast.AST] = [src.tree]
        scopes.extend(
            node for node in ast.walk(src.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda))
        )
        for scope in scopes:
            yield from self._check_scope(src, scope)

    def _check_scope(self, src: SourceFile, scope: ast.AST) -> Iterator[Diagnostic]:
        acquires: dict[str, list[int]] = {}
        releases: dict[str, int] = {}
        with_names: set[str] = set()
        for node in _scoped_walk(scope):
            if isinstance(node, ast.With):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Name):
                        with_names.add(item.context_expr.id)
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)):
                receiver = node.func.value.id
                if node.func.attr == "acquire":
                    acquires.setdefault(receiver, []).append(node.lineno)
                elif node.func.attr == "release":
                    releases[receiver] = releases.get(receiver, 0) + 1
        balanced: list[str] = []
        for receiver, lines in sorted(acquires.items()):
            if receiver in with_names:
                continue
            if len(lines) > releases.get(receiver, 0):
                yield self.diag(
                    src, lines[0],
                    f"'{receiver}.acquire()' has no matching release() "
                    "in this function — any thread that errors or "
                    "returns early holds the lock forever",
                    lock=receiver,
                )
            else:
                balanced.append(receiver)
        if balanced and isinstance(scope, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
            yield from self._early_returns(src, scope, balanced)

    def _early_returns(self, src: SourceFile, scope: ast.AST,
                       receivers: list[str]) -> Iterator[Diagnostic]:
        """Counts balance, but does some return path skip the release?"""
        from ..flow.dataflow import solve
        from ..flow.mhp import _HeldLocks

        try:
            cfg = build_cfg(scope)
        except (RecursionError, TypeError):  # pragma: no cover - defensive
            return
        problem = _HeldLocks(frozenset(receivers), "intersection")
        in_sets, _ = solve(cfg, problem)
        for block, stmt in cfg.statements():
            if not isinstance(stmt, ast.Return):
                continue
            held = in_sets[block.id]
            for s in block.stmts:
                if s is stmt:
                    break
                held = problem.transfer_stmt(s, held)
            for receiver in sorted(held):
                if not self._releases_forward(cfg, block.id, receiver):
                    yield self.diag(
                        src, stmt.lineno,
                        f"return while holding '{receiver}': this exit path "
                        "never calls release(), so an early return leaves "
                        "the lock held",
                        lock=receiver,
                    )

    @staticmethod
    def _releases_forward(cfg, block_id: int, receiver: str) -> bool:
        for bid in cfg.reachable_forward(block_id):
            for stmt in cfg.blocks[bid].stmts:
                for node in stmt_exec_nodes(stmt):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "release"
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id == receiver):
                        return True
        return False


@register_rule
class StaleSharedReadAfterRegion(Rule):
    id = "PDC107"
    name = "stale-shared-read-after-region"
    severity = WARNING
    summary = ("a parallel body assigns a variable without `nonlocal`, and "
               "the enclosing function reads the stale outer value after "
               "the region")
    fix_hint = ("declare the variable `nonlocal` in the body (and guard the "
                "write), or collect per-thread results and combine them "
                "after the region")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for call, body, launcher in _launch_sites(src):
            enclosing = self._enclosing_function(src, call)
            if enclosing is None:
                continue
            declared = {
                name
                for node in ast.walk(body)
                if isinstance(node, (ast.Nonlocal, ast.Global))
                for name in node.names
            }
            params = {a.arg for a in body.args.args} if hasattr(body, "args") else set()
            assigned = {
                node.id
                for node in _scoped_walk(body)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Store)
                and node.id not in declared
                and node.id not in params
            }
            if not assigned:
                continue
            outer_before: set[str] = set()
            for node in _scoped_walk(enclosing):
                if (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Store)
                        and node.lineno < call.lineno):
                    outer_before.add(node.id)
            suspects = assigned & outer_before
            for node in _scoped_walk(enclosing):
                if (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in suspects
                        and node.lineno > call.lineno):
                    yield self.diag(
                        src, node.lineno,
                        f"read of '{node.id}' after the `{launcher}` call "
                        "sees the pre-region value: the body assigns a new "
                        "local instead of updating the shared variable "
                        f"(missing `nonlocal {node.id}`)",
                        variable=node.id,
                    )
                    suspects.discard(node.id)  # one finding per variable

    @staticmethod
    def _enclosing_function(src: SourceFile, call: ast.Call) -> ast.AST | None:
        if "parent_map" not in src.cache:
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(src.tree):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            src.cache["parent_map"] = parents
        parents = src.cache["parent_map"]
        node: ast.AST | None = call
        while node is not None:
            node = parents.get(id(node))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return node
        return None


@register_rule
class GuardedOnSomePathsOnly(Rule):
    id = "PDC108"
    name = "guarded-on-some-paths-only"
    severity = ERROR
    summary = ("a shared write holds a lock on some control-flow paths but "
               "not on all of them")
    fix_hint = ("hoist the acquire/release (or the `with lock:` block) so "
                "every path to the shared write holds the same lock")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for site in _shared_write_sites(src):
            facts: StmtFacts = site["facts"]
            if not facts.partially_guarded:
                continue
            lock = sorted(facts.may_locks - facts.must_locks)[0]
            what = (f"write to shared variable '{site['variable']}'"
                    if "variable" in site
                    else "read-modify-write on a shared counter")
            yield self.diag(
                src, site["line"],
                f"{what} inside a `{site['launcher']}` body holds "
                f"'{lock}' on some paths but not all of them — the "
                "unguarded path still races",
                lock=lock,
            )
