"""Python AST rules: the mistakes remote learners actually make.

Each rule targets one failure shape from the patternlet curriculum, phrased
against the ``repro.openmp`` / ``repro.mpi`` teaching APIs:

* **PDC101** — write to a closure/shared variable inside a
  ``parallel_region``/``parallel_for`` body without ``critical``/atomic/
  reduction protection (the ``race`` patternlet's bug);
* **PDC102** — ``barrier()`` reachable from inside a ``single``/``master``
  construct: only some threads arrive, the team hangs;
* **PDC103** — the symmetric-deadlock shape: every rank blocks in the same
  ``recv``-before-``send`` (or buffering-dependent ``send``-before-``recv``)
  order (the ``deadlock`` patternlet's bug);
* **PDC104** — a collective called lexically inside an ``if rank ...``
  branch without a matching call on the other ranks' path;
* **PDC105** — loop-carried dependence hints (neighbor indexing) in
  ``parallel_for`` bodies;
* **PDC106** — ``lock.acquire()`` with no matching ``release()`` in the
  same function and no ``with`` usage.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import ERROR, WARNING, Diagnostic
from .engine import Rule, SourceFile, register_rule

#: callable-position of the body argument in each parallel launcher
_PARALLEL_LAUNCHERS = {"parallel_region": 0, "parallel_sections": 0,
                       "parallel_for": 1, "for_loop": 1}
_LOOP_LAUNCHERS = ("parallel_for", "for_loop")

_SEND_METHODS = frozenset({"send", "Send", "ssend", "Ssend"})
_RECV_METHODS = frozenset({"recv", "Recv"})
_COLLECTIVE_METHODS = frozenset({
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce", "allreduce", "Allreduce", "allgather", "Allgather",
    "alltoall", "Alltoall", "barrier", "Barrier", "scan", "Scan", "exscan",
})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested functions."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _function_defs(src: SourceFile) -> dict[str, list[ast.FunctionDef]]:
    if "function_defs" not in src.cache:
        defs: dict[str, list[ast.FunctionDef]] = {}
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, []).append(node)
        src.cache["function_defs"] = defs
    return src.cache["function_defs"]


def _callable_arg(src: SourceFile, call: ast.Call, position: int) -> list[ast.AST]:
    """Resolve the callable passed at ``position``: lambdas and local defs."""
    if len(call.args) <= position:
        return []
    arg = call.args[position]
    if isinstance(arg, ast.Lambda):
        return [arg]
    if isinstance(arg, ast.Name):
        return list(_function_defs(src).get(arg.id, []))
    return []


def _parallel_bodies(src: SourceFile) -> list[tuple[ast.AST, str]]:
    """Every function/lambda passed as the body of a parallel launcher."""
    if "parallel_bodies" not in src.cache:
        bodies: list[tuple[ast.AST, str]] = []
        seen: set[int] = set()
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            launcher = _call_name(node)
            position = _PARALLEL_LAUNCHERS.get(launcher)
            if position is None:
                continue
            for body in _callable_arg(src, node, position):
                if id(body) not in seen:
                    seen.add(id(body))
                    bodies.append((body, launcher))
        src.cache["parallel_bodies"] = bodies
    return src.cache["parallel_bodies"]


def _spmd_bodies(src: SourceFile) -> list[ast.AST]:
    """Functions that run SPMD: a ``comm`` parameter, or passed to mpirun."""
    if "spmd_bodies" not in src.cache:
        bodies: list[ast.AST] = []
        seen: set[int] = set()

        def _add(node: ast.AST) -> None:
            if id(node) not in seen:
                seen.add(id(node))
                bodies.append(node)

        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                if any(arg.arg == "comm" for arg in node.args.args):
                    _add(node)
            elif isinstance(node, ast.Call) and _call_name(node) in (
                    "mpirun", "run_script", "trace_run"):
                for body in _callable_arg(src, node, 0):
                    _add(body)
        src.cache["spmd_bodies"] = bodies
    return src.cache["spmd_bodies"]


def _mentions_rank(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "rank" in sub.id.lower():
            return True
        if isinstance(sub, ast.Call) and _call_name(sub).lower() == "get_rank":
            return True
    return False


def _body_stmts(node: ast.AST) -> list[ast.stmt]:
    if isinstance(node, ast.Lambda):
        return [ast.Expr(value=node.body)]
    return list(getattr(node, "body", []))


@register_rule
class SharedWriteInParallel(Rule):
    id = "PDC101"
    name = "shared-write-in-parallel"
    severity = ERROR
    summary = ("write to a shared/closure variable inside a parallel body "
               "without critical/atomic/reduction protection")
    fix_hint = ("guard the update with `with critical(...)`, switch to an "
                "AtomicCounter/AtomicAccumulator, or restructure the loop "
                "as a reduction")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for body, launcher in _parallel_bodies(src):
            shared = {
                name
                for node in ast.walk(body)
                if isinstance(node, (ast.Nonlocal, ast.Global))
                for name in node.names
            }
            findings: list[Diagnostic] = []
            self._scan(src, launcher, _body_stmts(body), shared, False, findings)
            yield from findings

    def _scan(self, src, launcher, nodes, shared, protected, findings) -> None:
        for node in nodes:
            if isinstance(node, ast.With):
                guarded = protected or any(
                    self._is_sync_guard(item.context_expr) for item in node.items
                )
                self._scan(src, launcher, node.body, shared, guarded, findings)
                continue
            if not protected:
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if isinstance(target, ast.Name) and target.id in shared:
                            findings.append(self.diag(
                                src, node.lineno,
                                f"write to shared variable '{target.id}' "
                                f"inside a `{launcher}` body without "
                                "synchronization",
                                variable=target.id,
                            ))
                if (isinstance(node, ast.Call)
                        and _call_name(node) == "unsafe_read_modify_write"):
                    findings.append(self.diag(
                        src, node.lineno,
                        "unsynchronized read-modify-write on a shared counter "
                        f"inside a `{launcher}` body",
                    ))
            self._scan(src, launcher, list(ast.iter_child_nodes(node)),
                       shared, protected, findings)

    @staticmethod
    def _is_sync_guard(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            return name == "critical" or "lock" in name.lower()
        if isinstance(expr, ast.Name):
            return "lock" in expr.id.lower()
        if isinstance(expr, ast.Attribute):
            return "lock" in expr.attr.lower()
        return False


@register_rule
class BarrierInSingle(Rule):
    id = "PDC102"
    name = "barrier-in-single"
    severity = ERROR
    summary = "barrier() reachable from inside a single/master construct"
    fix_hint = ("move the barrier() outside the single/master construct: a "
                "barrier only completes when *every* team thread reaches it")
    language = "python"

    _ONE_THREAD_CALLS = frozenset({"single", "master", "get_thread_num",
                                   "Get_thread_num"})

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.If) and self._is_one_thread_test(node.test):
                construct = self._construct_name(node.test)
                for branch, stmts in (("body", node.body),
                                      ("else branch", node.orelse)):
                    for line in self._barrier_lines(stmts):
                        yield self.diag(
                            src, line,
                            f"barrier() inside the {branch} of an "
                            f"`if {construct}()` guard deadlocks the team",
                            construct=construct,
                        )
            elif (isinstance(node, ast.Call)
                  and _call_name(node) in ("single", "master") and node.args):
                for body in ([node.args[0]] if isinstance(node.args[0], ast.Lambda)
                             else _callable_arg(src, node, 0)):
                    for line in self._barrier_lines([body]):
                        yield self.diag(
                            src, line,
                            "barrier() inside a function run under "
                            f"`{_call_name(node)}(...)` deadlocks the team",
                            construct=_call_name(node),
                        )

    def _is_one_thread_test(self, test: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call)
            and _call_name(sub) in self._ONE_THREAD_CALLS
            for sub in ast.walk(test)
        )

    def _construct_name(self, test: ast.AST) -> str:
        for sub in ast.walk(test):
            if (isinstance(sub, ast.Call)
                    and _call_name(sub) in self._ONE_THREAD_CALLS):
                return _call_name(sub)
        return "single"

    @staticmethod
    def _barrier_lines(nodes: list[ast.AST]) -> list[int]:
        lines = []
        for node in nodes:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "barrier":
                    lines.append(sub.lineno)
        return lines


@register_rule
class SymmetricDeadlock(Rule):
    id = "PDC103"
    name = "symmetric-deadlock"
    severity = ERROR
    summary = ("blocking send/recv issued in the same order by every rank "
               "(the ring/exchange deadlock shape)")
    fix_hint = ("break the symmetry: alternate the send/recv order by rank "
                "parity, or use comm.sendrecv() which pairs them safely")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for body in _spmd_bodies(src):
            ops: list[tuple[str, int]] = []
            self._collect(_body_stmts(body), ops)
            if not ops:
                continue
            first_kind, first_line = ops[0]
            rest = {kind for kind, _ in ops[1:]}
            if first_kind == "recv" and "send" in rest:
                yield self.diag(
                    src, first_line,
                    "every rank blocks in recv() before reaching its send() "
                    "— the symmetric exchange deadlocks",
                )
            elif first_kind == "send" and "recv" in rest:
                yield self.diag(
                    src, first_line,
                    "every rank send()s before it recv()s; blocking sends "
                    "deadlock as soon as messages stop fitting in buffers",
                    severity=WARNING,
                )

    def _collect(self, stmts: list[ast.stmt], ops: list[tuple[str, int]]) -> bool:
        """Gather p2p calls on the all-ranks path; False stops the scan."""
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                # A rank-conditional branch that returns splits the ranks
                # for good: everything after runs on a subset only.
                if _mentions_rank(stmt.test) and any(
                    isinstance(sub, (ast.Return, ast.Raise))
                    for node in stmt.body + stmt.orelse
                    for sub in ast.walk(node)
                ):
                    return False
                continue  # conditional code: not executed by all ranks
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return False
            if isinstance(stmt, (ast.For, ast.While)):
                if not self._collect(stmt.body, ops):
                    return False
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    method = _call_name(sub)
                    if method in _SEND_METHODS:
                        ops.append(("send", sub.lineno))
                    elif method in _RECV_METHODS:
                        ops.append(("recv", sub.lineno))
        return True


@register_rule
class CollectiveInRankBranch(Rule):
    id = "PDC104"
    name = "collective-in-rank-branch"
    severity = ERROR
    summary = "collective call lexically inside an `if rank ...` branch"
    fix_hint = ("collectives must be called by every rank: hoist the call "
                "out of the conditional and use its root=... argument to "
                "distinguish the root's role")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(src.tree):
            if not (isinstance(node, ast.If) and _mentions_rank(node.test)):
                continue
            body_calls = self._collectives(node.body)
            else_calls = self._collectives(node.orelse)
            body_methods = {m for m, _ in body_calls}
            else_methods = {m for m, _ in else_calls}
            for method, line in body_calls:
                if method not in else_methods:
                    yield self._finding(src, method, line)
            for method, line in else_calls:
                if method not in body_methods:
                    yield self._finding(src, method, line)

    def _finding(self, src: SourceFile, method: str, line: int) -> Diagnostic:
        return self.diag(
            src, line,
            f"collective '{method}' is only reached by a subset of ranks "
            "(it sits inside a rank conditional); the other ranks never "
            "enter the collective and the program hangs",
            collective=method,
        )

    @staticmethod
    def _collectives(stmts: list[ast.stmt]) -> list[tuple[str, int]]:
        calls = []
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _COLLECTIVE_METHODS):
                    calls.append((sub.func.attr, sub.lineno))
        return calls


@register_rule
class LoopCarriedDependence(Rule):
    id = "PDC105"
    name = "loop-carried-dependence"
    severity = WARNING
    summary = "parallel_for body indexes neighbor elements of the loop variable"
    fix_hint = ("parallel_for iterations must be independent; restructure "
                "(prefix-scan, ghost cells, or double buffering) or run the "
                "loop sequentially")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for body, launcher in _parallel_bodies(src):
            if launcher not in _LOOP_LAUNCHERS:
                continue
            args = body.args.args
            if not args:
                continue
            index = args[0].arg
            root = body.body if isinstance(body, ast.Lambda) else body
            nodes = [root] if isinstance(root, ast.AST) else list(root)
            for node in nodes:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Subscript) and \
                            self._neighbor_index(sub.slice, index):
                        yield self.diag(
                            src, sub.lineno,
                            "subscript "
                            f"'{ast.unparse(sub)}' reads/writes a neighbor "
                            f"of loop variable '{index}' — iterations are "
                            "not independent",
                            index=index,
                        )

    @staticmethod
    def _neighbor_index(slice_node: ast.AST, index: str) -> bool:
        for sub in ast.walk(slice_node):
            if isinstance(sub, ast.BinOp) and isinstance(
                    sub.op, (ast.Add, ast.Sub)):
                names = {
                    n.id for n in ast.walk(sub) if isinstance(n, ast.Name)
                }
                if index in names:
                    return True
        return False


@register_rule
class UnreleasedLock(Rule):
    id = "PDC106"
    name = "unreleased-lock"
    severity = WARNING
    summary = "lock.acquire() without a matching release() in the same function"
    fix_hint = ("release in a `finally:` block, or hold the lock with "
                "`with lock:` so every exit path releases it")
    language = "python"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        scopes: list[ast.AST] = [src.tree]
        scopes.extend(
            node for node in ast.walk(src.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda))
        )
        for scope in scopes:
            acquires: dict[str, list[int]] = {}
            releases: dict[str, int] = {}
            with_names: set[str] = set()
            for node in _scoped_walk(scope):
                if isinstance(node, ast.With):
                    for item in node.items:
                        if isinstance(item.context_expr, ast.Name):
                            with_names.add(item.context_expr.id)
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)):
                    receiver = node.func.value.id
                    if node.func.attr == "acquire":
                        acquires.setdefault(receiver, []).append(node.lineno)
                    elif node.func.attr == "release":
                        releases[receiver] = releases.get(receiver, 0) + 1
            for receiver, lines in sorted(acquires.items()):
                if (len(lines) > releases.get(receiver, 0)
                        and receiver not in with_names):
                    yield self.diag(
                        src, lines[0],
                        f"'{receiver}.acquire()' has no matching release() "
                        "in this function — any thread that errors or "
                        "returns early holds the lock forever",
                        lock=receiver,
                    )
