"""``repro analyze``: run a patternlet under the matching analysis engine.

The runner picks the engine from the patternlet's paradigm — the
happens-before race detector for ``openmp``, the MPI correctness checker
for ``mpi`` — runs the patternlet with a *small, deterministic* workload
(analysis wants coverage of the access pattern, not throughput), and
returns the engine's :class:`~repro.analysis.diagnostics.AnalysisReport`.
"""

from __future__ import annotations

from typing import Any

from ..patternlets import all_patternlets, get_patternlet
from .diagnostics import AnalysisReport
from .mpicheck import mpi_checker
from .race import race_detector

__all__ = ["analyze", "emit_report", "invoke_patternlet", "ANALYZE_PARAMS"]


def emit_report(report: AnalysisReport, as_json: bool = False) -> int:
    """Print an :class:`AnalysisReport` and return the CLI exit code.

    Shared by ``repro analyze`` and ``repro lint`` so both commands render
    reports and gate exit codes identically: text (or ``--json``) on
    stdout, exit 1 when any error-severity diagnostic survived, else 0.
    """
    print(report.to_json() if as_json else report.render())
    return 1 if report.errors else 0

#: Per-patternlet workload overrides for analysis runs.  A handful of
#: iterations exercises every access/synchronization edge the detector
#: needs; the default teaching workloads exist to make timing visible,
#: which analysis does not care about.
ANALYZE_PARAMS: dict[tuple[str, str], dict[str, Any]] = {
    ("openmp", "race"): {"num_threads": 2, "iterations": 64},
    ("openmp", "critical"): {"num_threads": 2, "iterations": 64},
    ("openmp", "atomic"): {"num_threads": 2, "iterations": 64},
    ("openmp", "reduction"): {"num_threads": 2, "n": 512},
    ("mpi", "deadlock"): {"np": 2, "timeout": 2.5},
}


def _resolve(name: str, paradigm: str | None) -> tuple[str, Any]:
    if paradigm is not None:
        return paradigm, get_patternlet(paradigm, name)
    for candidate in ("openmp", "mpi"):
        try:
            return candidate, get_patternlet(candidate, name)
        except KeyError:
            continue
    available = sorted(p.name for p in all_patternlets())
    raise KeyError(f"no patternlet named {name!r}; available: {available}")


def invoke_patternlet(patternlet: Any, params: dict[str, Any]) -> Any:
    """Run a patternlet with best-effort parameter forwarding.

    Shared with :mod:`repro.testkit.explore`, which drives the same
    patternlets under explored schedules and fault plans.
    """
    if patternlet.name == "allreduceArrays" and "np" in params:
        params = {"np_procs": params.pop("np"), **params}
    try:
        return patternlet.run(**params)
    except TypeError:
        return patternlet.run()


_invoke = invoke_patternlet


def analyze(
    name: str,
    paradigm: str | None = None,
    nprocs: int | None = None,
    **extra: Any,
) -> AnalysisReport:
    """Run patternlet ``name`` under analysis and return the report.

    ``paradigm`` disambiguates when both runtimes register the name;
    ``nprocs`` overrides the thread/process count; remaining keyword
    arguments are forwarded to the patternlet runner.
    """
    paradigm, patternlet = _resolve(name, paradigm)
    params = dict(ANALYZE_PARAMS.get((paradigm, name), {}))
    if nprocs is not None:
        params["num_threads" if paradigm == "openmp" else "np"] = nprocs
    params.update(extra)

    target = f"{paradigm}:{name}"
    if paradigm == "openmp":
        with race_detector(target=target) as detector:
            _invoke(patternlet, params)
        return detector.report()
    with mpi_checker(target=target) as checker:
        from ..mpi.errors import MPIError

        try:
            _invoke(patternlet, params)
        except MPIError as exc:
            checker.notes.append(f"run failed: {type(exc).__name__}: {exc}")
    return checker.report()
