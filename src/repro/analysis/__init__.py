"""Dynamic analysis for the teaching runtimes.

Two engines, one reporting layer:

* :mod:`repro.analysis.race` — a happens-before data-race detector for the
  ``repro.openmp`` runtime (vector clocks with FastTrack-style per-location
  epochs, plus an Eraser-style lockset fallback);
* :mod:`repro.analysis.mpicheck` — an MPI correctness checker for
  ``repro.mpi`` (wait-for-graph deadlock cycles, message type/count
  mismatches, collective-ordering violations, finalize-time leak checks);
* :mod:`repro.analysis.lint` — **pdclint**, the *static* complement: an
  AST rule engine over learner Python plus a ``#pragma omp`` parser for
  the C handout listings, giving edit-time feedback before any run;
* :mod:`repro.analysis.diagnostics` — the shared :class:`Diagnostic` /
  :class:`AnalysisReport` structures every engine emits, renderable as
  text or JSON.

The CLI front doors are ``python -m repro analyze <patternlet>`` (dynamic,
:mod:`repro.analysis.runner`) and ``python -m repro lint <path|patternlet>``
(static, :mod:`repro.analysis.lint`).
"""

from .diagnostics import ERROR, INFO, WARNING, AnalysisReport, Diagnostic
from .lint import (
    check_clistings,
    lint_patternlet,
    lint_path,
    lint_source,
    lint_targets,
)
from .mpicheck import MPIChecker, check_run, mpi_checker
from .race import RaceDetector, TrackedVar, instrument, race_detector
from .runner import ANALYZE_PARAMS, analyze, emit_report

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "INFO",
    "RaceDetector",
    "TrackedVar",
    "instrument",
    "race_detector",
    "MPIChecker",
    "mpi_checker",
    "check_run",
    "analyze",
    "emit_report",
    "ANALYZE_PARAMS",
    "lint_source",
    "lint_path",
    "lint_patternlet",
    "lint_targets",
    "check_clistings",
]
