"""Dynamic analysis for the teaching runtimes.

Two engines, one reporting layer:

* :mod:`repro.analysis.race` — a happens-before data-race detector for the
  ``repro.openmp`` runtime (vector clocks with FastTrack-style per-location
  epochs, plus an Eraser-style lockset fallback);
* :mod:`repro.analysis.mpicheck` — an MPI correctness checker for
  ``repro.mpi`` (wait-for-graph deadlock cycles, message type/count
  mismatches, collective-ordering violations, finalize-time leak checks);
* :mod:`repro.analysis.diagnostics` — the shared :class:`Diagnostic` /
  :class:`AnalysisReport` structures both engines emit, renderable as text
  or JSON.

The CLI front door is ``python -m repro analyze <patternlet>``
(:mod:`repro.analysis.runner`).
"""

from .diagnostics import ERROR, INFO, WARNING, AnalysisReport, Diagnostic
from .mpicheck import MPIChecker, check_run, mpi_checker
from .race import RaceDetector, TrackedVar, instrument, race_detector
from .runner import ANALYZE_PARAMS, analyze

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "ERROR",
    "WARNING",
    "INFO",
    "RaceDetector",
    "TrackedVar",
    "instrument",
    "race_detector",
    "MPIChecker",
    "mpi_checker",
    "check_run",
    "analyze",
    "ANALYZE_PARAMS",
]
