"""Happens-before data-race detection for the ``repro.openmp`` runtime.

The detector consumes the event stream that the runtime emits through
:mod:`repro.openmp.hooks` and maintains:

* a vector clock per logical thread (FastTrack-style: clocks advance on
  release/fork/join/barrier, accesses are recorded as epochs);
* a clock per lock (``critical`` sections, ``omp_lock_t``, the lock inside
  :class:`~repro.openmp.sync.AtomicCounter`);
* per-location shadow state: last-write epoch plus per-thread read epochs —
  enough to decide, for every access, whether the previous conflicting
  access is ordered before it;
* an Eraser-style candidate lockset per location as a fallback heuristic:
  a location written by several threads whose accesses share no common lock
  is suspicious even if this particular schedule happened to order them.

Unlike the probabilistic lost-update demonstration, the happens-before
verdict is *deterministic*: two threads that update a shared location with
no ordering edge between them are reported on every run, whatever the
scheduler did.

Usage::

    from repro.analysis import TrackedVar, race_detector

    with race_detector() as detector:
        counter = AtomicCounter(0)          # instrumented by the runtime
        x = TrackedVar(0, name="x")         # explicitly tracked variable
        ... run parallel code ...
    report = detector.report()
"""

from __future__ import annotations

import contextlib
import sys
import threading
from typing import Any, Generator

from ..openmp import hooks as _hooks
from .diagnostics import ERROR, INFO, WARNING, AnalysisReport, Diagnostic
from .vectorclock import Epoch, VectorClock

__all__ = ["RaceDetector", "TrackedVar", "instrument", "race_detector"]

#: Source files whose frames are runtime machinery, not user code.
_RUNTIME_MARKERS = ("repro/openmp", "repro\\openmp", "repro/analysis", "repro\\analysis")


def _caller_site(skip_self: bool = True) -> str:
    """``file:line`` of the nearest stack frame outside the runtime layers."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(marker in filename for marker in _RUNTIME_MARKERS):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _Shadow:
    """Per-location shadow state: write epoch, read epochs, lockset."""

    __slots__ = ("label", "write", "reads", "lockset", "threads", "written", "reported")

    def __init__(self, label: str) -> None:
        self.label = label
        self.write: Epoch | None = None
        self.reads: dict[int, Epoch] = {}
        self.lockset: set[Any] | None = None  # None until the first access
        self.threads: set[int] = set()
        self.written = False
        self.reported = False


class RaceDetector:
    """Vector-clock happens-before engine over the runtime's event stream."""

    def __init__(self, target: str = "openmp") -> None:
        self.target = target
        self._mutex = threading.Lock()
        self._tids: dict[int, int] = {}  # OS ident -> dense logical tid
        self._clocks: dict[int, VectorClock] = {}
        self._lock_clocks: dict[Any, VectorClock] = {}
        self._held: dict[int, list[Any]] = {}
        # fork/join bookkeeping, keyed by team identity
        self._birth: dict[int, tuple[int, VectorClock]] = {}
        self._finals: dict[int, list[VectorClock]] = {}
        # barrier generations: (team, tid) -> count, (team, generation) -> acc
        self._barrier_count: dict[tuple[int, int], int] = {}
        self._barrier_acc: dict[tuple[int, int], VectorClock] = {}
        # task bookkeeping: handle id -> clock snapshots
        self._task_submit: dict[int, VectorClock] = {}
        self._task_final: dict[int, VectorClock] = {}
        self._shadows: dict[Any, _Shadow] = {}
        self.diagnostics: list[Diagnostic] = []
        self.notes: list[str] = []
        self._access_count = 0

    # ------------------------------------------------------------------ plumbing
    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._tids[ident] = len(self._tids)
            clock = VectorClock()
            clock.tick(tid)
            self._clocks[tid] = clock
            self._held[tid] = []
        return tid

    def _clock(self, tid: int) -> VectorClock:
        return self._clocks[tid]

    # ------------------------------------------------------------------ observer
    def __call__(self, event: str, *args: Any) -> None:
        with self._mutex:
            handler = getattr(self, f"_on_{event}", None)
            if handler is not None:
                handler(*args)

    # -- fork / join -------------------------------------------------------------
    def _on_fork(self, team: Any) -> None:
        tid = self._tid()
        clock = self._clock(tid)
        self._birth[id(team)] = (tid, clock.copy())
        self._finals[id(team)] = []
        clock.tick(tid)

    def _on_thread_begin(self, team: Any, thread_num: int) -> None:
        tid = self._tid()
        birth = self._birth.get(id(team))
        if birth is None:
            return
        parent_tid, birth_clock = birth
        if tid == parent_tid:
            return  # the master thread runs in the forking thread
        fresh = birth_clock.copy()
        fresh.tick(tid)
        self._clocks[tid] = fresh

    def _on_thread_end(self, team: Any, thread_num: int) -> None:
        tid = self._tid()
        finals = self._finals.get(id(team))
        if finals is not None:
            finals.append(self._clock(tid).copy())

    def _on_join(self, team: Any) -> None:
        tid = self._tid()
        clock = self._clock(tid)
        clock.join_all(self._finals.pop(id(team), []))
        self._birth.pop(id(team), None)
        clock.tick(tid)

    # -- barriers ----------------------------------------------------------------
    def _on_barrier_enter(self, team: Any) -> None:
        tid = self._tid()
        generation = self._barrier_count.get((id(team), tid), 0)
        self._barrier_count[(id(team), tid)] = generation + 1
        acc = self._barrier_acc.setdefault((id(team), generation), VectorClock())
        acc.join(self._clock(tid))

    def _on_barrier_exit(self, team: Any) -> None:
        tid = self._tid()
        generation = self._barrier_count.get((id(team), tid), 1) - 1
        acc = self._barrier_acc.get((id(team), generation))
        clock = self._clock(tid)
        if acc is not None:
            clock.join(acc)
        clock.tick(tid)

    # -- locks -------------------------------------------------------------------
    def _on_acquire(self, key: Any) -> None:
        tid = self._tid()
        held = self._lock_clocks.get(key)
        if held is not None:
            self._clock(tid).join(held)
        self._held[tid].append(key)

    def _on_release(self, key: Any) -> None:
        tid = self._tid()
        clock = self._clock(tid)
        self._lock_clocks[key] = clock.copy()
        clock.tick(tid)
        stack = self._held[tid]
        if key in stack:
            stack.remove(key)

    # -- tasks -------------------------------------------------------------------
    def _on_task_submit(self, hid: int) -> None:
        tid = self._tid()
        clock = self._clock(tid)
        self._task_submit[hid] = clock.copy()
        clock.tick(tid)

    def _on_task_start(self, hid: int) -> None:
        tid = self._tid()
        submitted = self._task_submit.get(hid)
        if submitted is not None:
            self._clock(tid).join(submitted)

    def _on_task_end(self, hid: int) -> None:
        tid = self._tid()
        clock = self._clock(tid)
        self._task_final[hid] = clock.copy()
        clock.tick(tid)

    def _on_task_join(self, hid: int) -> None:
        tid = self._tid()
        final = self._task_final.get(hid)
        if final is not None:
            self._clock(tid).join(final)

    def _on_task_join_all(self) -> None:
        tid = self._tid()
        self._clock(tid).join_all(self._task_final.values())

    # -- reductions (informational) ----------------------------------------------
    def _on_reduction(self, name: str) -> None:
        note = (
            f"reduction {name!r} combined private per-thread partials at the "
            "join — no shared-state updates to race on"
        )
        if note not in self.notes:
            self.notes.append(note)

    # -- memory accesses ----------------------------------------------------------
    def _label_for(self, obj: Any) -> str:
        name = getattr(obj, "_analysis_name", None)
        site = getattr(obj, "_site", None)
        kind = type(obj).__name__
        if name:
            return f"{kind} {name!r}" + (f" allocated at {site}" if site else "")
        if site:
            return f"{kind} allocated at {site}"
        return f"{kind} @0x{id(obj):x}"

    def _shadow(self, key: Any, obj: Any) -> _Shadow:
        shadow = self._shadows.get(key)
        if shadow is None:
            shadow = self._shadows[key] = _Shadow(self._label_for(obj))
        return shadow

    def _update_lockset(self, shadow: _Shadow, tid: int) -> None:
        # Write-lockset only (Eraser's refinement): a post-join read under a
        # different lock must not empty the candidate set of the writes.
        held = set(self._held[tid])
        if shadow.lockset is None:
            shadow.lockset = held
        else:
            shadow.lockset &= held
        shadow.threads.add(tid)

    def _report_race(
        self, shadow: _Shadow, prev: Epoch, prev_kind: str, cur: Epoch, cur_kind: str
    ) -> None:
        if shadow.reported:
            return
        shadow.reported = True
        lockset = sorted(str(k) for k in (shadow.lockset or ()))
        self.diagnostics.append(
            Diagnostic(
                kind="data-race",
                severity=ERROR,
                message=(
                    f"data race on {shadow.label}: unordered "
                    f"{prev_kind} and {cur_kind} (no happens-before edge)"
                ),
                location=shadow.label,
                details={
                    "first access": prev.describe(prev_kind),
                    "second access": cur.describe(cur_kind),
                    "candidate lockset": lockset or "(empty)",
                },
            )
        )

    def _on_read(self, key: Any, obj: Any) -> None:
        tid = self._tid()
        self._access_count += 1
        site = _caller_site()
        clock = self._clock(tid)
        shadow = self._shadow(key, obj)
        write = shadow.write
        if write is not None and write.tid != tid and not write.happens_before(clock):
            self._report_race(shadow, write, "write", clock.epoch(tid, site), "read")
        shadow.reads[tid] = clock.epoch(tid, site)

    def _on_write(self, key: Any, obj: Any) -> None:
        tid = self._tid()
        self._access_count += 1
        site = _caller_site()
        clock = self._clock(tid)
        shadow = self._shadow(key, obj)
        cur = clock.epoch(tid, site)
        write = shadow.write
        if write is not None and write.tid != tid and not write.happens_before(clock):
            self._report_race(shadow, write, "write", cur, "write")
        for read in shadow.reads.values():
            if read.tid != tid and not read.happens_before(clock):
                self._report_race(shadow, read, "read", cur, "write")
                break
        shadow.write = cur
        shadow.reads.clear()
        self._update_lockset(shadow, tid)
        shadow.written = True

    # ------------------------------------------------------------------ reporting
    def finalize(self) -> None:
        """Run the Eraser-style lockset fallback over locations with no
        happens-before violation in the observed schedule."""
        with self._mutex:
            for shadow in self._shadows.values():
                if shadow.reported or not shadow.written:
                    continue
                if len(shadow.threads) >= 2 and not shadow.lockset:
                    self.diagnostics.append(
                        Diagnostic(
                            kind="lockset-empty",
                            severity=WARNING,
                            message=(
                                f"{shadow.label} is written by "
                                f"{len(shadow.threads)} threads holding no "
                                "common lock (Eraser lockset fallback); this "
                                "schedule happened to order the accesses"
                            ),
                            location=shadow.label,
                        )
                    )

    def report(self, target: str | None = None) -> AnalysisReport:
        report = AnalysisReport(
            target=target or self.target,
            engine="race-detector",
            diagnostics=list(self.diagnostics),
            notes=list(self.notes),
        )
        if not self.diagnostics:
            report.add(
                Diagnostic(
                    kind="summary",
                    severity=INFO,
                    message=(
                        f"no data race: {self._access_count} tracked accesses "
                        f"across {len(self._tids)} threads, all ordered by "
                        "happens-before"
                    ),
                )
            )
        return report


class TrackedVar:
    """A shared variable whose every access flows through the detector.

    The teaching patternlets mostly race on the runtime's own
    :class:`~repro.openmp.sync.AtomicCounter` (already instrumented);
    ``TrackedVar`` is for learner code that shares an arbitrary value::

        x = TrackedVar(0, name="x")
        x.write(x.read() + 1)     # an unprotected read-modify-write
    """

    __slots__ = ("_value", "_analysis_name", "_site")

    def __init__(self, value: Any = 0, name: str | None = None) -> None:
        self._value = value
        self._analysis_name = name
        self._site = _caller_site()

    def read(self) -> Any:
        if _hooks.enabled:
            _hooks.emit("read", id(self), self)
        return self._value

    def write(self, value: Any) -> None:
        if _hooks.enabled:
            _hooks.emit("write", id(self), self)
        self._value = value

    def add(self, delta: Any = 1) -> Any:
        """An *unprotected* read-modify-write (the classic racy increment)."""
        value = self.read()
        value = value + delta
        self.write(value)
        return value

    @property
    def value(self) -> Any:
        return self.read()

    @value.setter
    def value(self, new: Any) -> None:
        self.write(new)

    def peek(self) -> Any:
        """Read without emitting an access event (for reporting code)."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self._analysis_name or f"0x{id(self):x}"
        return f"<TrackedVar {label} value={self._value!r}>"


def instrument(value: Any, name: str | None = None) -> Any:
    """Wrap ``value`` for race tracking.

    Objects the runtime already instruments (anything exposing runtime
    hooks, such as :class:`~repro.openmp.sync.AtomicCounter`) pass through
    unchanged; plain values are wrapped in a :class:`TrackedVar`.
    """
    from ..openmp.sync import AtomicAccumulator, AtomicCounter

    if isinstance(value, (TrackedVar, AtomicCounter, AtomicAccumulator)):
        return value
    return TrackedVar(value, name=name)


@contextlib.contextmanager
def race_detector(target: str = "openmp") -> Generator[RaceDetector, None, None]:
    """Attach a fresh :class:`RaceDetector` to the runtime for the scope."""
    detector = RaceDetector(target=target)
    _hooks.attach(detector)
    try:
        yield detector
    finally:
        _hooks.detach(detector)
        detector.finalize()
