"""Symbolic-rank MPI protocol verification.

:func:`repro.analysis.flow.protocol.check_protocol` answers the concrete
question "is this SPMD body clean at world size 2?".  This module lifts
that to the parameterized claim learners actually need — *clean for
every world size P >= 2* — using the cutoff bound licensed by the
rank-set abstract domain (:mod:`repro.analysis.scale.rankset`):

1. scan every rank guard and message endpoint of the body; if all fit
   the abstract domain (front/back offsets, residue classes, affine
   thresholds), compute the cutoff ``P_c``;
2. evaluate the launcher's world-size preconditions (the ``if np < 2 or
   np % 2: raise`` guards that precede ``mpirun``) to discard sizes the
   program refuses to run at;
3. replay the concrete per-rank trace simulator at every remaining size
   ``2 <= P <= P_c`` and merge the verdicts: each violation carries the
   *smallest* world size exhibiting it as a concrete witness.

When the body steps outside the domain — a data-dependent guard, a
computed endpoint the evaluator cannot resolve, a cutoff past
:data:`~repro.analysis.scale.rankset.P_CAP` — the checker *abstains
from the universal claim* with a machine-readable reason code, while
still reporting whatever the bounded sizes it did simulate found.
Abstention never manufactures findings; it only weakens "for all P" to
"for the P we checked".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..flow.protocol import (
    Ambiguous,
    ProtocolFinding,
    _parent_map,
    _enclosing_env,
    extract_traces,
    simulate,
)
from .rankset import (
    CROSS_CHECK_MAX,
    P_CAP,
    P_MIN,
    DomainScan,
    scan_domain,
    valid_world_sizes,
)

__all__ = [
    "SymbolicVerdict",
    "check_protocol_symbolic",
    "check_schedule_symbolic",
    "launcher_preconditions",
    "ABSTAIN_REASONS",
    "SCHEDULE_P_MAX",
]

#: Reason codes the checker may abstain with, and what they mean.
ABSTAIN_REASONS = {
    "nonaffine-rank-guard": "a branch condition over the rank is outside "
                            "the affine/residue guard language",
    "nonaffine-rank-expr": "rank arithmetic outside the affine-with-wrap "
                           "expression language",
    "nonaffine-endpoint": "a message endpoint is not affine in rank and P",
    "domain-overflow": "the cutoff world size exceeds the simulation cap",
    "no-valid-world": "launcher preconditions reject every world size",
    "while-around-comm": "a while loop surrounds communication",
    "comm-in-handler": "communication inside an exception handler",
    "unknown-branch-comm": "an unresolvable branch condition guards "
                           "communication",
    "unknown-loop-comm": "unresolvable loop bounds around communication",
    "unresolved-endpoint": "a send/recv/collective endpoint did not "
                           "evaluate to an integer",
    "comm-escapes": "the communicator escapes into code the evaluator "
                    "cannot follow",
    "unsupported-stmt": "communication under a statement kind the "
                        "evaluator does not model",
    "eval-budget": "the per-rank evaluation budget was exhausted",
    "recursion": "recursive evaluation overflow",
}

_AMBIGUOUS_CODES = (
    ("while loop around", "while-around-comm"),
    ("exception handler", "comm-in-handler"),
    ("unknown branch condition", "unknown-branch-comm"),
    ("unknown conditional expression", "unknown-branch-comm"),
    ("loop bounds unknown", "unknown-loop-comm"),
    ("unresolvable send endpoint", "unresolved-endpoint"),
    ("unresolvable recv source", "unresolved-endpoint"),
    ("unresolvable sendrecv endpoints", "unresolved-endpoint"),
    ("unresolvable collective root", "unresolved-endpoint"),
    ("communicator passed to unresolvable call", "comm-escapes"),
    ("beyond the helper-inlining depth", "comm-escapes"),
    ("comm ops inside", "comm-escapes"),
    ("unsupported statement", "unsupported-stmt"),
    ("budget exceeded", "eval-budget"),
)


def ambiguity_reason(exc: Ambiguous) -> str:
    """Map an :class:`Ambiguous` message onto a stable reason code."""
    message = str(exc)
    for needle, code in _AMBIGUOUS_CODES:
        if needle in message:
            return code
    return "unsupported-stmt"


@dataclass
class SymbolicVerdict:
    """The all-P verdict for one SPMD root.

    ``universal`` means the findings (or their absence) hold for every
    valid world size P >= 2; otherwise ``reason`` carries the abstention
    code and the findings are only known to hold for ``checked`` sizes.
    """

    findings: list[ProtocolFinding] = field(default_factory=list)
    checked: list[int] = field(default_factory=list)
    excluded: list[int] = field(default_factory=list)
    cutoff: int = CROSS_CHECK_MAX
    universal: bool = False
    reason: str | None = None
    reason_line: int | None = None
    domain: DomainScan | None = None

    @property
    def abstained(self) -> bool:
        return self.reason is not None


# ---------------------------------------------------------------------------
# Launcher preconditions
# ---------------------------------------------------------------------------

def _np_names_for(launcher: ast.AST, func: ast.AST) -> frozenset[str]:
    """Names bound to the process count in the launcher of ``func``.

    The reliable signal is the ``mpirun(body, np)`` call itself: its
    second positional argument (or ``np=`` keyword) names the count.
    Parameter names like ``np``/``nprocs`` are accepted as a fallback.
    """
    names: set[str] = set()
    func_name = getattr(func, "name", None)
    for node in ast.walk(launcher):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
            continue
        if node.func.id not in ("mpirun", "run_script", "trace_run"):
            continue
        if node.args and func_name is not None:
            head = node.args[0]
            if not (isinstance(head, ast.Name) and head.id == func_name):
                # also accept conditional selection: `broken if x else repaired`
                chosen = {n.id for n in ast.walk(head)
                          if isinstance(n, ast.Name)}
                if func_name not in chosen:
                    continue
        count: ast.expr | None = None
        if len(node.args) > 1:
            count = node.args[1]
        for kw in node.keywords:
            if kw.arg in ("np", "nprocs", "n"):
                count = kw.value
        if isinstance(count, ast.Name):
            names.add(count.id)
    if not names:
        params = getattr(getattr(launcher, "args", None), "args", [])
        names = {a.arg for a in params
                 if a.arg in ("np", "nprocs", "num_procs", "n_ranks")}
    return frozenset(names)


def launcher_preconditions(
    func: ast.AST, tree: ast.AST
) -> tuple[list[ast.expr], frozenset[str]]:
    """``(raise-guard tests, process-count names)`` for one SPMD root.

    The launcher is the nearest enclosing function definition; its
    ``if <cond>: raise`` statements whose condition mentions the process
    count constrain which world sizes the body can ever run at.
    """
    parents = _parent_map(tree)
    node: ast.AST | None = func
    launcher: ast.AST | None = None
    while node is not None:
        node = parents.get(id(node))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            launcher = node
            break
    if launcher is None:
        return [], frozenset()
    np_names = _np_names_for(launcher, func)
    if not np_names:
        return [], frozenset()
    guards: list[ast.expr] = []
    for stmt in ast.walk(launcher):
        if not isinstance(stmt, ast.If):
            continue
        if not all(isinstance(s, ast.Raise) for s in stmt.body):
            continue
        if any(isinstance(n, ast.Name) and n.id in np_names
               for n in ast.walk(stmt.test)):
            guards.append(stmt.test)
    return guards, np_names


# ---------------------------------------------------------------------------
# The symbolic check
# ---------------------------------------------------------------------------

def _int_consts(tree: ast.AST, func: ast.AST) -> dict[str, int]:
    return {
        name: value
        for name, value in _enclosing_env(tree, func).items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


def check_protocol_symbolic(
    func: ast.AST,
    tree: ast.AST,
    *,
    max_p: int | None = None,
) -> SymbolicVerdict:
    """Check one SPMD root for every world size up to the domain cutoff.

    Always returns a verdict.  ``verdict.universal`` is True only when
    the body fits the rank-set domain and every valid size up to the
    cutoff simulated cleanly; otherwise ``verdict.reason`` explains the
    abstention and ``verdict.checked`` lists the sizes that *were*
    simulated (their findings still stand — a concrete witness is a
    concrete witness regardless of abstention).
    """
    scan = scan_domain(func, _int_consts(tree, func))
    verdict = SymbolicVerdict(domain=scan)
    verdict.reason = scan.violation
    verdict.reason_line = scan.violation_line

    cutoff = scan.cutoff() if scan.inside else CROSS_CHECK_MAX
    if scan.inside and cutoff > (max_p or P_CAP):
        verdict.reason = "domain-overflow"
        cutoff = CROSS_CHECK_MAX
    cap = max_p or P_CAP
    verdict.cutoff = min(cutoff, cap)

    guards, np_names = launcher_preconditions(func, tree)
    candidate = range(P_MIN, verdict.cutoff + 1)
    if guards:
        sizes = valid_world_sizes(guards, np_names, candidate)
    else:
        sizes = list(candidate)
    verdict.excluded = [p for p in candidate if p not in sizes]
    if not sizes:
        verdict.reason = verdict.reason or "no-valid-world"
        return verdict

    merged: dict[tuple[str, int], ProtocolFinding] = {}
    witness_sizes: dict[tuple[str, int], list[int]] = {}
    for p in sizes:
        try:
            traces = extract_traces(func, tree, size=p)
        except Ambiguous as exc:
            verdict.reason = verdict.reason or ambiguity_reason(exc)
            break
        except RecursionError:
            verdict.reason = verdict.reason or "recursion"
            break
        verdict.checked.append(p)
        for finding in simulate(traces):
            key = (finding.rule, finding.line)
            witness_sizes.setdefault(key, []).append(p)
            if key not in merged:
                details = dict(finding.details)
                details["witness_p"] = p
                merged[key] = ProtocolFinding(
                    rule=finding.rule, line=finding.line,
                    message=finding.message, severity=finding.severity,
                    details=details,
                )
    for key, finding in merged.items():
        finding.details["sizes"] = witness_sizes[key]

    verdict.findings = sorted(
        merged.values(), key=lambda f: (f.line, f.rule))
    verdict.universal = (
        verdict.reason is None and list(verdict.checked) == sizes
    )
    return verdict


# ---------------------------------------------------------------------------
# Collective-algorithm schedules
# ---------------------------------------------------------------------------

#: Default verification bound for collective schedules.  Every registered
#: algorithm's schedule shape is a pure function of (P, pof2-remainder,
#: divisor structure); 2..66 covers each power-of-two boundary through 64
#: plus both parities around it, so any deadlock a larger P could exhibit
#: already appears inside this window.
SCHEDULE_P_MAX = 66


def _schedule_rank_traces(neutral: tuple) -> list:
    """Convert :func:`repro.mpi.algorithms.schedule_traces` tuples into the
    simulator's :class:`RankTrace` form (internal phases become tags)."""
    from ..flow.protocol import Op, RankTrace

    traces = []
    for rank, ops in enumerate(neutral):
        converted = []
        for i, (kind, peer, phase) in enumerate(ops):
            if kind == "send":
                converted.append(Op(kind="send", line=i, dest=peer, tag=phase))
            else:
                converted.append(Op(kind="recv", line=i, source=peer, tag=phase))
        traces.append(RankTrace(rank=rank, ops=converted))
    return traces


def check_schedule_symbolic(
    collective: str,
    algorithm: str,
    *,
    max_p: int = SCHEDULE_P_MAX,
    root: int = 0,
) -> SymbolicVerdict:
    """Prove a registered collective algorithm deadlock-free for P >= 2.

    Replays the algorithm's recorded message schedule (pure data, no real
    transports) through the eager-buffered trace simulator at every world
    size ``2 <= P <= max_p``.  Failures are stuck states (severity
    ``error``) and unreceived messages (PDC112); the symmetric
    send-before-recv *warning* (PDC103) is waived by construction — the
    collective context is buffered-eager on both backends, so a schedule
    in which every rank sends first cannot block.

    ``universal=True`` means every size simulated clean: the schedules
    are pure functions of (P, power-of-two remainder, divisor structure),
    all of whose shapes occur within the window (see
    :data:`SCHEDULE_P_MAX`).
    """
    from repro.mpi.algorithms import schedule_traces

    verdict = SymbolicVerdict(cutoff=max_p)
    merged: dict[tuple[str, int], ProtocolFinding] = {}
    witness_sizes: dict[tuple[str, int], list[int]] = {}
    for p in range(P_MIN, max_p + 1):
        if root >= p:  # no such rank at this world size
            verdict.excluded.append(p)
            continue
        neutral = schedule_traces(collective, algorithm, p, root)
        traces = _schedule_rank_traces(neutral)
        verdict.checked.append(p)
        for finding in simulate(traces):
            if finding.severity != "error" and finding.rule != "PDC112":
                continue
            key = (finding.rule, finding.line)
            witness_sizes.setdefault(key, []).append(p)
            if key not in merged:
                details = dict(finding.details)
                details["witness_p"] = p
                merged[key] = ProtocolFinding(
                    rule=finding.rule, line=finding.line,
                    message=finding.message, severity=finding.severity,
                    details=details,
                )
    for key, finding in merged.items():
        finding.details["sizes"] = witness_sizes[key]
    verdict.findings = sorted(merged.values(), key=lambda f: (f.line, f.rule))
    verdict.universal = True
    return verdict
