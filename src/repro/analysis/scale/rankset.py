"""The rank-set abstract domain over a symbolic world size ``P``.

The concrete protocol simulator (:mod:`repro.analysis.flow.protocol`)
answers "does this SPMD body deadlock at world size 4?".  Learners — and
the grading pipeline — need the stronger claim "deadlock-free for *all*
P >= 2".  This module supplies the abstraction that licenses that jump:

* a :class:`RankSet` describes a subset of ``{0 .. P-1}`` uniformly in a
  symbolic ``P`` — singletons counted from the front (``rank == 2``) or
  the back (``rank == P-1``), residue classes (``rank % 2 == 0``), and
  affine threshold intervals (``rank < 3``, ``rank >= P - 1``,
  ``rank < P // 2``);
* :func:`scan_domain` checks that every rank-dependent guard and every
  message endpoint in a body stays inside that domain and collects the
  constants that parameterize it;
* :meth:`DomainScan.cutoff` turns those constants into a *cutoff* world
  size ``P_c``.

The cutoff argument (a small-model / data-independence argument in the
style of parameterized protocol verification): when every rank guard and
endpoint is built from front offsets ``<= F``, back offsets ``<= B`` and
periodic classifiers of period dividing ``L`` (moduli, xor masks), two
ranks in the "middle" region that share a residue class are
indistinguishable — every guard evaluates identically on them and their
message endpoints shift uniformly.  Growing ``P`` past
``F + B + 2 * L`` therefore only replicates already-represented middle
classes, and the per-rank trace *structure* (which matchings exist,
which cycles can form) repeats with period ``L`` in ``P``.  Checking
every concrete world size ``2 <= P <= P_c`` with ``P_c = F + B + 2 * L``
then covers one full period beyond the stabilization threshold, which is
what :mod:`repro.analysis.scale.symbolic` relies on.  Integer division
of ``P`` (``rank < P // d``) is folded in by multiplying the period with
the divisor's lcm; bodies using constructs outside the domain are never
silently generalized — the scan reports a reason code and the checker
abstains from the all-P claim (it still reports concrete-size results).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field

__all__ = [
    "P_MIN",
    "P_CAP",
    "CROSS_CHECK_MAX",
    "RankSet",
    "DomainScan",
    "parse_rank_guard",
    "parse_endpoint",
    "scan_domain",
    "valid_world_sizes",
]

#: Smallest SPMD world the all-P claim quantifies over.
P_MIN = 2
#: Largest cutoff we are willing to simulate; beyond this the checker
#: abstains with reason ``domain-overflow``.
P_CAP = 16
#: The concrete simulator sizes the agreement suite cross-checks against.
CROSS_CHECK_MAX = 5

#: Names that bind the calling rank / world size in learner SPMD bodies.
_RANK_CALLS = frozenset({"Get_rank"})
_SIZE_CALLS = frozenset({"Get_size"})


# ---------------------------------------------------------------------------
# Rank sets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RankSet:
    """A subset of ``{0 .. P-1}`` described uniformly in symbolic ``P``.

    The representation is a predicate tree (``kind`` in ``"all"``,
    ``"none"``, ``"front"``, ``"back"``, ``"residue"``, ``"lt"``,
    ``"lt-back"``, ``"lt-div"``, ``"not"``, ``"and"``, ``"or"``) —
    enough structure to enumerate members at any concrete ``P`` and to
    expose the constants the cutoff bound needs.

    * ``front(c)``     — ``{c}``
    * ``back(c)``      — ``{P - c}``        (c >= 1)
    * ``residue(m,r)`` — ``{k : k % m == r}``
    * ``lt(c)``        — ``{k : k < c}``
    * ``lt_back(c)``   — ``{k : k < P - c}``
    * ``lt_div(d,c)``  — ``{k : k < P // d + c}``
    """

    kind: str
    a: int = 0
    b: int = 0
    children: tuple["RankSet", ...] = ()

    # -------------------------------------------------------- constructors
    @staticmethod
    def all() -> "RankSet":
        return RankSet("all")

    @staticmethod
    def none() -> "RankSet":
        return RankSet("none")

    @staticmethod
    def front(c: int) -> "RankSet":
        return RankSet("front", a=c)

    @staticmethod
    def back(c: int) -> "RankSet":
        return RankSet("back", a=c)

    @staticmethod
    def residue(m: int, r: int) -> "RankSet":
        return RankSet("residue", a=m, b=r % m)

    @staticmethod
    def lt(c: int) -> "RankSet":
        return RankSet("lt", a=c)

    @staticmethod
    def lt_back(c: int) -> "RankSet":
        return RankSet("lt-back", a=c)

    @staticmethod
    def lt_div(d: int, c: int = 0) -> "RankSet":
        return RankSet("lt-div", a=d, b=c)

    def negate(self) -> "RankSet":
        return RankSet("not", children=(self,))

    def union(self, other: "RankSet") -> "RankSet":
        return RankSet("or", children=(self, other))

    def intersect(self, other: "RankSet") -> "RankSet":
        return RankSet("and", children=(self, other))

    # ------------------------------------------------------------- queries
    def contains(self, rank: int, p: int) -> bool:
        if self.kind == "all":
            return True
        if self.kind == "none":
            return False
        if self.kind == "front":
            return rank == self.a
        if self.kind == "back":
            return rank == p - self.a
        if self.kind == "residue":
            return rank % self.a == self.b
        if self.kind == "lt":
            return rank < self.a
        if self.kind == "lt-back":
            return rank < p - self.a
        if self.kind == "lt-div":
            return rank < p // self.a + self.b
        if self.kind == "not":
            return not self.children[0].contains(rank, p)
        if self.kind == "and":
            return all(c.contains(rank, p) for c in self.children)
        if self.kind == "or":
            return any(c.contains(rank, p) for c in self.children)
        raise ValueError(f"unknown RankSet kind {self.kind!r}")

    def members(self, p: int) -> frozenset[int]:
        return frozenset(r for r in range(p) if self.contains(r, p))

    def witness_nonempty(self, p_max: int = P_CAP) -> int | None:
        """Smallest world size at which the set has a member, if any."""
        for p in range(P_MIN, p_max + 1):
            if self.members(p):
                return p
        return None

    # ---------------------------------------------------- cutoff constants
    def constants(self) -> tuple[set[int], set[int], set[int], set[int]]:
        """``(front, back, moduli, divisors)`` constants of this set."""
        front: set[int] = set()
        back: set[int] = set()
        moduli: set[int] = set()
        divisors: set[int] = set()
        if self.kind in ("front", "lt"):
            front.add(abs(self.a))
        elif self.kind in ("back", "lt-back"):
            back.add(abs(self.a))
        elif self.kind == "residue":
            moduli.add(self.a)
        elif self.kind == "lt-div":
            divisors.add(self.a)
            front.add(abs(self.b))
        for child in self.children:
            f, bk, m, d = child.constants()
            front |= f
            back |= bk
            moduli |= m
            divisors |= d
        return front, back, moduli, divisors

    def describe(self) -> str:
        if self.kind == "all":
            return "all ranks"
        if self.kind == "none":
            return "no rank"
        if self.kind == "front":
            return f"rank == {self.a}"
        if self.kind == "back":
            return f"rank == P-{self.a}"
        if self.kind == "residue":
            return f"rank % {self.a} == {self.b}"
        if self.kind == "lt":
            return f"rank < {self.a}"
        if self.kind == "lt-back":
            return f"rank < P-{self.a}"
        if self.kind == "lt-div":
            offset = f"+{self.b}" if self.b else ""
            return f"rank < P//{self.a}{offset}"
        if self.kind == "not":
            return f"not ({self.children[0].describe()})"
        joiner = " and " if self.kind == "and" else " or "
        return joiner.join(f"({c.describe()})" for c in self.children)


# ---------------------------------------------------------------------------
# Parsing guards and endpoints into the domain
# ---------------------------------------------------------------------------

class OutsideDomain(Exception):
    """An expression does not fit the rank-set abstract domain."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(detail or code)
        self.code = code


@dataclass(frozen=True)
class _Affine:
    """``r * rank + s * P + c`` with integer coefficients — the value
    language rank guards and endpoints are allowed to use.  ``mod`` /
    ``xor`` wrap an affine core once (``(rank + 1) % P``, ``rank ^ 1``)."""

    r: int = 0  # coefficient of rank
    s: int = 0  # coefficient of P (the world size)
    c: int = 0  # constant
    mod: int | None = None     # value % mod applied after the affine core
    mod_p: bool = False        # value % P applied after the affine core
    xor: int | None = None     # value ^ xor applied after the affine core

    @property
    def wrapped(self) -> bool:
        return self.mod is not None or self.mod_p or self.xor is not None

    def evaluate(self, rank: int, p: int) -> int:
        value = self.r * rank + self.s * p + self.c
        if self.xor is not None:
            value ^= self.xor
        if self.mod is not None:
            value %= self.mod
        if self.mod_p:
            value %= p
        return value


def _affine(node: ast.expr, rank_names: frozenset[str],
            size_names: frozenset[str],
            consts: dict[str, int]) -> _Affine:
    """Parse one expression into :class:`_Affine`; raises OutsideDomain."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            raise OutsideDomain("nonaffine-rank-expr",
                                f"non-integer constant {node.value!r}")
        return _Affine(c=node.value)
    if isinstance(node, ast.Name):
        if node.id in rank_names:
            return _Affine(r=1)
        if node.id in size_names:
            return _Affine(s=1)
        if node.id in consts:
            return _Affine(c=consts[node.id])
        raise OutsideDomain("nonaffine-rank-expr",
                            f"unresolved name {node.id!r}")
    if isinstance(node, ast.Call):
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else ""
        if attr in _RANK_CALLS:
            return _Affine(r=1)
        if attr in _SIZE_CALLS:
            return _Affine(s=1)
        raise OutsideDomain("nonaffine-rank-expr", f"call {attr or '?'}()")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _affine(node.operand, rank_names, size_names, consts)
        if inner.wrapped:
            raise OutsideDomain("nonaffine-rank-expr", "negated wrap")
        return _Affine(r=-inner.r, s=-inner.s, c=-inner.c)
    if isinstance(node, ast.BinOp):
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            left = _affine(node.left, rank_names, size_names, consts)
            right = _affine(node.right, rank_names, size_names, consts)
            if left.wrapped or right.wrapped:
                raise OutsideDomain("nonaffine-rank-expr",
                                    "arithmetic on a wrapped value")
            sign = 1 if isinstance(op, ast.Add) else -1
            return _Affine(r=left.r + sign * right.r,
                           s=left.s + sign * right.s,
                           c=left.c + sign * right.c)
        if isinstance(op, ast.Mult):
            left = _affine(node.left, rank_names, size_names, consts)
            right = _affine(node.right, rank_names, size_names, consts)
            if left.wrapped or right.wrapped:
                raise OutsideDomain("nonaffine-rank-expr",
                                    "arithmetic on a wrapped value")
            if left.r == left.s == 0:
                return _Affine(r=left.c * right.r, s=left.c * right.s,
                               c=left.c * right.c)
            if right.r == right.s == 0:
                return _Affine(r=right.c * left.r, s=right.c * left.s,
                               c=right.c * left.c)
            raise OutsideDomain("nonaffine-rank-expr", "rank * rank product")
        if isinstance(op, ast.Mod):
            core = _affine(node.left, rank_names, size_names, consts)
            modulus = _affine(node.right, rank_names, size_names, consts)
            if core.wrapped:
                raise OutsideDomain("nonaffine-rank-expr", "nested wrap")
            if modulus.r == 0 and modulus.s == 1 and modulus.c == 0:
                return _Affine(core.r, core.s, core.c, mod_p=True)
            if modulus.r == 0 and modulus.s == 0 and modulus.c > 0:
                return _Affine(core.r, core.s, core.c, mod=modulus.c)
            raise OutsideDomain("nonaffine-rank-expr", "irregular modulus")
        if isinstance(op, ast.BitXor):
            core = _affine(node.left, rank_names, size_names, consts)
            mask = _affine(node.right, rank_names, size_names, consts)
            if core.wrapped or mask.r or mask.s or mask.c < 0:
                raise OutsideDomain("nonaffine-rank-expr", "irregular xor")
            return _Affine(core.r, core.s, core.c, xor=mask.c)
        if isinstance(op, ast.FloorDiv):
            core = _affine(node.left, rank_names, size_names, consts)
            div = _affine(node.right, rank_names, size_names, consts)
            if (core.wrapped or core.r or div.r or div.s
                    or div.c <= 0 or core.s != 1 or core.c != 0):
                raise OutsideDomain("nonaffine-rank-expr",
                                    "irregular integer division")
            # P // d: representable only as a comparison threshold; mark
            # it with a dedicated sentinel the comparison parser unpacks.
            return _Affine(s=div.c, mod=None, mod_p=False, xor=None, c=-1,
                           r=0)  # see _compare_to_rankset
    raise OutsideDomain("nonaffine-rank-expr", ast.dump(node)[:60])


def _mentions(node: ast.AST, names: frozenset[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in names:
            return True
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _RANK_CALLS):
            return True
    return False


def _compare_to_rankset(left: _Affine, op: ast.cmpop,
                        right: _Affine) -> RankSet:
    """Build the rank set of ``left <op> right`` — one side must be the
    bare rank, the other rank-free."""
    if left.r != 0 and right.r != 0:
        raise OutsideDomain("nonaffine-rank-guard", "rank on both sides")
    if right.r != 0:  # normalize to rank on the left
        flipped = {ast.Lt: ast.Gt, ast.Gt: ast.Lt,
                   ast.LtE: ast.GtE, ast.GtE: ast.LtE}
        op = flipped.get(type(op), type(op))()
        left, right = right, left
    if left.wrapped:
        # (rank % m) == r  /  (rank ^ c) == k  — equality only.
        if not isinstance(op, (ast.Eq, ast.NotEq)):
            raise OutsideDomain("nonaffine-rank-guard",
                                "ordered comparison of a wrapped rank")
        if right.r or right.s:
            raise OutsideDomain("nonaffine-rank-guard",
                                "wrapped rank against a P-dependent bound")
        if left.mod is not None and left.r == 1 and not left.mod_p:
            base = RankSet.residue(left.mod, right.c - left.c)
        elif left.xor is not None and left.r == 1 and left.mod is None:
            period = 1 << max(1, (left.xor + left.c).bit_length())
            target = (right.c ^ left.xor) - left.c
            base = (RankSet.residue(period, target)
                    if 0 <= target < period else RankSet.none())
        else:
            raise OutsideDomain("nonaffine-rank-guard", "irregular wrap")
        return base.negate() if isinstance(op, ast.NotEq) else base
    if left.r != 1:
        raise OutsideDomain("nonaffine-rank-guard",
                            f"rank coefficient {left.r}")
    if left.s or left.c:
        # fold rank + k <op> bound  into  rank <op> bound - k
        right = _Affine(r=0, s=right.s - left.s, c=right.c - left.c)
    if right.mod is not None and right.s > 0 and right.c == -1:
        # the P // d sentinel from _affine
        divisor, offset = right.s, 0
        lt = RankSet.lt_div(divisor, offset)
        if isinstance(op, ast.Lt):
            return lt
        if isinstance(op, ast.GtE):
            return lt.negate()
        raise OutsideDomain("nonaffine-rank-guard", "P//d equality guard")
    if right.wrapped:
        raise OutsideDomain("nonaffine-rank-guard", "wrapped bound")

    if right.s == 0:  # rank <op> c
        c = right.c
        table = {
            ast.Eq: RankSet.front(c) if c >= 0 else RankSet.none(),
            ast.NotEq: (RankSet.front(c) if c >= 0
                        else RankSet.none()).negate(),
            ast.Lt: RankSet.lt(c),
            ast.LtE: RankSet.lt(c + 1),
            ast.Gt: RankSet.lt(c + 1).negate(),
            ast.GtE: RankSet.lt(c).negate(),
        }
    elif right.s == 1:  # rank <op> P - k
        k = -right.c
        table = {
            ast.Eq: RankSet.back(k),
            ast.NotEq: RankSet.back(k).negate(),
            ast.Lt: RankSet.lt_back(k),
            ast.LtE: RankSet.lt_back(k - 1),
            ast.Gt: RankSet.lt_back(k - 1).negate(),
            ast.GtE: RankSet.lt_back(k).negate(),
        }
    else:
        raise OutsideDomain("nonaffine-rank-guard",
                            f"bound with P coefficient {right.s}")
    result = table.get(type(op))
    if result is None:
        raise OutsideDomain("nonaffine-rank-guard",
                            f"comparison {type(op).__name__}")
    return result


def parse_rank_guard(
    expr: ast.expr,
    rank_names: frozenset[str],
    size_names: frozenset[str],
    consts: dict[str, int] | None = None,
) -> RankSet:
    """Parse a boolean guard over the rank into a :class:`RankSet`.

    Raises :class:`OutsideDomain` when the guard does not fit the domain.
    Guards that mention only the world size parse to ``all``/``none``
    placeholders — they are P-conditions, not rank splits, and the
    concrete per-size simulation resolves them exactly.
    """
    consts = consts or {}
    if isinstance(expr, ast.BoolOp):
        parts = [parse_rank_guard(v, rank_names, size_names, consts)
                 for v in expr.values]
        out = parts[0]
        for part in parts[1:]:
            out = (out.intersect(part) if isinstance(expr.op, ast.And)
                   else out.union(part))
        return out
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        return parse_rank_guard(
            expr.operand, rank_names, size_names, consts).negate()
    if isinstance(expr, ast.Compare):
        if len(expr.ops) != 1:
            raise OutsideDomain("nonaffine-rank-guard", "chained comparison")
        if not _mentions(expr, rank_names):
            return RankSet.all()  # a P-only condition: no rank split
        left = _affine(expr.left, rank_names, size_names, consts)
        right = _affine(expr.comparators[0], rank_names, size_names, consts)
        return _compare_to_rankset(left, expr.ops[0], right)
    if not _mentions(expr, rank_names):
        return RankSet.all()
    if isinstance(expr, ast.Name) and expr.id in rank_names:
        # truthiness of the rank itself: rank != 0
        return RankSet.front(0).negate()
    raise OutsideDomain("nonaffine-rank-guard", ast.dump(expr)[:60])


def parse_endpoint(
    expr: ast.expr,
    rank_names: frozenset[str],
    size_names: frozenset[str],
    consts: dict[str, int] | None = None,
) -> _Affine:
    """Parse a message endpoint (dest/source/root) expression.

    Raises :class:`OutsideDomain` (code ``nonaffine-endpoint``) when the
    endpoint is not affine-with-wrap in rank and P.
    """
    try:
        return _affine(expr, rank_names, size_names, consts or {})
    except OutsideDomain as exc:
        raise OutsideDomain("nonaffine-endpoint", str(exc)) from exc


# ---------------------------------------------------------------------------
# Whole-body domain scan and the cutoff
# ---------------------------------------------------------------------------

@dataclass
class DomainScan:
    """Constants gathered from every rank guard / endpoint in one body."""

    front: set[int] = field(default_factory=set)
    back: set[int] = field(default_factory=set)
    moduli: set[int] = field(default_factory=set)
    divisors: set[int] = field(default_factory=set)
    guards: int = 0
    endpoints: int = 0
    violation: str | None = None   # reason code, e.g. "nonaffine-rank-guard"
    violation_line: int | None = None

    @property
    def inside(self) -> bool:
        return self.violation is None

    def absorb_set(self, rs: RankSet) -> None:
        f, b, m, d = rs.constants()
        self.front |= f
        self.back |= b
        self.moduli |= m
        self.divisors |= d

    def absorb_affine(self, aff: _Affine) -> None:
        self.front.add(abs(aff.c))
        if aff.mod is not None:
            self.moduli.add(aff.mod)
        if aff.xor is not None:
            self.moduli.add(1 << max(1, aff.xor.bit_length()))

    def cutoff(self) -> int:
        """World sizes ``2 .. cutoff()`` decide the all-P verdict."""
        front = max(self.front, default=0) + 1
        back = max(self.back, default=0) + 1
        period = math.lcm(*self.moduli) if self.moduli else 1
        period = math.lcm(period, *self.divisors) if self.divisors else period
        return max(P_MIN, CROSS_CHECK_MAX, front + back + 2 * period)


def _rank_size_names(func: ast.AST) -> tuple[frozenset[str], frozenset[str]]:
    """Names bound (anywhere in the body) from Get_rank()/Get_size()."""
    ranks: set[str] = set()
    sizes: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        targets = node.targets[0]
        pairs: list[tuple[ast.expr, ast.expr]] = []
        if (isinstance(targets, ast.Tuple) and isinstance(node.value, ast.Tuple)
                and len(targets.elts) == len(node.value.elts)):
            pairs = list(zip(targets.elts, node.value.elts))
        else:
            pairs = [(t, node.value) for t in node.targets]
        for target, value in pairs:
            if not (isinstance(target, ast.Name) and isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)):
                continue
            if value.func.attr in _RANK_CALLS:
                ranks.add(target.id)
            elif value.func.attr in _SIZE_CALLS:
                sizes.add(target.id)
    # Common teaching names even when bound through helpers.
    ranks |= {"rank", "id", "my_rank", "myrank"} & _assigned_names(func)
    sizes |= {"size", "nprocs", "num_procs", "numProcesses", "world_size",
              "n_ranks"} & _assigned_names(func)
    return frozenset(ranks), frozenset(sizes)


def _assigned_names(func: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(func)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store)
    }


_ENDPOINT_KEYWORDS = frozenset({"dest", "source", "root"})
_ENDPOINT_METHODS = frozenset({
    "send", "Send", "ssend", "Ssend", "isend", "Isend", "ibsend", "bsend",
    "Bsend", "recv", "Recv", "irecv", "Irecv", "sendrecv", "Sendrecv",
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce",
})


def _single_assignments(func: ast.AST) -> dict[str, ast.expr]:
    """Names bound by exactly one simple ``name = expr`` in the body.

    Used to resolve endpoint aliases one level: ``partner = rank ^ 1``
    followed by ``comm.send(..., dest=partner)`` must contribute the xor
    period to the cutoff.  Multiply-assigned names are dropped — the
    concrete simulator tracks them exactly; the domain scan stays
    conservative and simply learns nothing from them.
    """
    seen: dict[str, ast.expr | None] = {}
    for node in ast.walk(func):
        targets: list[tuple[str, ast.expr]] = []
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                targets.append((target.id, node.value))
            elif (isinstance(target, ast.Tuple)
                  and isinstance(node.value, ast.Tuple)
                  and len(target.elts) == len(node.value.elts)):
                for t, v in zip(target.elts, node.value.elts):
                    if isinstance(t, ast.Name):
                        targets.append((t.id, v))
        elif isinstance(node, (ast.For, ast.AugAssign)):
            # loop targets / augmented names vary: poison them
            holder = node.target if not isinstance(node, ast.For) else node.target
            for sub in ast.walk(holder):
                if isinstance(sub, ast.Name):
                    seen[sub.id] = None
            continue
        for name, value in targets:
            seen[name] = None if name in seen else value
    return {name: expr for name, expr in seen.items() if expr is not None}


def scan_domain(func: ast.AST,
                consts: dict[str, int] | None = None) -> DomainScan:
    """Classify every rank guard and message endpoint in ``func``.

    A violation does not stop the scan — the first reason code is kept so
    the symbolic checker can both abstain *and* report how far the
    concrete sizes it did check agree.
    """
    consts = dict(consts or {})
    rank_names, size_names = _rank_size_names(func)
    aliases = _single_assignments(func)
    scan = DomainScan()

    def violate(code: str, line: int | None) -> None:
        if scan.violation is None:
            scan.violation = code
            scan.violation_line = line

    def resolve(expr: ast.expr) -> ast.expr:
        if (isinstance(expr, ast.Name)
                and expr.id not in rank_names | size_names
                and expr.id in aliases):
            return aliases[expr.id]
        return expr

    for node in ast.walk(func):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            test = node.test
            if not _mentions(test, rank_names):
                continue
            scan.guards += 1
            try:
                scan.absorb_set(parse_rank_guard(
                    test, rank_names, size_names, consts))
            except OutsideDomain as exc:
                violate(exc.code, getattr(test, "lineno", None))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in _ENDPOINT_METHODS:
                continue
            for kw in node.keywords:
                if kw.arg not in _ENDPOINT_KEYWORDS:
                    continue
                value = resolve(kw.value)
                if not _mentions(value, rank_names | size_names):
                    continue
                scan.endpoints += 1
                try:
                    scan.absorb_affine(parse_endpoint(
                        value, rank_names, size_names, consts))
                except OutsideDomain as exc:
                    violate(exc.code, node.lineno)
    return scan


# ---------------------------------------------------------------------------
# World-size preconditions
# ---------------------------------------------------------------------------

def valid_world_sizes(
    guards: list[ast.expr],
    np_names: frozenset[str],
    p_values: range,
) -> list[int]:
    """Filter candidate world sizes through launcher precondition guards.

    ``guards`` are the tests of ``if <cond>: raise`` statements that
    precede the ``mpirun(...)`` call in the launching function; a world
    size P is valid when *no* guard evaluates truthy with the process
    count bound to P.  Guards that cannot be evaluated are ignored
    (treated as not constraining) — dropping a precondition can only
    produce extra checked sizes, never fewer.
    """
    valid: list[int] = []
    for p in p_values:
        rejected = False
        for guard in guards:
            try:
                env = {name: p for name in np_names}
                value = eval(  # noqa: S307 - guarded, arithmetic-only AST
                    compile(ast.Expression(body=guard), "<guard>", "eval"),
                    {"__builtins__": {"len": len, "abs": abs, "min": min,
                                      "max": max, "int": int}},
                    env,
                )
            except Exception:
                continue
            if value:
                rejected = True
                break
        if not rejected:
            valid.append(p)
    return valid
