"""Scalability-aware static analysis: symbolic-rank protocol verification,
static cost/speedup prediction, and the parallel incremental lint driver.

Three layers on top of :mod:`repro.analysis.flow`:

* :mod:`.rankset` — the rank-set abstract domain over a symbolic world
  size ``P``: front/back offsets, residue classes and affine comparisons,
  plus the cutoff bound that turns "checked for P = 2..P_c" into
  "holds for all P >= 2" for programs inside the domain;
* :mod:`.symbolic` — symbolic-rank MPI protocol verification: the
  concrete per-rank simulator of :mod:`repro.analysis.flow.protocol`
  replayed over every world size up to the domain cutoff, with launcher
  preconditions, witness sizes on violations, and reason-coded
  abstention;
* :mod:`.cost` — the static cost/scalability analyzer: per-rank partial
  evaluation that derives message counts, communication bytes, abstract
  work and an Amdahl-style speedup bound as polynomials in the problem
  size ``N`` and the world size ``P``;
* :mod:`.driver` — the corpus-scale lint driver: content-hash keyed
  result caching and a process-pool fan-out with deterministic,
  byte-identical report ordering.
"""

from .cost import (
    CostModel,
    CostReport,
    CostSite,
    Poly,
    analyze_cost,
    analyze_module_cost,
    cost_report,
)
from .driver import CorpusResult, lint_corpus
from .rankset import (
    CROSS_CHECK_MAX,
    P_CAP,
    P_MIN,
    DomainScan,
    RankSet,
    parse_rank_guard,
    scan_domain,
    valid_world_sizes,
)
from .symbolic import SymbolicVerdict, check_protocol_symbolic

__all__ = [
    "P_MIN", "P_CAP", "CROSS_CHECK_MAX",
    "RankSet", "DomainScan", "parse_rank_guard", "scan_domain",
    "valid_world_sizes",
    "SymbolicVerdict", "check_protocol_symbolic",
    "Poly", "CostSite", "CostModel", "CostReport",
    "analyze_cost", "analyze_module_cost", "cost_report",
    "CorpusResult", "lint_corpus",
]
