"""Static cost and scalability prediction for SPMD bodies.

The analyzer evaluates an MPI body once per rank at sampled problem
sizes ``N`` and world sizes ``P`` — the same per-rank partial-evaluation
idea as :mod:`repro.analysis.flow.protocol`, but instead of matching
traces it *accounts*: every communication site is charged its message
count and payload bytes under the byte model of the actual runtime
(:func:`pickle.dumps` for object transport, raw ``nbytes`` for buffer
transport, the real collective algorithms' message complexity from
:mod:`repro.mpi.collectives`), and every statement executed charges one
abstract work tick to its rank.

The sampled totals are then identified as polynomials in ``N`` and ``P``
over the basis ``{1, N, P, N·P, P², N/P}`` (least squares with held-out
verification — a poor fit abstains rather than reporting a wrong
formula), and the per-rank work profile yields an Amdahl-style speedup
bound ``S(P) <= W(1) / max_r w_r(P)`` plus a fitted serial fraction.

Two trust levels share one evaluator:

* **trusted** (:func:`analyze_module_cost`) — for repo-owned exemplar
  modules: the module is imported and *pure same-module helpers are
  executed natively* when all their arguments are concrete, so payload
  byte predictions are exact up to the byte model.  Never used on
  learner submissions.
* **untrusted** (:func:`analyze_cost` as used by ``repro lint --cost``)
  — nothing is executed beyond a whitelist of safe builtins; unknown
  values stay abstract (typed unknowns, arrays tracked by length), byte
  totals honestly degrade to ``None`` where payloads are unknowable,
  and message counts/work ticks still feed the PDC120–122 scalability
  smells.
"""

from __future__ import annotations

import ast
import math
import operator
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable

from ..flow.protocol import _enclosing_env, spmd_roots

__all__ = [
    "Poly",
    "CostSite",
    "CostSample",
    "CostModel",
    "CostReport",
    "analyze_cost",
    "analyze_module_cost",
    "cost_report",
    "CostAmbiguous",
]

PROC_NULL = -2  # repro.mpi.constants.PROC_NULL (kept literal: no runtime dep)

_MAX_LOOP_ITERS = 512
_MAX_STEPS = 200_000
_MAX_WHILE_ITERS = 64

_SEND_METHODS = frozenset({"send", "ssend", "isend", "ibsend", "bsend"})
_BUF_SEND_METHODS = frozenset({"Send", "Ssend", "Isend", "Bsend"})
_RECV_METHODS = frozenset({"recv", "irecv", "Recv", "Irecv"})
_OBJ_COLLECTIVES = frozenset({
    "bcast", "scatter", "gather", "reduce", "allreduce", "allgather",
    "alltoall", "barrier", "scan", "exscan",
})
_BUF_COLLECTIVES = frozenset({
    "Bcast", "Scatter", "Gather", "Reduce", "Allreduce", "Allgather",
    "Alltoall", "Barrier", "Scan",
})
_ROOTED = frozenset({"bcast", "Bcast", "scatter", "Scatter", "gather",
                     "Gather", "reduce", "Reduce"})
_ALLOC_CALLS = frozenset({"zeros", "empty", "ones", "full", "zeros_like",
                          "empty_like", "arange", "linspace"})

_SAFE_BUILTINS: dict[str, Any] = {
    "range": range, "len": len, "abs": abs, "min": min, "max": max,
    "int": int, "float": float, "sum": sum, "divmod": divmod, "list": list,
    "tuple": tuple, "sorted": sorted, "str": str, "bool": bool,
    "enumerate": enumerate, "zip": zip, "round": round, "reversed": reversed,
}

_BINOPS = {
    ast.Add: operator.add, ast.Sub: operator.sub, ast.Mult: operator.mul,
    ast.FloorDiv: operator.floordiv, ast.Mod: operator.mod,
    ast.Div: operator.truediv, ast.Pow: operator.pow,
    ast.BitXor: operator.xor, ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_, ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
}
_CMPOPS = {
    ast.Eq: operator.eq, ast.NotEq: operator.ne, ast.Lt: operator.lt,
    ast.LtE: operator.le, ast.Gt: operator.gt, ast.GtE: operator.ge,
    ast.Is: operator.is_, ast.IsNot: operator.is_not,
}

#: pickle size of a float payload (protocol-stable; asserted by tests)
FLOAT_PICKLE_BYTES = len(pickle.dumps(0.0))


class CostAmbiguous(Exception):
    """The body does something the cost evaluator cannot account for."""

    def __init__(self, code: str, detail: str = "", line: int | None = None):
        super().__init__(detail or code)
        self.code = code
        self.line = line


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

class Unknown:
    """A value the evaluator cannot compute, optionally typed."""

    __slots__ = ("tag",)

    def __init__(self, tag: str | None = None) -> None:
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<unknown:{self.tag or '?'}>"


@dataclass(frozen=True)
class ArrayVal:
    """An array tracked by length only (untrusted mode, halo padding...)."""

    length: int
    itemsize: int = 8

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    def slice_length(self, lower: int | None, upper: int | None,
                     step: int | None) -> int:
        return len(range(*slice(lower, upper, step).indices(self.length)))


class CommVal:
    """The communicator sentinel; cartesian variants carry their grid."""

    def __init__(self, kind: str = "world",
                 dims: tuple[int, ...] | None = None,
                 periods: tuple[bool, ...] | None = None) -> None:
        self.kind = kind
        self.dims = dims
        self.periods = periods

    def coords(self, rank: int) -> tuple[int, ...]:
        assert self.dims is not None
        out: list[int] = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def cart_rank(self, coords: tuple[int, ...]) -> int:
        assert self.dims is not None and self.periods is not None
        rank = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return PROC_NULL
            rank = rank * extent + c
        return rank

    def shift(self, rank: int, direction: int, disp: int) -> tuple[int, int]:
        me = list(self.coords(rank))

        def neighbor(offset: int) -> int:
            coords = list(me)
            coords[direction] += offset
            return self.cart_rank(tuple(coords))

        return neighbor(-disp), neighbor(disp)


def _is_abstract(value: Any) -> bool:
    return isinstance(value, (Unknown, ArrayVal, CommVal))


def _payload_pickle_bytes(value: Any) -> int | None:
    """Bytes of ``pickle.dumps(value)`` under the object-transport model."""
    if isinstance(value, Unknown):
        if value.tag == "float":
            return FLOAT_PICKLE_BYTES
        return None
    if isinstance(value, ArrayVal):
        try:
            import numpy as np
        except Exception:  # pragma: no cover - numpy is a repo dependency
            return None
        return len(pickle.dumps(np.zeros(value.length)))
    if isinstance(value, CommVal):
        return None
    try:
        return len(pickle.dumps(value))
    except Exception:
        return None


def _payload_raw_bytes(value: Any) -> int | None:
    """Raw buffer bytes under the typed-transport model."""
    if isinstance(value, ArrayVal):
        return value.nbytes
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    return None


# ---------------------------------------------------------------------------
# Cost sites
# ---------------------------------------------------------------------------

@dataclass
class CostSite:
    """Accounting for one communication/allocation site at one sample."""

    line: int
    kind: str          # "p2p" | "coll" | "alloc"
    name: str
    msgs: int = 0
    bytes: int | None = 0
    per_rank_msgs: list[int] = field(default_factory=list)
    calls_per_rank: int = 0
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "line": self.line, "kind": self.kind, "name": self.name,
            "msgs": self.msgs, "bytes": self.bytes,
            "per_rank_msgs": self.per_rank_msgs,
            "calls_per_rank": self.calls_per_rank,
            **({"note": self.note} if self.note else {}),
        }


class _SiteRecorder:
    """Per-(line, method) payload log, filled rank by rank."""

    def __init__(self, size: int) -> None:
        self.size = size
        # key -> {"kind","name","line","payloads": [per-rank list of
        #         (payload_bytes, root, raw) tuples], "sends": per-rank count}
        self.entries: dict[tuple[int, str], dict[str, Any]] = {}

    def _entry(self, line: int, name: str, kind: str) -> dict[str, Any]:
        key = (line, name)
        if key not in self.entries:
            self.entries[key] = {
                "kind": kind, "name": name, "line": line,
                "payloads": [[] for _ in range(self.size)],
                "sends": [0] * self.size,
                "send_bytes": [0] * self.size,
                "bytes_known": True,
            }
        return self.entries[key]

    def p2p_send(self, line: int, name: str, rank: int,
                 nbytes: int | None) -> None:
        entry = self._entry(line, name, "p2p")
        entry["sends"][rank] += 1
        if nbytes is None:
            entry["bytes_known"] = False
        else:
            entry["send_bytes"][rank] += nbytes

    def collective(self, line: int, name: str, rank: int,
                   nbytes: int | None, root: int | None,
                   raw: bool) -> None:
        entry = self._entry(line, name, "coll")
        entry["payloads"][rank].append((nbytes, root, raw))
        if nbytes is None:
            entry["bytes_known"] = False

    def alloc(self, line: int, name: str, rank: int) -> None:
        entry = self._entry(line, name, "alloc")
        entry["sends"][rank] += 1


def _coll_msg_count(name: str, size: int) -> int:
    """Messages one call of the collective moves, per the real algorithms.

    For collectives with selectable algorithms the count comes from the
    registry's recorded schedule of whatever the runtime's object-verb
    policy would pick (``resolve`` with ``nbytes=0``, honoring any
    ``REPRO_COLL_ALGO`` override) — so the prediction tracks the actual
    wire traffic even as algorithm defaults evolve.
    """
    if size <= 1:
        return 0
    from repro.mpi import algorithms as _mpi_algos

    if name in _mpi_algos.ALGORITHMS:
        algo = _mpi_algos.resolve(name, size=size, nbytes=0)
        return _mpi_algos.message_count(name, algo, size)
    if name in ("scatter", "gather", "scan", "exscan"):
        return size - 1
    if name == "alltoall":
        return size * (size - 1)
    return size - 1


def _coll_bytes(name: str, size: int, payloads: list[int | None],
                root: int, raw: bool) -> int | None:
    """Byte total of one collective call from the per-rank payload sizes.

    ``payloads[r]`` is the byte size of rank ``r``'s contribution (the
    ``sendobj`` it passed), mirroring what the runtime's transport would
    pickle; ``None`` anywhere makes the total unknown.
    """
    if size <= 1:
        return 0
    if any(b is None for b in payloads):
        return None
    sizes: list[int] = [int(b) for b in payloads]  # type: ignore[arg-type]
    mean = sum(sizes) / len(sizes)
    if name == "barrier":
        return 0  # empty raw tokens: payload_nbytes(b"") == 0
    if name == "gather":
        return sum(b for r, b in enumerate(sizes) if r != root)
    if name in ("reduce", "scan", "exscan"):
        return round((size - 1) * mean)
    if name == "bcast":
        return (size - 1) * sizes[root]
    if name == "scatter":
        # root's payload is the full chunk list; each message carries one
        # pickled chunk — approximate chunks as equal slices of the list.
        per = sizes[root] / size
        return round((size - 1) * per)
    if name == "allgather":
        # ring: each block travels size-1 hops, re-pickled bare per hop
        return (size - 1) * sum(sizes)
    if name == "alltoall":
        return round((size - 1) * mean)
    if name == "allreduce":
        return round(_coll_msg_count(name, size) * mean)
    return round(_coll_msg_count(name, size) * mean)


def _cart_setup_bytes(size: int) -> int:
    """Ring-allgather traffic of ``Create_cart``'s membership triples.

    Every rank contributes ``(flag, rank, rank)`` and each block travels
    ``size - 1`` hops, pickled bare per hop — exactly what the runtime's
    metadata-free ``allgather_ring`` puts on the wire.
    """
    per_block = [len(pickle.dumps((0, r, r))) for r in range(size)]
    return (size - 1) * sum(per_block)


# ---------------------------------------------------------------------------
# The per-rank evaluator
# ---------------------------------------------------------------------------

class _Return(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _CostEval:
    """Evaluate one SPMD body for one concrete rank, charging costs."""

    def __init__(
        self,
        rank: int,
        size: int,
        recorder: _SiteRecorder,
        namespace: dict[str, Any] | None,
        base_env: dict[str, Any],
        steps: list[int],
    ) -> None:
        self.rank = rank
        self.size = size
        self.recorder = recorder
        self.namespace = namespace  # module globals in trusted mode
        self.trusted = namespace is not None
        self.env: dict[str, Any] = dict(base_env)
        self.steps = steps
        self.work = 0          # abstract ticks charged to this rank
        self.loop_depth = 0

    # ------------------------------------------------------------------ entry
    def run(self, func: ast.AST, comm_args: dict[str, Any]) -> None:
        args = getattr(func, "args", None)
        if args is not None:
            params = [a.arg for a in args.args]
            defaults = list(args.defaults)
            for param, default in zip(params[len(params) - len(defaults):],
                                      defaults):
                self.env.setdefault(param, self._eval_default(default))
            for param in params:
                self.env.setdefault(param, Unknown())
        self.env.update(comm_args)
        body = (
            [ast.Expr(value=func.body)] if isinstance(func, ast.Lambda)
            else list(func.body)
        )
        try:
            self.exec_suite(body)
        except _Return:
            pass

    def _eval_default(self, default: ast.expr) -> Any:
        if isinstance(default, ast.Constant):
            return default.value
        native = self._native(default)
        if native is not _FAIL:
            return native
        return Unknown()

    # ---------------------------------------------------------------- helpers
    def _tick(self) -> None:
        self.steps[0] += 1
        if self.steps[0] > _MAX_STEPS:
            raise CostAmbiguous("eval-budget", "evaluation budget exceeded")

    def _charge(self, ticks: int = 1) -> None:
        self.work += ticks

    def _has_comm_ops(self, node: ast.AST) -> bool:
        comm_names = {n for n, v in self.env.items() if isinstance(v, CommVal)}
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in comm_names:
                return True
        return False

    # ------------------------------------------------------------- statements
    def exec_suite(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        self._tick()
        self._charge()
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, Unknown())
                op = _BINOPS.get(type(stmt.op))
                self.env[stmt.target.id] = self._binop_values(
                    op, current, value)
            else:
                self._bind(stmt.target, Unknown())
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval_expr(stmt.value) if stmt.value else Unknown()
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value)
            raise _Return
        elif isinstance(stmt, ast.Raise):
            raise _Return  # this rank stops here
        elif isinstance(stmt, ast.Break):
            raise _Break
        elif isinstance(stmt, ast.Continue):
            raise _Continue
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self.exec_suite(stmt.body)
        elif isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                if self._has_comm_ops(handler):
                    raise CostAmbiguous("comm-in-handler",
                                        "communication in exception handler",
                                        stmt.lineno)
            self.exec_suite(stmt.body)
            self.exec_suite(stmt.orelse)
            self.exec_suite(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.env[stmt.name] = Unknown()
        elif isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test)
        elif isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                               ast.Import, ast.ImportFrom, ast.Delete)):
            pass
        else:
            if self._has_comm_ops(stmt):
                raise CostAmbiguous(
                    "unsupported-stmt",
                    f"unsupported statement {type(stmt).__name__}",
                    stmt.lineno)

    def _bind(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (isinstance(value, (tuple, list))
                    and len(value) == len(target.elts)):
                for t, v in zip(target.elts, value):
                    self._bind(t, v)
            else:
                for t in target.elts:
                    self._bind(t, Unknown())
        elif isinstance(target, ast.Subscript):
            base = self.eval_expr(target.value)
            index = self.eval_expr(target.slice)
            if (not _is_abstract(base) and not _is_abstract(index)
                    and not _is_abstract(value)):
                try:
                    base[index] = value
                except Exception:
                    pass
            # stores into abstract arrays keep their tracked length

    def _havoc(self, stmt: ast.stmt) -> None:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                self.env[sub.id] = Unknown()

    def _exec_if(self, stmt: ast.If) -> None:
        test = self.eval_expr(stmt.test)
        if _is_abstract(test):
            if any(self._has_comm_ops(s) for s in stmt.body + stmt.orelse):
                raise CostAmbiguous(
                    "unknown-branch-comm",
                    "unknown branch condition guards communication",
                    stmt.lineno)
            self._havoc(stmt)
            return
        self.exec_suite(stmt.body if test else stmt.orelse)

    def _exec_while(self, stmt: ast.While) -> None:
        for _ in range(_MAX_WHILE_ITERS):
            test = self.eval_expr(stmt.test)
            if _is_abstract(test):
                if self._has_comm_ops(stmt):
                    raise CostAmbiguous(
                        "while-around-comm",
                        "while loop around communication", stmt.lineno)
                self._havoc(stmt)
                return
            if not test:
                self.exec_suite(stmt.orelse)
                return
            try:
                self.loop_depth += 1
                try:
                    self.exec_suite(stmt.body)
                finally:
                    self.loop_depth -= 1
            except _Break:
                return
            except _Continue:
                continue
        if self._has_comm_ops(stmt):
            raise CostAmbiguous("while-around-comm",
                                "unbounded while loop around communication",
                                stmt.lineno)
        self._havoc(stmt)

    def _exec_for(self, stmt: ast.For) -> None:
        iterable = self.eval_expr(stmt.iter)
        if isinstance(iterable, (enumerate, zip, reversed, map, filter)):
            try:
                iterable = list(iterable)
            except Exception:
                iterable = Unknown()
        concrete = isinstance(iterable, (list, tuple, range, str))
        if not concrete:
            if self._has_comm_ops(stmt):
                raise CostAmbiguous("unknown-loop-comm",
                                    "loop bounds unknown around communication",
                                    stmt.lineno)
            if isinstance(iterable, ArrayVal):
                self._charge(iterable.length)
            self._havoc(stmt)
            return
        if len(iterable) > _MAX_LOOP_ITERS:
            if self._has_comm_ops(stmt):
                raise CostAmbiguous("unknown-loop-comm",
                                    "loop too long around communication",
                                    stmt.lineno)
            self._charge(len(iterable))
            self._havoc(stmt)
            return
        broke = False
        for item in iterable:
            self._bind(stmt.target, item)
            try:
                self.loop_depth += 1
                try:
                    self.exec_suite(stmt.body)
                finally:
                    self.loop_depth -= 1
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke:
            self.exec_suite(stmt.orelse)

    # ------------------------------------------------------------ expressions
    def eval_expr(self, expr: ast.expr) -> Any:
        self._tick()
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id in self.env:
                return self.env[expr.id]
            if self.trusted and expr.id in self.namespace:  # type: ignore[operator]
                return self.namespace[expr.id]  # type: ignore[index]
            if expr.id in _SAFE_BUILTINS:
                return _SAFE_BUILTINS[expr.id]
            return Unknown()
        if isinstance(expr, ast.Tuple):
            return tuple(self.eval_expr(e) for e in expr.elts)
        if isinstance(expr, ast.List):
            return [self.eval_expr(e) for e in expr.elts]
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            return self._binop_values(_BINOPS.get(type(expr.op)), left, right)
        if isinstance(expr, ast.UnaryOp):
            value = self.eval_expr(expr.operand)
            if _is_abstract(value):
                if isinstance(expr.op, ast.Not):
                    return Unknown("bool")
                return value
            try:
                if isinstance(expr.op, ast.USub):
                    return -value
                if isinstance(expr.op, ast.UAdd):
                    return +value
                if isinstance(expr.op, ast.Not):
                    return not value
                if isinstance(expr.op, ast.Invert):
                    return ~value
            except Exception:
                return Unknown()
            return Unknown()
        if isinstance(expr, ast.Compare):
            left = self.eval_expr(expr.left)
            result: Any = True
            for op_node, comparator in zip(expr.ops, expr.comparators):
                right = self.eval_expr(comparator)
                op = _CMPOPS.get(type(op_node))
                if op is None or _is_abstract(left) or _is_abstract(right):
                    result = Unknown("bool")
                    left = right
                    continue
                try:
                    if not isinstance(result, Unknown) and not op(left, right):
                        result = False
                except Exception:
                    result = Unknown("bool")
                left = right
            return result
        if isinstance(expr, ast.BoolOp):
            values = [self.eval_expr(v) for v in expr.values]
            if any(_is_abstract(v) for v in values):
                return Unknown("bool")
            if isinstance(expr.op, ast.And):
                return all(values)
            return any(values)
        if isinstance(expr, ast.IfExp):
            test = self.eval_expr(expr.test)
            if _is_abstract(test):
                if self._has_comm_ops(expr.body) or self._has_comm_ops(expr.orelse):
                    raise CostAmbiguous(
                        "unknown-branch-comm",
                        "unknown conditional expression with comm ops",
                        expr.lineno)
                return Unknown()
            return self.eval_expr(expr.body if test else expr.orelse)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        if isinstance(expr, ast.Attribute):
            base = self.eval_expr(expr.value)
            if isinstance(base, ArrayVal):
                if expr.attr == "nbytes":
                    return base.nbytes
                if expr.attr in ("size", "shape"):
                    return (base.length
                            if expr.attr == "size" else (base.length,))
                return Unknown()
            if _is_abstract(base):
                return Unknown()
            try:
                return getattr(base, expr.attr)
            except Exception:
                return Unknown()
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr)
        if isinstance(expr, ast.Slice):
            return slice(
                None if expr.lower is None else self.eval_expr(expr.lower),
                None if expr.upper is None else self.eval_expr(expr.upper),
                None if expr.step is None else self.eval_expr(expr.step),
            )
        if isinstance(expr, ast.JoinedStr):
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    self.eval_expr(part.value)
            return Unknown("str")
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            if self._has_comm_ops(expr):
                raise CostAmbiguous(
                    "comm-escapes",
                    f"comm ops inside {type(expr).__name__}", expr.lineno)
            native = self._native(expr)
            if native is not _FAIL:
                return native
            return Unknown()
        if isinstance(expr, (ast.Lambda, ast.Dict, ast.Set, ast.Starred)):
            if self._has_comm_ops(expr):
                raise CostAmbiguous(
                    "comm-escapes",
                    f"comm ops inside {type(expr).__name__}", expr.lineno)
            native = self._native(expr)
            return native if native is not _FAIL else Unknown()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return Unknown()

    def _binop_values(self, op: Callable | None, left: Any, right: Any) -> Any:
        if op is None:
            return Unknown()
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            # elementwise arithmetic preserves the (broadcast) length
            lengths = [v.length for v in (left, right)
                       if isinstance(v, ArrayVal)]
            if any(isinstance(v, CommVal) for v in (left, right)):
                return Unknown()
            return ArrayVal(max(lengths))
        if _is_abstract(left) or _is_abstract(right):
            tags = {getattr(v, "tag", None) for v in (left, right)
                    if isinstance(v, Unknown)}
            others = {type(v) for v in (left, right) if not _is_abstract(v)}
            if op is operator.truediv or float in others or "float" in tags:
                return Unknown("float")
            if others <= {int} and tags <= {"int", None} and tags:
                return Unknown("int")
            return Unknown()
        try:
            return op(left, right)
        except Exception:
            return Unknown()

    def _subscript(self, expr: ast.Subscript) -> Any:
        base = self.eval_expr(expr.value)
        index = self.eval_expr(expr.slice)
        if isinstance(base, ArrayVal):
            if isinstance(index, slice):
                lower = index.start
                upper = index.stop
                step = index.step
                if any(_is_abstract(v) for v in (lower, upper, step)
                       if v is not None):
                    return ArrayVal(base.length)
                return ArrayVal(base.slice_length(lower, upper, step))
            return Unknown("float")
        if _is_abstract(base) or _is_abstract(index):
            return Unknown()
        if isinstance(index, slice):
            for part in (index.start, index.stop, index.step):
                if _is_abstract(part):
                    return Unknown()
        try:
            return base[index]
        except Exception:
            return Unknown()

    # ----------------------------------------------------------- native eval
    def _native(self, expr: ast.expr) -> Any:
        """Natively evaluate an expression subtree, or ``_FAIL``.

        Trusted mode only.  All free names must resolve to concrete
        values (env or module namespace); any abstract value or comm
        reference in the subtree disqualifies it.  Work is charged for
        ``range(...)`` extents appearing in the subtree so natively
        collapsed loops (``sum(... for i in range(lo, hi))``) still
        count toward the per-rank work profile.
        """
        if not self.trusted:
            return _FAIL
        local: dict[str, Any] = {}
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                name = sub.id
                if name in local:
                    continue
                if name in self.env:
                    value = self.env[name]
                    if _is_abstract(value):
                        return _FAIL
                    local[name] = value
                elif name in self.namespace or name in _SAFE_BUILTINS:  # type: ignore[operator]
                    continue  # resolved via globals at eval time
                # names bound inside the expression (comprehension targets,
                # lambda params) resolve during evaluation
        try:
            code = compile(ast.Expression(body=_strip(expr)), "<cost>", "eval")
            glb = dict(self.namespace)  # type: ignore[arg-type]
            glb.setdefault("__builtins__", _SAFE_BUILTINS)
            # Fold locals into globals: nested scopes (genexps, lambdas)
            # cannot see eval()'s locals mapping, only its globals.
            glb.update(local)
            value = eval(code, glb)  # noqa: S307 - trusted module only
        except Exception:
            return _FAIL
        self._charge(self._range_work(expr, local))
        return value

    def _range_work(self, expr: ast.expr, local: dict[str, Any]) -> int:
        """Work ticks for ranges a native evaluation collapsed."""
        total = 0
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id == "range"):
                args = []
                for arg in sub.args:
                    if isinstance(arg, ast.Constant):
                        args.append(arg.value)
                    elif isinstance(arg, ast.Name) and arg.id in local:
                        args.append(local[arg.id])
                    else:
                        args = []
                        break
                if args and all(isinstance(a, int) for a in args):
                    try:
                        total += len(range(*args))
                    except Exception:
                        pass
        return total

    # ------------------------------------------------------------------ calls
    def _arg(self, call: ast.Call, position: int, keyword: str,
             default: Any = None) -> Any:
        for kw in call.keywords:
            if kw.arg == keyword:
                return self.eval_expr(kw.value)
        if len(call.args) > position:
            return self.eval_expr(call.args[position])
        return default

    def eval_call(self, call: ast.Call) -> Any:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = self.eval_expr(func.value)
            if isinstance(base, CommVal):
                return self._comm_call(call, func.attr, base)
            if self._call_mentions_comm(call):
                raise CostAmbiguous(
                    "comm-escapes",
                    f"communicator passed to '{func.attr}'", call.lineno)
            if isinstance(base, ArrayVal):
                return self._arrayval_method(call, func.attr, base)
            # numpy-module helpers that matter for length tracking
            if (func.attr in ("concatenate", "hstack")
                    and self._looks_like_numpy(func.value)):
                return self._concatenate(call)
            if func.attr in _ALLOC_CALLS and self.loop_depth > 0:
                self.recorder.alloc(call.lineno, func.attr, self.rank)
            native = self._native(call)
            if native is not _FAIL:
                return native
            for arg in call.args:
                self.eval_expr(arg)
            for kw in call.keywords:
                self.eval_expr(kw.value)
            return Unknown()
        if isinstance(func, ast.Name):
            return self._name_call(call, func.id)
        self.eval_expr(func)
        for arg in call.args:
            self.eval_expr(arg)
        return Unknown()

    def _call_mentions_comm(self, call: ast.Call) -> bool:
        comm_names = {n for n, v in self.env.items() if isinstance(v, CommVal)}
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name) and sub.id in comm_names:
                    return True
        return False

    def _looks_like_numpy(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in ("np", "numpy")

    def _concatenate(self, call: ast.Call) -> Any:
        native = self._native(call)
        if native is not _FAIL:
            return native
        if not call.args:
            return Unknown()
        parts = self.eval_expr(call.args[0])
        if not isinstance(parts, (list, tuple)):
            return Unknown()
        total = 0
        for part in parts:
            if isinstance(part, ArrayVal):
                total += part.length
            elif isinstance(part, (list, tuple)):
                total += len(part)
            elif hasattr(part, "__len__") and not isinstance(part, Unknown):
                total += len(part)
            else:
                return Unknown()
        return ArrayVal(total)

    def _arrayval_method(self, call: ast.Call, method: str,
                         base: ArrayVal) -> Any:
        for arg in call.args:
            self.eval_expr(arg)
        if method in ("copy", "astype", "ravel", "flatten"):
            return base
        if method in ("sum", "mean", "min", "max", "std", "var", "item"):
            return Unknown("float")
        if method == "tolist":
            return Unknown()
        return Unknown()

    def _name_call(self, call: ast.Call, name: str) -> Any:
        if self._call_mentions_comm(call):
            raise CostAmbiguous("comm-escapes",
                                f"communicator passed to '{name}'",
                                call.lineno)
        arg_values = [self.eval_expr(a) for a in call.args]
        kw_values = {kw.arg: self.eval_expr(kw.value)
                     for kw in call.keywords if kw.arg}
        if name in _ALLOC_CALLS and self.loop_depth > 0:
            self.recorder.alloc(call.lineno, name, self.rank)
        concrete = (not kw_values
                    and all(not _is_abstract(v) for v in arg_values))
        if name in ("float", "int") and len(arg_values) == 1:
            value = arg_values[0]
            if _is_abstract(value):
                return Unknown("float" if name == "float" else "int")
            try:
                return (float if name == "float" else int)(value)
            except Exception:
                return Unknown(name)
        if name == "len" and len(arg_values) == 1:
            value = arg_values[0]
            if isinstance(value, ArrayVal):
                return value.length
            if _is_abstract(value):
                return Unknown("int")
            try:
                return len(value)
            except Exception:
                return Unknown("int")
        if name in _SAFE_BUILTINS and concrete:
            try:
                return _SAFE_BUILTINS[name](*arg_values)
            except Exception:
                return Unknown()
        native = self._native(call)
        if native is not _FAIL:
            return native
        return Unknown()

    # ------------------------------------------------------------- comm calls
    def _comm_call(self, call: ast.Call, method: str, comm: CommVal) -> Any:
        line = call.lineno
        if method == "Get_rank":
            return self.rank
        if method == "Get_size":
            return self.size
        if method == "Create_cart":
            dims = self.eval_expr(call.args[0]) if call.args else (self.size,)
            if _is_abstract(dims) or not isinstance(dims, (tuple, list)):
                dims = (self.size,)
            periods_val = self._arg(call, 1, "periods", None)
            if isinstance(periods_val, (tuple, list)):
                periods = tuple(bool(p) for p in periods_val
                                if not _is_abstract(p))
                if len(periods) != len(dims):
                    periods = (False,) * len(dims)
            else:
                periods = (False,) * len(dims)
            # Create_cart internally allgathers a 3-int membership triple.
            self.recorder.collective(line, "cart_setup", self.rank,
                                     len(pickle.dumps((0, self.rank,
                                                       self.rank))),
                                     None, False)
            return CommVal("cart", tuple(int(d) for d in dims), periods)
        if method == "Shift":
            direction = self._arg(call, 0, "direction", 0)
            disp = self._arg(call, 1, "disp", 1)
            if comm.dims is None or _is_abstract(direction) or _is_abstract(disp):
                return (Unknown("int"), Unknown("int"))
            return comm.shift(self.rank, int(direction), int(disp))
        if method in ("Split", "Dup", "Clone"):
            for arg in call.args:
                self.eval_expr(arg)
            return Unknown()
        if method in _SEND_METHODS or method in _BUF_SEND_METHODS:
            payload = self.eval_expr(call.args[0]) if call.args else None
            dest = self._arg(call, 1, "dest")
            if _is_abstract(dest) or not isinstance(dest, int):
                raise CostAmbiguous("unresolved-endpoint",
                                    f"unresolvable send dest at line {line}",
                                    line)
            if dest == PROC_NULL:
                return Unknown()
            raw = method in _BUF_SEND_METHODS
            nbytes = (_payload_raw_bytes(payload) if raw
                      else _payload_pickle_bytes(payload))
            self.recorder.p2p_send(line, "send", self.rank, nbytes)
            return Unknown()
        if method in _RECV_METHODS:
            for arg in call.args:
                self.eval_expr(arg)
            for kw in call.keywords:
                self.eval_expr(kw.value)
            return Unknown()
        if method in ("sendrecv", "Sendrecv"):
            payload = self.eval_expr(call.args[0]) if call.args else None
            dest = self._arg(call, 1, "dest")
            if _is_abstract(dest) or not isinstance(dest, int):
                raise CostAmbiguous("unresolved-endpoint",
                                    f"unresolvable sendrecv dest at line {line}",
                                    line)
            if dest != PROC_NULL:
                raw = method == "Sendrecv"
                nbytes = (_payload_raw_bytes(payload) if raw
                          else _payload_pickle_bytes(payload))
                self.recorder.p2p_send(line, "send", self.rank, nbytes)
            source = self._arg(call, 4, "source", None)
            if isinstance(source, int) and source == PROC_NULL:
                return None  # PROC_NULL receives complete with None
            return Unknown()
        lower = method.lower()
        if lower in _OBJ_COLLECTIVES:
            raw = method in _BUF_COLLECTIVES
            payload = self.eval_expr(call.args[0]) if call.args else None
            root: int | None = None
            if method in _ROOTED:
                root_val = self._arg(call, 1, "root", 0)
                if _is_abstract(root_val) or not isinstance(root_val, int):
                    raise CostAmbiguous(
                        "unresolved-endpoint",
                        f"unresolvable collective root at line {line}", line)
                root = root_val % self.size
            nbytes = (_payload_raw_bytes(payload) if raw
                      else _payload_pickle_bytes(payload))
            if lower == "barrier":
                nbytes = 0
            self.recorder.collective(line, lower, self.rank, nbytes, root, raw)
            return Unknown()
        for arg in call.args:
            self.eval_expr(arg)
        for kw in call.keywords:
            self.eval_expr(kw.value)
        return Unknown()


class _Fail:
    _instance: "_Fail | None" = None

    def __new__(cls) -> "_Fail":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


_FAIL = _Fail()


def _strip(expr: ast.expr) -> ast.expr:
    """Re-locate an expression so ``compile`` accepts it standalone.

    Nodes lifted out of a module tree keep their original (possibly
    large) line numbers; compiling them in a fresh ``ast.Expression``
    needs a consistent location range, so reset every node to 1:0.
    """
    import copy

    clone = copy.deepcopy(expr)
    for node in ast.walk(clone):
        if "lineno" in node._attributes:
            node.lineno = 1
            node.col_offset = 0
            node.end_lineno = 1
            node.end_col_offset = 0
    return clone


# ---------------------------------------------------------------------------
# Samples, models, reports
# ---------------------------------------------------------------------------

@dataclass
class CostSample:
    """Totals from one per-rank evaluation at concrete ``(N, P)``."""

    p: int
    n: int | None = None
    sites: list[CostSite] = field(default_factory=list)
    msgs: int = 0
    bytes: int | None = 0
    work: list[int] = field(default_factory=list)
    abstained: str | None = None
    abstain_line: int | None = None

    @property
    def max_work(self) -> int:
        return max(self.work, default=0)

    @property
    def imbalance(self) -> float:
        if not self.work or sum(self.work) == 0:
            return 0.0
        mean = sum(self.work) / len(self.work)
        return max(self.work) / mean - 1.0 if mean else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "p": self.p, "n": self.n, "msgs": self.msgs, "bytes": self.bytes,
            "work": self.work, "imbalance": round(self.imbalance, 4),
            "sites": [s.to_dict() for s in self.sites],
            **({"abstained": self.abstained} if self.abstained else {}),
        }


def _finish_sample(sample: CostSample, recorder: _SiteRecorder,
                   size: int) -> None:
    total_msgs = 0
    total_bytes: int | None = 0

    def add_bytes(amount: int | None) -> None:
        nonlocal total_bytes
        if amount is None:
            total_bytes = None
        elif total_bytes is not None:
            total_bytes += amount

    for (line, name), entry in sorted(recorder.entries.items()):
        if entry["kind"] == "p2p":
            msgs = sum(entry["sends"])
            nbytes = (sum(entry["send_bytes"])
                      if entry["bytes_known"] else None)
            site = CostSite(line=line, kind="p2p", name=name, msgs=msgs,
                            bytes=nbytes, per_rank_msgs=list(entry["sends"]),
                            calls_per_rank=max(entry["sends"], default=0))
            total_msgs += msgs
            add_bytes(nbytes)
        elif entry["kind"] == "alloc":
            site = CostSite(line=line, kind="alloc", name=name,
                            msgs=0, bytes=0,
                            per_rank_msgs=list(entry["sends"]),
                            calls_per_rank=max(entry["sends"], default=0))
        else:
            payloads = entry["payloads"]
            ncalls = max((len(p) for p in payloads), default=0)
            msgs = 0
            nbytes: int | None = 0
            for i in range(ncalls):
                per_rank: list[int | None] = []
                root = 0
                raw = False
                for r in range(size):
                    if i < len(payloads[r]):
                        b, rt, raw_r = payloads[r][i]
                        per_rank.append(b)
                        raw = raw or raw_r
                        if rt is not None:
                            root = rt
                    else:
                        per_rank.append(None)
                if name == "cart_setup":
                    msgs += size * (size - 1)
                    call_bytes: int | None = _cart_setup_bytes(size)
                else:
                    msgs += _coll_msg_count(name, size)
                    call_bytes = _coll_bytes(name, size, per_rank, root, raw)
                if call_bytes is None:
                    nbytes = None
                elif nbytes is not None:
                    nbytes += call_bytes
            site = CostSite(line=line, kind="coll", name=name, msgs=msgs,
                            bytes=nbytes,
                            per_rank_msgs=[len(p) for p in payloads],
                            calls_per_rank=ncalls)
            total_msgs += msgs
            add_bytes(nbytes)
        sample.sites.append(site)
    sample.msgs = total_msgs
    sample.bytes = total_bytes


def analyze_cost(
    func: ast.AST,
    tree: ast.AST,
    *,
    size: int,
    n: int | None = None,
    bindings: dict[str, Any] | None = None,
    namespace: dict[str, Any] | None = None,
) -> CostSample:
    """Evaluate one SPMD root at concrete ``(n, size)``; never raises.

    ``bindings`` seeds the environment (enclosing-function parameters);
    ``namespace`` enables trusted native evaluation against the given
    module globals.  An evaluator abstention is recorded on the sample
    (with the partial accounting up to that point) rather than raised.
    """
    recorder = _SiteRecorder(size)
    sample = CostSample(p=size, n=n)
    base_env = dict(_enclosing_env(tree, func))
    if bindings:
        base_env.update(bindings)
    comm_name = "comm"
    args = getattr(func, "args", None)
    if args is not None and args.args:
        params = [a.arg for a in args.args]
        comm_name = "comm" if "comm" in params else params[0]
    steps = [0]
    for rank in range(size):
        ev = _CostEval(rank, size, recorder, namespace, base_env, steps)
        try:
            ev.run(func, {comm_name: CommVal()})
        except CostAmbiguous as exc:
            sample.abstained = exc.code
            sample.abstain_line = exc.line
        except RecursionError:
            sample.abstained = "recursion"
        sample.work.append(ev.work)
    _finish_sample(sample, recorder, size)
    return sample


# ---------------------------------------------------------------------------
# Polynomial identification
# ---------------------------------------------------------------------------

#: the cost-expression grammar: linear combinations of these monomials
POLY_BASIS: tuple[str, ...] = ("1", "N", "P", "N*P", "P^2", "N/P")


def _basis_row(n: float, p: float) -> list[float]:
    return [1.0, n, p, n * p, p * p, n / p]


@dataclass
class Poly:
    """A fitted cost polynomial over :data:`POLY_BASIS`."""

    coeffs: dict[str, float]
    max_rel_err: float = 0.0

    def __call__(self, n: float, p: float) -> float:
        row = _basis_row(n, p)
        return sum(self.coeffs.get(term, 0.0) * val
                   for term, val in zip(POLY_BASIS, row))

    def describe(self) -> str:
        parts = []
        for term, coeff in self.coeffs.items():
            if abs(coeff) < 1e-9:
                continue
            if term == "1":
                parts.append(f"{coeff:.4g}")
            else:
                parts.append(f"{coeff:.4g}·{term}")
        return " + ".join(parts).replace("+ -", "- ") or "0"

    def to_dict(self) -> dict[str, Any]:
        return {"terms": {t: round(c, 6) for t, c in self.coeffs.items()
                          if abs(c) > 1e-9},
                "max_rel_err": round(self.max_rel_err, 6),
                "formula": self.describe()}


def fit_poly(points: list[tuple[float, float, float]],
             tol: float = 0.05) -> Poly | None:
    """Least-squares fit ``value ~ poly(N, P)`` with held-out verification.

    ``points`` are ``(n, p, value)`` samples.  The last sample is held
    out of the fit and used (together with the fitted residuals) to
    verify the identification; a relative error above ``tol`` abstains
    (returns ``None``) — a wrong formula is worse than no formula.
    """
    if len(points) < len(POLY_BASIS) + 1:
        fit_points = points
        holdout: list[tuple[float, float, float]] = []
    else:
        fit_points = points[:-1]
        holdout = points[-1:]
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy is a repo dependency
        return None
    if not fit_points:
        return None
    a = np.array([_basis_row(n, p) for n, p, _ in fit_points])
    b = np.array([v for _, _, v in fit_points])
    coeffs, *_ = np.linalg.lstsq(a, b, rcond=None)
    poly = Poly(coeffs=dict(zip(POLY_BASIS, (float(c) for c in coeffs))))
    max_err = 0.0
    for n, p, value in points:
        predicted = poly(n, p)
        scale = max(abs(value), 1.0)
        max_err = max(max_err, abs(predicted - value) / scale)
    poly.max_rel_err = max_err
    if holdout and max_err > tol:
        return None
    return poly


# ---------------------------------------------------------------------------
# Whole-function model
# ---------------------------------------------------------------------------

@dataclass
class CostModel:
    """Fitted cost/scalability model for one SPMD function."""

    name: str
    samples: list[CostSample] = field(default_factory=list)
    msgs_poly: Poly | None = None
    bytes_poly: Poly | None = None
    work_poly: Poly | None = None
    speedup_bound: list[tuple[int, float]] = field(default_factory=list)
    serial_fraction: float | None = None
    abstained: str | None = None

    def sample_at(self, *, p: int, n: int | None = None) -> CostSample | None:
        for sample in self.samples:
            if sample.p == p and (n is None or sample.n == n):
                return sample
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "samples": [s.to_dict() for s in self.samples],
            "message_poly": self.msgs_poly.to_dict() if self.msgs_poly else None,
            "bytes_poly": self.bytes_poly.to_dict() if self.bytes_poly else None,
            "work_poly": self.work_poly.to_dict() if self.work_poly else None,
            "speedup_bound": [[p, round(s, 3)] for p, s in self.speedup_bound],
            "serial_fraction": (round(self.serial_fraction, 6)
                                if self.serial_fraction is not None else None),
            **({"abstained": self.abstained} if self.abstained else {}),
        }


def _fit_model(model: CostModel, n_for_speedup: int | None) -> None:
    clean = [s for s in model.samples if s.abstained is None]
    if not clean:
        model.abstained = model.samples[0].abstained if model.samples else None
        return
    msg_pts = [(float(s.n or 0), float(s.p), float(s.msgs)) for s in clean]
    model.msgs_poly = fit_poly(msg_pts)
    byte_pts = [(float(s.n or 0), float(s.p), float(s.bytes))
                for s in clean if s.bytes is not None]
    if len(byte_pts) == len(msg_pts):
        model.bytes_poly = fit_poly(byte_pts)
    work_pts = [(float(s.n or 0), float(s.p), float(s.max_work))
                for s in clean]
    model.work_poly = fit_poly(work_pts)

    # Amdahl-style bound: S(P) <= W(1) / max_r w_r(P), at one problem size.
    base = [s for s in clean if s.p == 1 and (n_for_speedup is None
                                              or s.n == n_for_speedup)]
    if base:
        w1 = base[0].max_work
        bounds: list[tuple[int, float]] = []
        for s in sorted(clean, key=lambda s: s.p):
            if s.p == 1 or (n_for_speedup is not None
                            and s.n != n_for_speedup):
                continue
            if s.max_work > 0:
                bounds.append((s.p, w1 / s.max_work))
        model.speedup_bound = bounds
        # Fit 1/S = s + (1-s)/P  =>  s = (P/S - 1) / (P - 1)
        estimates = [
            (p / bound - 1.0) / (p - 1.0)
            for p, bound in bounds if p > 1 and bound > 0
        ]
        if estimates:
            model.serial_fraction = max(
                0.0, min(1.0, sum(estimates) / len(estimates)))
    abst = next((s.abstained for s in model.samples if s.abstained), None)
    model.abstained = abst


def _param_defaults(func: ast.AST, namespace: dict[str, Any]) -> dict[str, Any]:
    """Concrete default values of a function's parameters.

    Constant defaults evaluate directly; bare-name defaults (e.g. a
    module-level callable) resolve through ``namespace``.  Anything else
    is left unbound so the evaluator treats it as unknown.
    """
    out: dict[str, Any] = {}
    args = getattr(func, "args", None)
    if args is None:
        return out
    params = [a.arg for a in args.args]
    defaults = list(args.defaults)
    for param, default in zip(params[len(params) - len(defaults):], defaults):
        if isinstance(default, ast.Constant):
            out[param] = default.value
        elif isinstance(default, ast.Name) and default.id in namespace:
            out[param] = namespace[default.id]
        elif isinstance(default, (ast.Tuple, ast.List)):
            try:
                out[param] = ast.literal_eval(default)
            except ValueError:
                pass
    for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None and isinstance(default, ast.Constant):
            out[kwarg.arg] = default.value
    return out


def analyze_module_cost(
    module_name: str,
    func_name: str,
    *,
    bindings: dict[str, Any] | None = None,
    n_param: str | None = None,
    n_values: tuple[int, ...] = (),
    p_values: tuple[int, ...] = (1, 2, 3, 4, 5),
    trusted: bool = True,
) -> CostModel:
    """Trusted cost model for one exemplar's SPMD body.

    Imports ``module_name``, locates the SPMD root nested inside
    ``func_name`` (the ``body(comm)`` closure passed to ``mpirun``), and
    evaluates it over the ``(n, p)`` sample grid.  ``bindings`` supplies
    the enclosing function's parameters; when ``n_param`` is given it is
    overridden by each value of ``n_values`` in turn.
    """
    import importlib
    import inspect

    module = importlib.import_module(module_name)
    source = inspect.getsource(module)
    tree = ast.parse(source)

    enclosing: ast.AST | None = None
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == func_name):
            enclosing = node
            break
    if enclosing is None:
        raise ValueError(f"{module_name} has no function {func_name!r}")
    roots = [r for r in spmd_roots(tree)
             if any(r is sub for sub in ast.walk(enclosing))]
    if not roots:
        raise ValueError(f"{func_name} contains no SPMD root")
    func = roots[0]

    namespace = dict(vars(module)) if trusted else None
    defaults = _param_defaults(enclosing, namespace or {})
    model = CostModel(name=f"{module_name}:{func_name}")
    ns = list(n_values) if n_values else [None]
    for n in ns:
        local_bindings = dict(defaults)
        local_bindings.update(bindings or {})
        if n is not None and n_param:
            local_bindings[n_param] = n
        for p in p_values:
            sample = analyze_cost(
                func, tree, size=p,
                n=n if n is not None else local_bindings.get(n_param or "", None),
                bindings=local_bindings, namespace=namespace)
            model.samples.append(sample)
    _fit_model(model, ns[-1] if ns[-1] is not None else None)
    return model


# ---------------------------------------------------------------------------
# Per-file report (untrusted; feeds ``repro lint --cost``)
# ---------------------------------------------------------------------------

@dataclass
class CostReport:
    """Untrusted cost scan of one source file's SPMD roots."""

    path: str
    models: list[CostModel] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "models": [m.to_dict() for m in self.models],
            "notes": self.notes,
        }


def cost_report(
    source: str,
    path: str = "<src>",
    *,
    p_values: tuple[int, ...] = (1, 2, 4, 8),
) -> CostReport:
    """Scan one source text (learner code: nothing is executed)."""
    report = CostReport(path=path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.notes.append(f"syntax error: {exc}")
        return report
    for index, root in enumerate(spmd_roots(tree)):
        name = getattr(root, "name", None) or f"<spmd:{index}>"
        line = getattr(root, "lineno", 0)
        model = CostModel(name=f"{name}:{line}")
        for p in p_values:
            model.samples.append(
                analyze_cost(root, tree, size=p, namespace=None))
        _fit_model(model, None)
        report.models.append(model)
    return report
