"""Parallel, incremental lint driver: ``repro lint --jobs N --cache``.

The driver eats its own dog food — linting a course corpus is itself an
embarrassingly parallel job with a cache-friendly structure:

* **content-hash cache** — each file's result is keyed by the SHA-256 of
  its bytes plus the rule configuration (selected/ignored/enabled ids
  and a cache-format version).  A warm cache turns a re-lint of an
  unchanged corpus into pure JSON reads.
* **process-pool fan-out** — cache misses are linted by a
  ``ProcessPoolExecutor``; each worker lints whole files, so no shared
  state and no ordering hazards.
* **deterministic merge** — results are reassembled in the input file
  order regardless of which worker (or the cache) produced them, so the
  rendered report is byte-identical to a serial run.  Tests assert
  this, and the ``lint_corpus_parallel`` bench keeps it fast.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from ...analysis.diagnostics import AnalysisReport, Diagnostic
from ..lint.engine import ENGINE, _collect_files, _label, lint_source

__all__ = ["CorpusResult", "lint_corpus", "CACHE_VERSION"]

#: bump when the serialized per-file payload or any rule semantics change
CACHE_VERSION = 1


@dataclass
class CorpusResult:
    """Outcome of one corpus lint: the merged report plus cache stats."""

    report: AnalysisReport
    files: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    @property
    def stats(self) -> dict[str, Any]:
        return {
            "files": len(self.files),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
        }


def _config_fingerprint(select: Any, ignore: Any, enable: Any) -> str:
    from ..lint.engine import rule_ids

    blob = json.dumps({
        "version": CACHE_VERSION,
        "rules": rule_ids(),
        "select": _id_list(select),
        "ignore": _id_list(ignore),
        "enable": _id_list(enable),
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _id_list(ids: Any) -> list[str] | None:
    if ids is None:
        return None
    if isinstance(ids, str):
        ids = ids.replace(",", " ").split()
    return sorted(str(i).upper() for i in ids)


def _file_key(data: bytes, label: str, config: str) -> str:
    digest = hashlib.sha256()
    digest.update(config.encode())
    digest.update(b"\0")
    digest.update(label.encode())
    digest.update(b"\0")
    digest.update(data)
    return digest.hexdigest()


def _payload_from_report(report: AnalysisReport) -> dict[str, Any]:
    return {
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "suppressed": [d.to_dict() for d in report.suppressed],
        "notes": list(report.notes),
    }


def _diag_from_dict(data: dict[str, Any]) -> Diagnostic:
    return Diagnostic(
        kind=data.get("kind", ""),
        severity=data.get("severity", "error"),
        message=data.get("message", ""),
        location=data.get("location"),
        details=data.get("details", {}),
    )


def _merge_payload(report: AnalysisReport, payload: dict[str, Any]) -> None:
    for item in payload.get("diagnostics", []):
        report.add(_diag_from_dict(item))
    for item in payload.get("suppressed", []):
        report.add_suppressed(_diag_from_dict(item))
    report.notes.extend(payload.get("notes", []))


def _lint_one(job: tuple[str, str, str, Any, Any, Any]) -> dict[str, Any]:
    """Worker: lint one file and return the serializable payload.

    Runs in a subprocess — takes only picklable primitives, returns only
    JSON-shaped data.  Decode errors and empty files are reported as
    notes, mirroring :func:`repro.analysis.lint.engine.lint_path`.
    """
    path_str, label, language, select, ignore, enable = job
    path = Path(path_str)
    try:
        text = path.read_bytes().decode("utf-8")
    except UnicodeDecodeError:
        return {"diagnostics": [], "suppressed": [],
                "notes": [f"skipped {label}: not UTF-8 text"]}
    except OSError as exc:
        return {"diagnostics": [], "suppressed": [],
                "notes": [f"skipped {label}: {exc.strerror or exc}"]}
    if not text.strip():
        return {"diagnostics": [], "suppressed": [],
                "notes": [f"skipped {label}: empty file"]}
    report = lint_source(text, label, language, select=select,
                         ignore=ignore, enable=enable)
    return _payload_from_report(report)


def lint_corpus(
    paths: Sequence[str | Path],
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    select: Iterable[str] | str | None = None,
    ignore: Iterable[str] | str | None = None,
    enable: Iterable[str] | str | None = None,
    target: str | None = None,
) -> CorpusResult:
    """Lint files/directories with optional parallel fan-out and caching.

    The merged report is deterministic: identical to linting the same
    file list serially with :func:`lint_source`, whatever ``jobs`` is
    and whether results came from workers or the cache.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(_collect_files(path))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")

    config = _config_fingerprint(select, ignore, enable)
    cache_root = Path(cache_dir) if cache_dir is not None else None
    if cache_root is not None:
        cache_root.mkdir(parents=True, exist_ok=True)

    report = AnalysisReport(
        target=target or " ".join(str(p) for p in paths), engine=ENGINE)
    result = CorpusResult(report=report, jobs=max(1, jobs))

    payloads: list[dict[str, Any] | None] = [None] * len(files)
    pending: list[tuple[int, tuple[str, str, str, Any, Any, Any], str | None]] = []

    for index, file in enumerate(files):
        label = _label(file)
        result.files.append(label)
        language = "python" if file.suffix == ".py" else "c"
        key: str | None = None
        if cache_root is not None:
            try:
                data = file.read_bytes()
            except OSError as exc:
                payloads[index] = {
                    "diagnostics": [], "suppressed": [],
                    "notes": [f"skipped {label}: {exc.strerror or exc}"]}
                continue
            key = _file_key(data, label, config)
            entry = cache_root / f"{key}.json"
            if entry.is_file():
                try:
                    payloads[index] = json.loads(entry.read_text())
                    result.cache_hits += 1
                    continue
                except (OSError, ValueError):
                    pass  # corrupt entry: fall through and re-lint
        job = (str(file), label, language, select, ignore, enable)
        pending.append((index, job, key))

    result.cache_misses = len(pending)
    if pending:
        if result.jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=result.jobs) as pool:
                fresh = list(pool.map(_lint_one, [j for _, j, _ in pending]))
        else:
            fresh = [_lint_one(job) for _, job, _ in pending]
        for (index, _job, key), payload in zip(pending, fresh):
            payloads[index] = payload
            if cache_root is not None and key is not None:
                entry = cache_root / f"{key}.json"
                try:
                    tmp = entry.with_suffix(".tmp")
                    # NB: no sort_keys — details dicts must round-trip in
                    # insertion order so cached renders stay byte-identical
                    tmp.write_text(json.dumps(payload))
                    tmp.replace(entry)
                except OSError:
                    pass  # cache writes are best-effort

    for payload in payloads:
        if payload is not None:
            _merge_payload(report, payload)
    return result
