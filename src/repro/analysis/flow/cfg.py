"""Per-function control-flow graphs over the Python AST.

pdclint's flow-sensitive rules need to know *which statements can follow
which* — not just what the source looks like.  :func:`build_cfg` turns one
function (or a whole module) into basic blocks connected by control-flow
edges, handling branches, loops, ``try``/``with``, ``break``/``continue``
and early returns, and :meth:`CFG.dominators` computes the classic
iterative dominator sets on top.

Design notes, sized for learner programs:

* Statements live in :attr:`BasicBlock.stmts` in execution order; a
  block's branch condition (if any) is kept separately in
  :attr:`BasicBlock.test` so dataflow transfer functions can account for
  its variable uses without a synthetic statement.
* ``return``/``raise`` edges route through the innermost enclosing
  ``finally`` suite and then to the exit block, so "every path releases
  the lock" questions see cleanup code.  The ``finally`` subgraph is
  shared by all of its entries (normal completion, handlers, early
  returns), which over-approximates paths — safe for the may/must
  analyses built on top.
* Exception edges are conservative: each handler is reachable from the
  ``try`` entry.  That is all the precision the PDC rules need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["BasicBlock", "CFG", "build_cfg"]

#: Function-like AST nodes a CFG can be built for (``ast.Module`` also
#: works: its body is treated as the function body).
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    id: int
    label: str = ""
    stmts: list[ast.stmt] = field(default_factory=list)
    test: ast.expr | None = None  # branch condition evaluated at block end
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(s, "lineno", "?") for s in self.stmts]
        return f"<block {self.id} {self.label or ''} lines={lines} -> {self.succs}>"


class CFG:
    """Control-flow graph of one function: blocks, edges, dominators."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.blocks: dict[int, BasicBlock] = {}
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id
        self._doms: dict[int, frozenset[int]] | None = None

    # -------------------------------------------------------------- building
    def _new(self, label: str = "") -> BasicBlock:
        block = BasicBlock(id=len(self.blocks), label=label)
        self.blocks[block.id] = block
        return block

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # -------------------------------------------------------------- queries
    def statements(self) -> Iterator[tuple[BasicBlock, ast.stmt]]:
        """Every (block, statement) pair in block order."""
        for bid in sorted(self.blocks):
            for stmt in self.blocks[bid].stmts:
                yield self.blocks[bid], stmt

    def block_of(self, stmt: ast.stmt) -> BasicBlock | None:
        for block, s in self.statements():
            if s is stmt:
                return block
        return None

    def reachable_forward(self, start: int) -> set[int]:
        """Block ids reachable from ``start`` (excluding ``start`` itself
        unless it sits on a cycle)."""
        seen: set[int] = set()
        stack = list(self.blocks[start].succs)
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return seen

    def dominators(self) -> dict[int, frozenset[int]]:
        """``dom[b]`` = blocks that appear on *every* entry->b path."""
        if self._doms is not None:
            return self._doms
        all_ids = frozenset(self.blocks)
        dom: dict[int, frozenset[int]] = {
            bid: (frozenset({bid}) if bid == self.entry else all_ids)
            for bid in self.blocks
        }
        changed = True
        while changed:
            changed = False
            for bid in sorted(self.blocks):
                if bid == self.entry:
                    continue
                preds = self.blocks[bid].preds
                if preds:
                    incoming = frozenset.intersection(*(dom[p] for p in preds))
                else:  # unreachable block: dominated only by itself
                    incoming = frozenset()
                updated = incoming | {bid}
                if updated != dom[bid]:
                    dom[bid] = updated
                    changed = True
        self._doms = dom
        return dom

    def dominates(self, a: int, b: int) -> bool:
        return a in self.dominators()[b]


@dataclass
class _Ctx:
    """Jump targets active while building a statement list."""

    break_to: int | None = None
    continue_to: int | None = None
    finally_entry: int | None = None  # innermost finally suite, if any


def _protected_jumps(stmt: ast.Try) -> dict[str, bool]:
    """Which jump kinds escape this ``try``'s protected region.

    ``break``/``continue`` stop counting below a nested loop (they bind to
    it, entirely inside the region); ``return`` stops only below a nested
    function.  Drives the finally-exit fan-out in :meth:`_Builder._try`.
    """
    out = {"break": False, "continue": False, "return": False}

    def scan(node: ast.AST, in_loop: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Break):
                out["break"] |= not in_loop
            elif isinstance(child, ast.Continue):
                out["continue"] |= not in_loop
            elif isinstance(child, (ast.Return, ast.Raise)):
                out["return"] = True
            scan(child, in_loop or isinstance(
                child, (ast.While, ast.For, ast.AsyncFor)))

    for part in (*stmt.body, *stmt.orelse, *(h for handler in stmt.handlers
                                             for h in handler.body)):
        scan(part, in_loop=False)
        if isinstance(part, ast.Break):
            out["break"] = True
        elif isinstance(part, ast.Continue):
            out["continue"] = True
        elif isinstance(part, (ast.Return, ast.Raise)):
            out["return"] = True
    return out


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG(func)

    def build(self) -> CFG:
        body = (
            [ast.Expr(value=self.cfg.func.body)]
            if isinstance(self.cfg.func, ast.Lambda)
            else list(self.cfg.func.body)
        )
        first = self.cfg._new("body")
        self.cfg._edge(self.cfg.entry, first.id)
        end = self._stmts(body, first.id, _Ctx())
        if end is not None:
            self.cfg._edge(end, self.cfg.exit)
        return self.cfg

    # The workhorse: thread ``stmts`` through the graph starting in block
    # ``cur``; return the block where control falls out, or None if every
    # path jumped away (return/break/continue/raise).
    def _stmts(self, stmts: list[ast.stmt], cur: int | None, ctx: _Ctx) -> int | None:
        for stmt in stmts:
            if cur is None:  # dead code after a jump: keep it queryable
                cur = self.cfg._new("unreachable").id
            cur = self._stmt(stmt, cur, ctx)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int, ctx: _Ctx) -> int | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.cfg.blocks[cur].stmts.append(stmt)
            return self._stmts(stmt.body, cur, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur, ctx)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.cfg.blocks[cur].stmts.append(stmt)
            target = ctx.finally_entry if ctx.finally_entry is not None else self.cfg.exit
            self.cfg._edge(cur, target)
            return None
        if isinstance(stmt, ast.Break):
            self.cfg.blocks[cur].stmts.append(stmt)
            if ctx.break_to is not None:
                self.cfg._edge(cur, ctx.break_to)
            return None
        if isinstance(stmt, ast.Continue):
            self.cfg.blocks[cur].stmts.append(stmt)
            if ctx.continue_to is not None:
                self.cfg._edge(cur, ctx.continue_to)
            return None
        # Simple statement (incl. nested defs, which just bind a name).
        self.cfg.blocks[cur].stmts.append(stmt)
        return cur

    def _if(self, stmt: ast.If, cur: int, ctx: _Ctx) -> int | None:
        self.cfg.blocks[cur].test = stmt.test
        then = self.cfg._new("then")
        self.cfg._edge(cur, then.id)
        then_end = self._stmts(stmt.body, then.id, ctx)
        after = self.cfg._new("after-if")
        if stmt.orelse:
            orelse = self.cfg._new("else")
            self.cfg._edge(cur, orelse.id)
            else_end = self._stmts(stmt.orelse, orelse.id, ctx)
            if else_end is not None:
                self.cfg._edge(else_end, after.id)
        else:
            self.cfg._edge(cur, after.id)
        if then_end is not None:
            self.cfg._edge(then_end, after.id)
        if not after.preds:
            return None  # both branches jumped away
        return after.id

    def _while(self, stmt: ast.While, cur: int, ctx: _Ctx) -> int | None:
        header = self.cfg._new("while")
        header.test = stmt.test
        self.cfg._edge(cur, header.id)
        after = self.cfg._new("after-while")
        body = self.cfg._new("while-body")
        self.cfg._edge(header.id, body.id)
        inner = _Ctx(break_to=after.id, continue_to=header.id,
                     finally_entry=ctx.finally_entry)
        body_end = self._stmts(stmt.body, body.id, inner)
        if body_end is not None:
            self.cfg._edge(body_end, header.id)
        return self._loop_exit(stmt, header.id, after, ctx)

    def _for(self, stmt: ast.For, cur: int, ctx: _Ctx) -> int | None:
        header = self.cfg._new("for")
        header.stmts.append(stmt)  # the For node defines its loop target
        self.cfg._edge(cur, header.id)
        after = self.cfg._new("after-for")
        body = self.cfg._new("for-body")
        self.cfg._edge(header.id, body.id)
        inner = _Ctx(break_to=after.id, continue_to=header.id,
                     finally_entry=ctx.finally_entry)
        body_end = self._stmts(stmt.body, body.id, inner)
        if body_end is not None:
            self.cfg._edge(body_end, header.id)
        return self._loop_exit(stmt, header.id, after, ctx)

    def _loop_exit(self, stmt: ast.While | ast.For, header: int,
                   after: BasicBlock, ctx: _Ctx) -> int | None:
        """Wire a loop's normal exit: the ``else`` suite runs only when the
        loop condition/iterator is exhausted — ``break`` (which targets
        ``after`` directly) skips it."""
        if stmt.orelse:
            orelse = self.cfg._new("loop-else")
            self.cfg._edge(header, orelse.id)
            else_end = self._stmts(stmt.orelse, orelse.id, ctx)
            if else_end is not None:
                self.cfg._edge(else_end, after.id)
        else:
            self.cfg._edge(header, after.id)
        if not after.preds:
            return None  # the else suite jumped away and nothing breaks here
        return after.id

    def _match(self, stmt: ast.Match, cur: int, ctx: _Ctx) -> int | None:
        """``match`` as a multi-way branch: one arm per case, plus a
        no-case-matched fall-through edge unless a bare wildcard
        (``case _:`` with no guard) makes the dispatch exhaustive."""
        self.cfg.blocks[cur].test = stmt.subject
        after = self.cfg._new("after-match")
        exhaustive = False
        for case in stmt.cases:
            arm = self.cfg._new("case")
            self.cfg._edge(cur, arm.id)
            arm_end = self._stmts(case.body, arm.id, ctx)
            if arm_end is not None:
                self.cfg._edge(arm_end, after.id)
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                exhaustive = True
        if not exhaustive:
            self.cfg._edge(cur, after.id)
        if not after.preds:
            return None  # every arm jumped away and a wildcard always matches
        return after.id

    def _try(self, stmt: ast.Try, cur: int, ctx: _Ctx) -> int | None:
        after = self.cfg._new("after-try")
        if stmt.finalbody:
            fin = self.cfg._new("finally")
            fin_end = self._stmts(stmt.finalbody, fin.id, ctx)
            join: int | None = fin.id
            if fin_end is not None:
                self.cfg._edge(fin_end, after.id)
                # break/continue/return inside the protected region run the
                # finally suite first, then jump; since the finally subgraph
                # is shared by all entries, its exit over-approximates by
                # fanning out to every target the region actually jumps to.
                jumps = _protected_jumps(stmt)
                if jumps["return"]:
                    self.cfg._edge(fin_end, self.cfg.exit)
                if jumps["break"] and ctx.break_to is not None:
                    self.cfg._edge(fin_end, ctx.break_to)
                if jumps["continue"] and ctx.continue_to is not None:
                    self.cfg._edge(fin_end, ctx.continue_to)
            inner = _Ctx(
                break_to=fin.id if ctx.break_to is not None else None,
                continue_to=fin.id if ctx.continue_to is not None else None,
                finally_entry=fin.id)
        else:
            join = after.id
            inner = ctx

        try_entry = self.cfg._new("try")
        self.cfg._edge(cur, try_entry.id)
        body_end = self._stmts(stmt.body, try_entry.id, inner)
        if stmt.orelse and body_end is not None:
            body_end = self._stmts(stmt.orelse, body_end, inner)
        if body_end is not None and join is not None:
            self.cfg._edge(body_end, join)
        for handler in stmt.handlers:
            hblock = self.cfg._new("except")
            # Conservative: the exception may fire anywhere in the body.
            self.cfg._edge(try_entry.id, hblock.id)
            h_end = self._stmts(handler.body, hblock.id, inner)
            if h_end is not None and join is not None:
                self.cfg._edge(h_end, join)
        if not after.preds:
            return None
        return after.id


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one function/lambda/module body."""
    if not isinstance(func, FUNCTION_NODES):
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder(func).build()
