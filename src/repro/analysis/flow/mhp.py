"""May-happen-in-parallel facts for ``repro.openmp`` parallel bodies.

Given one function/lambda that runs as a parallel region body, this
module answers, per statement: *which locks are definitely held here*
(must), *which might be held* (may), and *does only one thread execute
this* (``single``/``master`` guards).  Two statements may race exactly
when both can run on multiple threads and they share no must-held lock.

Guards come from two complementary sources:

* **Lexical** ``with critical():`` / ``with lock:`` scopes — exact,
  because a ``with`` suite's extent is syntactic;
* **Flow-sensitive** ``lock.acquire()`` / ``lock.release()`` pairing —
  a forward must-analysis (intersection meet) over the CFG, so a lock
  released on one path but not another stops being "definitely held" at
  the join.  A parallel may-analysis (union meet) feeds the
  "guarded-on-some-paths-only" rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .cfg import CFG, build_cfg
from .dataflow import Problem, solve

__all__ = ["StmtFacts", "MHPAnalysis", "lock_names", "is_sync_guard",
           "guard_key", "stmt_exec_nodes"]

_LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Semaphore", "BoundedSemaphore", "allocate_lock",
})
_ONE_THREAD_CALLS = frozenset({"single", "master"})
_THREAD_ID_CALLS = frozenset({"get_thread_num", "Get_thread_num"})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def lock_names(tree: ast.AST) -> set[str]:
    """Names bound to lock objects anywhere in ``tree``.

    Recognizes both construction (``mutex = Lock()``) and the naming
    convention (*lock* appearing in the identifier) the curriculum uses.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value = node.value
            if isinstance(value, ast.Call) and _call_name(value) in _LOCK_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        elif isinstance(node, ast.Name) and "lock" in node.id.lower():
            names.add(node.id)
    return names


def guard_key(expr: ast.AST) -> str | None:
    """Canonical name for a ``with`` guard expression, or None."""
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        if name == "critical":
            try:
                return ast.unparse(expr)
            except Exception:  # pragma: no cover - unparse is total on real ASTs
                return "critical(...)"
        if "lock" in name.lower():
            return name
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def is_sync_guard(expr: ast.AST, locks: set[str] | None = None) -> bool:
    """Does this ``with`` item expression guard a critical section?"""
    if isinstance(expr, ast.Call):
        name = _call_name(expr)
        return name == "critical" or "lock" in name.lower()
    if isinstance(expr, ast.Name):
        return "lock" in expr.id.lower() or bool(locks and expr.id in locks)
    if isinstance(expr, ast.Attribute):
        return "lock" in expr.attr.lower()
    return False


def _is_one_thread_test(test: ast.AST) -> bool:
    """``if single():`` / ``if master():`` / ``if get_thread_num() == 0:``."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Call) and _call_name(sub) in _ONE_THREAD_CALLS:
            return True
        if isinstance(sub, ast.Compare):
            sides = [sub.left, *sub.comparators]
            has_tid = any(
                isinstance(s, ast.Call) and _call_name(s) in _THREAD_ID_CALLS
                for s in sides
            )
            has_const = any(isinstance(s, ast.Constant) for s in sides)
            if has_tid and has_const and all(
                isinstance(op, ast.Eq) for op in sub.ops
            ):
                return True
    return False


def stmt_exec_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """AST nodes that execute *at* this CFG statement.

    Compound statements sit in a block alongside their threaded bodies,
    so only their header expressions count here — the body's effects are
    applied when its own statements transfer.
    """
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [n for item in stmt.items for n in ast.walk(item.context_expr)]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return list(ast.walk(stmt.iter))
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    out: list[ast.AST] = [stmt]
    stack = list(ast.iter_child_nodes(stmt))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
    return out


@dataclass(frozen=True)
class StmtFacts:
    """Per-statement synchronization facts inside one parallel body."""

    must_locks: frozenset[str]
    may_locks: frozenset[str]
    one_thread: bool

    @property
    def guarded(self) -> bool:
        return bool(self.must_locks) or self.one_thread

    @property
    def partially_guarded(self) -> bool:
        """Held on some path but not every path — worse than no guard at
        all, because tests that happen to take the guarded path pass."""
        return bool(self.may_locks - self.must_locks) and not self.guarded


class _HeldLocks(Problem):
    """Forward lock-held analysis; ``meet`` picks must vs may."""

    direction = "forward"

    def __init__(self, locks: frozenset[str], meet: str) -> None:
        self.locks = locks
        self.meet = meet

    def boundary(self, cfg: CFG) -> frozenset:
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset:
        # Must-analysis starts optimistic (top = every lock held) so the
        # loop back-edge meet does not prematurely drop facts.
        return self.locks if self.meet == "intersection" else frozenset()

    def transfer_stmt(self, stmt: ast.stmt, value: frozenset) -> frozenset:
        for node in stmt_exec_nodes(stmt):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)):
                continue
            receiver = node.func.value.id
            if receiver not in self.locks:
                continue
            if node.func.attr == "acquire":
                value = value | {receiver}
            elif node.func.attr == "release":
                value = value - {receiver}
        return value


class MHPAnalysis:
    """Guard facts for every statement of one parallel body."""

    def __init__(self, body: ast.AST, *, module: ast.AST | None = None) -> None:
        self.body = body
        self.cfg = build_cfg(body)
        self.locks = frozenset(lock_names(module if module is not None else body))
        self._facts: dict[int, StmtFacts] = {}
        self._compute()

    # ------------------------------------------------------------------ build
    def _compute(self) -> None:
        must_p = _HeldLocks(self.locks, "intersection")
        may_p = _HeldLocks(self.locks, "union")
        must_in, _ = solve(self.cfg, must_p)
        may_in, _ = solve(self.cfg, may_p)

        # Flow facts, replayed statement by statement inside each block.
        flow_must: dict[int, frozenset] = {}
        flow_may: dict[int, frozenset] = {}
        for bid in sorted(self.cfg.blocks):
            block = self.cfg.blocks[bid]
            must_v, may_v = must_in[bid], may_in[bid]
            for stmt in block.stmts:
                flow_must[id(stmt)] = must_v
                flow_may[id(stmt)] = may_v
                must_v = must_p.transfer_stmt(stmt, must_v)
                may_v = may_p.transfer_stmt(stmt, may_v)

        # Lexical `with` guards and one-thread branches: exact extents.
        lex_guards: dict[int, frozenset] = {}
        lex_single: dict[int, bool] = {}

        def walk(stmts: list[ast.stmt], guards: frozenset, single: bool) -> None:
            for stmt in stmts:
                lex_guards[id(stmt)] = guards
                lex_single[id(stmt)] = single
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = guards
                    for item in stmt.items:
                        if is_sync_guard(item.context_expr, set(self.locks)):
                            key = guard_key(item.context_expr)
                            if key:
                                inner = inner | {key}
                    walk(stmt.body, inner, single)
                elif isinstance(stmt, ast.If):
                    one = _is_one_thread_test(stmt.test)
                    walk(stmt.body, guards, single or one)
                    walk(stmt.orelse, guards, single)
                elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    walk(stmt.body, guards, single)
                    walk(stmt.orelse, guards, single)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body, guards, single)
                    for handler in stmt.handlers:
                        walk(handler.body, guards, single)
                    walk(stmt.orelse, guards, single)
                    walk(stmt.finalbody, guards, single)

        root = (
            [ast.Expr(value=self.body.body)]
            if isinstance(self.body, ast.Lambda)
            else list(getattr(self.body, "body", []))
        )
        walk(root, frozenset(), False)

        for _, stmt in self.cfg.statements():
            key = id(stmt)
            lex = lex_guards.get(key, frozenset())
            self._facts[key] = StmtFacts(
                must_locks=flow_must.get(key, frozenset()) | lex,
                may_locks=flow_may.get(key, frozenset()) | lex,
                one_thread=lex_single.get(key, False),
            )

    # ---------------------------------------------------------------- queries
    def facts(self, stmt: ast.stmt) -> StmtFacts:
        """Facts for a CFG statement; unknown statements get no guards."""
        return self._facts.get(
            id(stmt), StmtFacts(frozenset(), frozenset(), False))

    def enclosing_stmt(self, node: ast.AST) -> ast.stmt | None:
        """The CFG statement lexically containing ``node`` (or the node
        itself if it is one)."""
        if id(node) in self._facts:
            return node  # type: ignore[return-value]
        for _, stmt in self.cfg.statements():
            for sub in ast.walk(stmt):
                if sub is node:
                    return stmt
        return None

    def may_race(self, a: ast.stmt, b: ast.stmt) -> bool:
        """Can these two statements execute concurrently unordered?"""
        fa, fb = self.facts(a), self.facts(b)
        if fa.one_thread and fb.one_thread:
            return False
        return not (fa.must_locks & fb.must_locks)
