"""Static MPI protocol checking by per-rank abstract interpretation.

``mpicheck`` finds deadlocks *dynamically* — it has to run the program.
This module finds the same protocol bugs statically: it evaluates an
SPMD body once per rank (rank 0 and 1 of a 2-process world), resolving
rank-constant conditions (``if rank == 0:``), and records the concrete
trace of ``send``/``recv``/collective operations each rank would issue.
A small matching simulator then plays the traces against each other:

* every rank blocked in the same ``recv`` → the symmetric exchange
  deadlock (PDC103);
* blocked recvs forming an asymmetric wait cycle → PDC110;
* one rank inside a collective the others never call → PDC104;
* all ranks in collectives, but in different orders → PDC111;
* a ``recv`` whose sender already finished, or a ``send`` nobody ever
  receives → PDC112.

The evaluator is deliberately honest about its limits: any construct it
cannot follow *that involves communication* (``while`` loops around comm
ops, wildcard sources, unknown branch conditions guarding sends) raises
:class:`Ambiguous`, and the caller falls back to the older lexical
heuristics rather than guessing.  A correct program never gains a
finding from ambiguity.
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass, field

__all__ = [
    "Ambiguous",
    "Op",
    "RankTrace",
    "ProtocolFinding",
    "spmd_roots",
    "extract_traces",
    "simulate",
    "check_protocol",
    "WILDCARD_TAG",
]

#: simulated world size — the smallest SPMD world that exhibits cycles
R = 2
#: recv with no explicit tag matches any tag
WILDCARD_TAG = "*"

_MAX_LOOP_ITERS = 64
_MAX_STEPS = 4000
_MAX_INLINE_DEPTH = 1

_SEND_METHODS = frozenset({"send", "Send", "ssend", "Ssend", "isend", "Isend",
                           "ibsend", "bsend", "Bsend"})
_RECV_METHODS = frozenset({"recv", "Recv", "irecv", "Irecv"})
_COLLECTIVE_METHODS = frozenset({
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce", "allreduce", "Allreduce", "allgather", "Allgather",
    "alltoall", "Alltoall", "barrier", "Barrier", "scan", "Scan", "exscan",
})
_ROOTED_COLLECTIVES = frozenset({
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce",
})
_NEW_COMM_METHODS = frozenset({"Create_cart", "Split", "Dup", "Clone"})
_COMM_METHODS = _SEND_METHODS | _RECV_METHODS | _COLLECTIVE_METHODS | {"sendrecv"}

_SAFE_BUILTINS = {
    "range": range, "len": len, "abs": abs, "min": min, "max": max,
    "int": int, "float": float, "sum": sum, "divmod": divmod, "list": list,
    "tuple": tuple, "sorted": sorted, "str": str, "bool": bool,
}

_BINOPS = {
    ast.Add: operator.add, ast.Sub: operator.sub, ast.Mult: operator.mul,
    ast.FloorDiv: operator.floordiv, ast.Mod: operator.mod,
    ast.Div: operator.truediv, ast.Pow: operator.pow,
    ast.BitXor: operator.xor, ast.BitAnd: operator.and_,
    ast.BitOr: operator.or_, ast.LShift: operator.lshift,
    ast.RShift: operator.rshift,
}
_CMPOPS = {
    ast.Eq: operator.eq, ast.NotEq: operator.ne, ast.Lt: operator.lt,
    ast.LtE: operator.le, ast.Gt: operator.gt, ast.GtE: operator.ge,
}


class Ambiguous(Exception):
    """The body does something the static evaluator cannot follow."""


class _Unknown:
    _instance: "_Unknown | None" = None

    def __new__(cls) -> "_Unknown":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


UNKNOWN = _Unknown()


class _Comm:
    """Sentinel standing in for the communicator object."""


class _Return(Exception):
    pass


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


@dataclass(frozen=True)
class Op:
    """One communication operation in a rank's trace."""

    kind: str  # "send" | "recv" | "coll"
    line: int
    dest: int | None = None
    source: int | None = None
    tag: object = None
    name: str = ""  # collective method name
    root: int | None = None

    def key(self) -> tuple:
        """Shape key: identical across ranks for symmetric code."""
        return (self.kind, self.line, self.name)


@dataclass
class RankTrace:
    rank: int
    ops: list[Op] = field(default_factory=list)


@dataclass(frozen=True)
class ProtocolFinding:
    rule: str
    line: int
    message: str
    severity: str  # "error" | "warning"
    details: dict = field(default_factory=dict)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


# ---------------------------------------------------------------------------
# SPMD root discovery
# ---------------------------------------------------------------------------

def _comm_param(func: ast.AST) -> str | None:
    args = getattr(func, "args", None)
    if args is None:
        return None
    params = [a.arg for a in args.args]
    if "comm" in params:
        return "comm"
    return None


def spmd_roots(tree: ast.AST) -> list[ast.AST]:
    """Functions that run SPMD — one evaluation per rank.

    A function qualifies when it is passed to ``mpirun``/``run_script``/
    ``trace_run``, or takes a ``comm`` parameter *and is not called* by
    other code in the module (those are helpers, analyzed inline at
    their call sites instead of as independent roots).
    """
    launched: list[ast.AST] = []
    called_names: set[str] = set()
    defs: dict[str, ast.AST] = {}
    comm_param_funcs: list[ast.AST] = []

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, node)
            if _comm_param(node):
                comm_param_funcs.append(node)
        elif isinstance(node, ast.Lambda) and _comm_param(node):
            comm_param_funcs.append(node)
        elif isinstance(node, ast.Call):
            if _call_name(node) in ("mpirun", "run_script", "trace_run"):
                if node.args:
                    arg = node.args[0]
                    if isinstance(arg, ast.Lambda):
                        launched.append(arg)
                    elif isinstance(arg, ast.Name):
                        launched.append(arg.id)  # resolve after the walk
            elif isinstance(node.func, ast.Name):
                called_names.add(node.func.id)

    roots: list[ast.AST] = []
    seen: set[int] = set()

    def add(func: ast.AST) -> None:
        if id(func) not in seen:
            seen.add(id(func))
            roots.append(func)

    for item in launched:
        func = defs.get(item) if isinstance(item, str) else item
        if func is not None:
            add(func)
    for func in comm_param_funcs:
        name = getattr(func, "name", None)
        if name is None or name not in called_names:
            add(func)
    return roots


# ---------------------------------------------------------------------------
# Per-rank evaluation
# ---------------------------------------------------------------------------

def _parent_map(tree: ast.AST) -> dict[int, ast.AST]:
    # Memoized on the tree: the symbolic checker replays extraction at
    # every world size up to the cutoff, and rebuilding the parent map
    # per size dominated the lint profile.  Callers never mutate it.
    cached = tree.__dict__.get("_pdc_parent_map")
    if cached is not None:
        return cached
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    tree.__dict__["_pdc_parent_map"] = parents
    return parents


def _constant_bindings(scope_body: list[ast.stmt]) -> dict[str, object]:
    """``NAME = 3`` / ``A, B = 1, 2`` constant bindings in one suite."""
    env: dict[str, object] = {}
    for stmt in scope_body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
                env[target.id] = stmt.value.value
            elif (isinstance(target, ast.Tuple)
                  and isinstance(stmt.value, ast.Tuple)
                  and len(target.elts) == len(stmt.value.elts)):
                for t, v in zip(target.elts, stmt.value.elts):
                    if isinstance(t, ast.Name) and isinstance(v, ast.Constant):
                        env[t.id] = v.value
    return env


def _enclosing_env(tree: ast.AST, func: ast.AST) -> dict[str, object]:
    """Constants visible to ``func`` from the module and enclosing defs.

    Memoized per (tree, func) for the same reason as :func:`_parent_map`;
    callers copy before mutating.
    """
    env_cache = tree.__dict__.setdefault("_pdc_env_cache", {})
    cached = env_cache.get(id(func))
    if cached is not None:
        return cached
    parents = _parent_map(tree)
    chain: list[ast.AST] = []
    node: ast.AST | None = func
    while node is not None:
        node = parents.get(id(node))
        if isinstance(node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)):
            chain.append(node)
    env: dict[str, object] = {}
    for scope in reversed(chain):  # outermost first; inner shadows outer
        env.update(_constant_bindings(list(scope.body)))
    env_cache[id(func)] = env
    return env


class _Eval:
    """Evaluate one function body for one concrete rank."""

    def __init__(
        self,
        rank: int,
        size: int,
        defs: dict[str, ast.AST],
        base_env: dict[str, object],
        steps: list[int],
        depth: int = 0,
    ) -> None:
        self.rank = rank
        self.size = size
        self.defs = defs
        self.env: dict[str, object] = dict(base_env)
        self.steps = steps  # shared mutable step budget
        self.depth = depth
        self.ops: list[Op] = []

    # ------------------------------------------------------------------ entry
    def run(self, func: ast.AST, comm_args: dict[str, object]) -> None:
        args = getattr(func, "args", None)
        if args is not None:
            params = [a.arg for a in args.args]
            defaults = list(args.defaults)
            # right-align defaults with params
            for param, default in zip(params[len(params) - len(defaults):],
                                      defaults):
                if isinstance(default, ast.Constant):
                    self.env.setdefault(param, default.value)
                else:
                    self.env.setdefault(param, UNKNOWN)
            for param in params:
                self.env.setdefault(param, UNKNOWN)
        self.env.update(comm_args)
        body = (
            [ast.Expr(value=func.body)] if isinstance(func, ast.Lambda)
            else list(func.body)
        )
        try:
            self.exec_suite(body)
        except _Return:
            pass

    # ---------------------------------------------------------------- helpers
    def _tick(self) -> None:
        self.steps[0] += 1
        if self.steps[0] > _MAX_STEPS:
            raise Ambiguous("evaluation budget exceeded")

    def _comm_names(self) -> set[str]:
        return {name for name, val in self.env.items() if isinstance(val, _Comm)}

    def _has_comm_ops(self, node: ast.AST) -> bool:
        comm_names = self._comm_names()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in comm_names
                    and func.attr in _COMM_METHODS):
                return True
            # passing the communicator somewhere we cannot follow
            for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                if isinstance(arg, ast.Name) and arg.id in comm_names:
                    return True
        return False

    # ------------------------------------------------------------- statements
    def exec_suite(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        self._tick()
        if isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, UNKNOWN)
                op = _BINOPS.get(type(stmt.op))
                if (op is not None and current is not UNKNOWN
                        and value is not UNKNOWN):
                    try:
                        self.env[stmt.target.id] = op(current, value)
                    except Exception:
                        self.env[stmt.target.id] = UNKNOWN
                else:
                    self.env[stmt.target.id] = UNKNOWN
        elif isinstance(stmt, ast.AnnAssign):
            value = self.eval_expr(stmt.value) if stmt.value else UNKNOWN
            self._bind(stmt.target, value)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt)
        elif isinstance(stmt, ast.While):
            if self._has_comm_ops(stmt):
                raise Ambiguous("while loop around communication")
            self._havoc(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value)
            raise _Return
        elif isinstance(stmt, ast.Raise):
            raise _Return  # this rank stops here
        elif isinstance(stmt, ast.Break):
            raise _Break
        elif isinstance(stmt, ast.Continue):
            raise _Continue
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            self.exec_suite(stmt.body)
        elif isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                if self._has_comm_ops(handler):
                    raise Ambiguous("communication in exception handler")
            self.exec_suite(stmt.body)
            self.exec_suite(stmt.orelse)
            self.exec_suite(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.defs = dict(self.defs)
            self.defs[stmt.name] = stmt
            self.env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test)
        elif isinstance(stmt, (ast.Pass, ast.Global, ast.Nonlocal,
                               ast.Import, ast.ImportFrom, ast.Delete)):
            pass
        else:
            if self._has_comm_ops(stmt):
                raise Ambiguous(
                    f"unsupported statement {type(stmt).__name__} with comm ops")

    def _bind(self, target: ast.expr, value: object) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (tuple, list)) and len(value) == len(target.elts):
                for t, v in zip(target.elts, value):
                    self._bind(t, v)
            else:
                for t in target.elts:
                    self._bind(t, UNKNOWN)
        # attribute/subscript targets carry no tracked state

    def _havoc(self, stmt: ast.stmt) -> None:
        """Skip a statement we will not execute; clobber what it binds."""
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                self.env[sub.id] = UNKNOWN

    def _exec_if(self, stmt: ast.If) -> None:
        test = self.eval_expr(stmt.test)
        if test is UNKNOWN:
            if any(self._has_comm_ops(s) for s in stmt.body + stmt.orelse):
                raise Ambiguous("unknown branch condition guards communication")
            self._havoc(stmt)
            return
        branch = stmt.body if test else stmt.orelse
        self.exec_suite(branch)

    def _exec_for(self, stmt: ast.For) -> None:
        iterable = self.eval_expr(stmt.iter)
        concrete = isinstance(iterable, (list, tuple, range, str))
        if not concrete or len(iterable) > _MAX_LOOP_ITERS:
            if self._has_comm_ops(stmt):
                raise Ambiguous("loop bounds unknown around communication")
            self._havoc(stmt)
            return
        broke = False
        for item in iterable:
            self._bind(stmt.target, item)
            try:
                self.exec_suite(stmt.body)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke:
            self.exec_suite(stmt.orelse)

    # ------------------------------------------------------------ expressions
    def eval_expr(self, expr: ast.expr) -> object:
        self._tick()
        if isinstance(expr, ast.Constant):
            return expr.value
        if isinstance(expr, ast.Name):
            if expr.id == "ANY_TAG":
                return WILDCARD_TAG
            if expr.id == "ANY_SOURCE":
                return UNKNOWN
            return self.env.get(expr.id, UNKNOWN)
        if isinstance(expr, (ast.Tuple, ast.List)):
            values = [self.eval_expr(e) for e in expr.elts]
            return tuple(values) if isinstance(expr, ast.Tuple) else values
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            op = _BINOPS.get(type(expr.op))
            if op is None or left is UNKNOWN or right is UNKNOWN:
                return UNKNOWN
            try:
                return op(left, right)
            except Exception:
                return UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            value = self.eval_expr(expr.operand)
            if value is UNKNOWN:
                return UNKNOWN
            try:
                if isinstance(expr.op, ast.USub):
                    return -value
                if isinstance(expr.op, ast.UAdd):
                    return +value
                if isinstance(expr.op, ast.Not):
                    return not value
                if isinstance(expr.op, ast.Invert):
                    return ~value
            except Exception:
                return UNKNOWN
            return UNKNOWN
        if isinstance(expr, ast.Compare):
            left = self.eval_expr(expr.left)
            result = True
            for op_node, comparator in zip(expr.ops, expr.comparators):
                right = self.eval_expr(comparator)
                op = _CMPOPS.get(type(op_node))
                if op is None or left is UNKNOWN or right is UNKNOWN:
                    result = UNKNOWN
                    left = right
                    continue
                try:
                    if result is not UNKNOWN and not op(left, right):
                        result = False
                except Exception:
                    result = UNKNOWN
                left = right
            return result
        if isinstance(expr, ast.BoolOp):
            values = [self.eval_expr(v) for v in expr.values]
            if any(v is UNKNOWN for v in values):
                return UNKNOWN
            if isinstance(expr.op, ast.And):
                return all(values)
            return any(values)
        if isinstance(expr, ast.IfExp):
            test = self.eval_expr(expr.test)
            if test is UNKNOWN:
                if self._has_comm_ops(expr.body) or self._has_comm_ops(expr.orelse):
                    raise Ambiguous("unknown conditional expression with comm ops")
                return UNKNOWN
            return self.eval_expr(expr.body if test else expr.orelse)
        if isinstance(expr, ast.Call):
            return self.eval_call(expr)
        if isinstance(expr, ast.Attribute):
            self.eval_expr(expr.value)
            return UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self.eval_expr(expr.value)
            index = self.eval_expr(expr.slice)
            if base is not UNKNOWN and index is not UNKNOWN:
                try:
                    return base[index]
                except Exception:
                    return UNKNOWN
            return UNKNOWN
        if isinstance(expr, ast.JoinedStr):
            for part in expr.values:
                if isinstance(part, ast.FormattedValue):
                    self.eval_expr(part.value)
            return UNKNOWN
        if isinstance(expr, (ast.Lambda, ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp, ast.GeneratorExp,
                             ast.Starred, ast.Slice)):
            if self._has_comm_ops(expr):
                raise Ambiguous(
                    f"comm ops inside {type(expr).__name__} expression")
            return UNKNOWN
        # Anything else: evaluate children for effects, result unknown.
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self.eval_expr(child)
        return UNKNOWN

    # ------------------------------------------------------------------ calls
    def _arg(self, call: ast.Call, position: int, keyword: str,
             default: object = None) -> object:
        for kw in call.keywords:
            if kw.arg == keyword:
                return self.eval_expr(kw.value)
        if len(call.args) > position:
            return self.eval_expr(call.args[position])
        return default

    def eval_call(self, call: ast.Call) -> object:
        func = call.func
        if isinstance(func, ast.Attribute):
            base = self.eval_expr(func.value)
            if isinstance(base, _Comm):
                return self._comm_call(call, func.attr)
            # unknown receiver: evaluate arguments for effects
            for arg in call.args:
                self.eval_expr(arg)
            for kw in call.keywords:
                self.eval_expr(kw.value)
            return UNKNOWN
        if isinstance(func, ast.Name):
            name = func.id
            arg_values = [self.eval_expr(a) for a in call.args]
            kw_values = {kw.arg: self.eval_expr(kw.value)
                         for kw in call.keywords if kw.arg}
            target = self.defs.get(name)
            if target is not None and any(
                    isinstance(v, _Comm)
                    for v in list(arg_values) + list(kw_values.values())):
                return self._inline(target, arg_values, kw_values)
            if name in _SAFE_BUILTINS and all(
                    v is not UNKNOWN and not isinstance(v, _Comm)
                    for v in arg_values) and not kw_values:
                try:
                    return _SAFE_BUILTINS[name](*arg_values)
                except Exception:
                    return UNKNOWN
            if any(isinstance(v, _Comm)
                   for v in list(arg_values) + list(kw_values.values())):
                raise Ambiguous(
                    f"communicator passed to unresolvable call '{name}'")
            return UNKNOWN
        # calls on computed callables: evaluate operands, give up on value
        self.eval_expr(func)
        for arg in call.args:
            self.eval_expr(arg)
        return UNKNOWN

    def _inline(self, target: ast.AST, args: list[object],
                kwargs: dict[str, object]) -> object:
        if self.depth >= _MAX_INLINE_DEPTH:
            if self._has_comm_ops(target):
                raise Ambiguous("communication beyond the helper-inlining depth")
            return UNKNOWN
        inner = _Eval(self.rank, self.size, self.defs, {},
                      self.steps, self.depth + 1)
        params = [a.arg for a in target.args.args]
        bound: dict[str, object] = {}
        for param, value in zip(params, args):
            bound[param] = value
        bound.update({k: v for k, v in kwargs.items() if k in params})
        inner.run(target, bound)
        self.ops.extend(inner.ops)
        return UNKNOWN

    def _comm_call(self, call: ast.Call, method: str) -> object:
        line = call.lineno
        if method == "Get_rank":
            return self.rank
        if method == "Get_size":
            return self.size
        if method in _SEND_METHODS:
            if call.args:
                self.eval_expr(call.args[0])  # payload may nest comm ops
            dest = self._arg(call, 1, "dest")
            tag = self._arg(call, 2, "tag", 0)
            if not isinstance(dest, int) or not isinstance(tag, (int, str)):
                raise Ambiguous(f"unresolvable send endpoint at line {line}")
            self.ops.append(Op("send", line, dest=dest % self.size, tag=tag))
            return UNKNOWN
        if method in _RECV_METHODS:
            source = self._arg(call, 1, "source", UNKNOWN)
            tag = self._arg(call, 2, "tag", WILDCARD_TAG)
            if not isinstance(source, int):
                raise Ambiguous(f"unresolvable recv source at line {line}")
            if tag is UNKNOWN:
                tag = WILDCARD_TAG
            self.ops.append(Op("recv", line, source=source % self.size, tag=tag))
            return UNKNOWN
        if method == "sendrecv":
            if call.args:
                self.eval_expr(call.args[0])
            dest = self._arg(call, 1, "dest")
            sendtag = self._arg(call, 2, "sendtag", 0)
            source = self._arg(call, 4, "source", UNKNOWN)
            recvtag = self._arg(call, 5, "recvtag", WILDCARD_TAG)
            if not isinstance(dest, int) or not isinstance(source, int):
                raise Ambiguous(f"unresolvable sendrecv endpoints at line {line}")
            if recvtag is UNKNOWN:
                recvtag = WILDCARD_TAG
            self.ops.append(Op("send", line, dest=dest % self.size, tag=sendtag))
            self.ops.append(Op("recv", line, source=source % self.size,
                               tag=recvtag))
            return UNKNOWN
        if method in _COLLECTIVE_METHODS:
            for arg in call.args:
                self.eval_expr(arg)
            root: object = None
            if method in _ROOTED_COLLECTIVES:
                root = self._arg(call, 1, "root", 0)
                if not isinstance(root, int):
                    raise Ambiguous(f"unresolvable collective root at line {line}")
                root %= self.size
            self.ops.append(Op("coll", line, name=method.lower(), root=root))
            return UNKNOWN
        if method in _NEW_COMM_METHODS:
            for arg in call.args:
                self.eval_expr(arg)
            return UNKNOWN  # derived communicators are not tracked
        # Other communicator methods (Get_processor_name, Wtime, ...) are
        # communication-free.
        for arg in call.args:
            self.eval_expr(arg)
        for kw in call.keywords:
            self.eval_expr(kw.value)
        return UNKNOWN


def extract_traces(func: ast.AST, tree: ast.AST, *, size: int = R) -> list[RankTrace]:
    """Evaluate ``func`` once per rank; raises :class:`Ambiguous`."""
    defs: dict[str, ast.AST] | None = tree.__dict__.get("_pdc_defs")
    if defs is None:
        defs = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs.setdefault(node.name, node)
        tree.__dict__["_pdc_defs"] = defs
    base_env = _enclosing_env(tree, func)
    comm_name = _comm_param(func) or (
        func.args.args[0].arg if getattr(func, "args", None) and func.args.args
        else "comm")
    traces = []
    for rank in range(size):
        ev = _Eval(rank, size, defs, base_env, steps=[0])
        ev.run(func, {comm_name: _Comm()})
        traces.append(RankTrace(rank=rank, ops=ev.ops))
    return traces


# ---------------------------------------------------------------------------
# Trace matching
# ---------------------------------------------------------------------------

def _coll_key(op: Op) -> tuple:
    return (op.name, op.root)


def simulate(traces: list[RankTrace]) -> list[ProtocolFinding]:
    """Play the per-rank traces against each other; classify stuck states."""
    size = len(traces)
    pc = [0] * size
    channels: dict[tuple[int, int], list[Op]] = {}

    def current(r: int) -> Op | None:
        ops = traces[r].ops
        return ops[pc[r]] if pc[r] < len(ops) else None

    progress = True
    while progress:
        progress = False
        for r in range(size):
            op = current(r)
            if op is None:
                continue
            if op.kind == "send":
                channels.setdefault((r, op.dest), []).append(op)
                pc[r] += 1
                progress = True
            elif op.kind == "recv":
                queue = channels.get((op.source, r), [])
                for i, msg in enumerate(queue):
                    if op.tag == WILDCARD_TAG or msg.tag == op.tag:
                        queue.pop(i)
                        pc[r] += 1
                        progress = True
                        break
            elif op.kind == "coll":
                others = [current(o) for o in range(size) if o != r]
                if all(o is not None and o.kind == "coll"
                       and _coll_key(o) == _coll_key(op) for o in others):
                    for o in range(size):
                        pc[o] += 1
                    progress = True

    blocked = {r: current(r) for r in range(size) if current(r) is not None}
    if not blocked:
        return _classify_completed(traces, channels)
    return [_classify_stuck(traces, blocked, pc)]


def _classify_completed(
    traces: list[RankTrace],
    channels: dict[tuple[int, int], list[Op]],
) -> list[ProtocolFinding]:
    findings: list[ProtocolFinding] = []
    leftover_lines: dict[int, int] = {}
    for queue in channels.values():
        for msg in queue:
            leftover_lines[msg.line] = leftover_lines.get(msg.line, 0) + 1
    for line, count in sorted(leftover_lines.items()):
        findings.append(ProtocolFinding(
            rule="PDC112", line=line, severity="warning",
            message=(f"{count} message(s) sent here are never received by "
                     "any rank — a send/recv count mismatch"),
            details={"unreceived": count},
        ))
    if findings:
        return findings

    # Symmetric send-before-recv completes under buffering, but blocks the
    # moment messages stop fitting — keep flagging the classroom shape.
    keys = [tuple(op.key() for op in t.ops) for t in traces]
    p2p = [[op for op in t.ops if op.kind != "coll"] for t in traces]
    if (all(k == keys[0] for k in keys) and all(ops for ops in p2p)
            and all(ops[0].kind == "send" for ops in p2p)
            and all(any(op.kind == "recv" for op in ops) for ops in p2p)):
        line = p2p[0][0].line
        findings.append(ProtocolFinding(
            rule="PDC103", line=line, severity="warning",
            message=("every rank send()s before it recv()s; blocking sends "
                     "deadlock as soon as messages stop fitting in buffers"),
        ))
    return findings


def _classify_stuck(
    traces: list[RankTrace],
    blocked: dict[int, Op],
    pc: list[int],
) -> ProtocolFinding:
    size = len(traces)
    done = [r for r in range(size) if r not in blocked]
    kinds = {op.kind for op in blocked.values()}
    keys = [tuple(op.key() for op in t.ops) for t in traces]
    symmetric = all(k == keys[0] for k in keys)

    if kinds == {"recv"}:
        if symmetric and len(blocked) == size:
            op = blocked[0]
            return ProtocolFinding(
                rule="PDC103", line=op.line, severity="error",
                message=("every rank blocks in recv() before reaching its "
                         "send() — the symmetric exchange deadlocks"),
                details={"ranks": sorted(blocked)},
            )
        # Is every blocked rank waiting on another blocked rank?
        if all(op.source in blocked for op in blocked.values()):
            first = min(blocked.values(), key=lambda op: op.line)
            cycle = " -> ".join(
                f"rank {r} waits for rank {blocked[r].source} "
                f"(recv at line {blocked[r].line})"
                for r in sorted(blocked)
            )
            return ProtocolFinding(
                rule="PDC110", line=first.line, severity="error",
                message=(f"ranks deadlock in a message-wait cycle: {cycle}"),
                details={"cycle": sorted(blocked)},
            )
        stuck = min(
            (op for op in blocked.values() if op.source not in blocked),
            key=lambda op: op.line,
        )
        return ProtocolFinding(
            rule="PDC112", line=stuck.line, severity="error",
            message=(f"recv() from rank {stuck.source} can never complete: "
                     "that rank finishes without sending a matching message"),
            details={"source": stuck.source},
        )

    if kinds == {"coll"}:
        if done:
            op = min(blocked.values(), key=lambda op: op.line)
            return ProtocolFinding(
                rule="PDC104", line=op.line, severity="error",
                message=(f"collective '{op.name}' is only reached by a subset "
                         "of ranks (it sits inside a rank conditional); the "
                         "other ranks never enter the collective and the "
                         "program hangs"),
                details={"collective": op.name,
                         "missing_ranks": done},
            )
        remaining = [
            sorted(_coll_key(op) for op in traces[r].ops[pc[r]:]
                   if op.kind == "coll")
            for r in range(size)
        ]
        if all(r == remaining[0] for r in remaining):
            op = blocked[0]
            order = ", then ".join(
                f"rank {r}: '{blocked[r].name}' (line {blocked[r].line})"
                for r in sorted(blocked)
            )
            return ProtocolFinding(
                rule="PDC111", line=op.line, severity="error",
                message=("ranks call the same collectives in different "
                         f"orders — {order}; collective calls must match "
                         "in program order on every rank"),
                details={"order": order},
            )
        op = min(blocked.values(), key=lambda op: op.line)
        return ProtocolFinding(
            rule="PDC104", line=op.line, severity="error",
            message=(f"collective '{op.name}' is not matched by every rank: "
                     "the ranks disagree on which collectives they will "
                     "call, and all of them hang"),
            details={"collective": op.name},
        )

    # Mixed point-to-point / collective stuck state.
    op = min(blocked.values(), key=lambda op: op.line)
    what = ", ".join(
        f"rank {r} in {blocked[r].kind} (line {blocked[r].line})"
        for r in sorted(blocked)
    )
    return ProtocolFinding(
        rule="PDC110", line=op.line, severity="error",
        message=f"ranks deadlock waiting on mismatched operations: {what}",
        details={"blocked": what},
    )


def check_protocol(func: ast.AST, tree: ast.AST) -> list[ProtocolFinding] | None:
    """Protocol findings for one SPMD root, or None when ambiguous."""
    try:
        traces = extract_traces(func, tree)
    except Ambiguous:
        return None
    except RecursionError:  # pragma: no cover - pathological inputs
        return None
    return simulate(traces)
