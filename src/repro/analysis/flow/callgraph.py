"""A one-level call graph with per-function effect summaries.

Learner submissions routinely factor the interesting operation into a
helper (``def update(): nonlocal total; total += 1`` called from the
parallel body).  Flat rules either miss the helper's effect or
double-report it.  This module gives rules just enough interprocedural
power: for each module-level function it records a :class:`Summary` of
the shared-state and communication effects visible in its own body, and
:func:`resolve_calls` maps call sites to the summaries of the helpers
they invoke — one level deep, which matches the shapes the curriculum
and real submissions use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Summary", "CallGraph", "build_callgraph"]

_SEND_METHODS = frozenset({"send", "Send", "ssend", "Ssend", "isend", "Isend"})
_RECV_METHODS = frozenset({"recv", "Recv", "irecv", "Irecv"})
_COLLECTIVE_METHODS = frozenset({
    "bcast", "Bcast", "scatter", "Scatter", "gather", "Gather",
    "reduce", "Reduce", "allreduce", "Allreduce", "allgather", "Allgather",
    "alltoall", "Alltoall", "barrier", "Barrier", "scan", "Scan", "exscan",
})


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


@dataclass
class Summary:
    """Effects visible in one function's own body (not its callees)."""

    name: str
    node: ast.AST
    #: names declared nonlocal/global and written
    shared_writes: dict[str, int] = field(default_factory=dict)  # name -> line
    #: names read that are free (not params, not locally bound)
    free_reads: set[str] = field(default_factory=set)
    sends: list[int] = field(default_factory=list)
    recvs: list[int] = field(default_factory=list)
    collectives: list[tuple[str, int]] = field(default_factory=list)
    barriers: list[int] = field(default_factory=list)
    acquires: list[tuple[str, int]] = field(default_factory=list)
    releases: list[tuple[str, int]] = field(default_factory=list)
    calls: list[tuple[str, int]] = field(default_factory=list)  # callee, line

    @property
    def has_comm(self) -> bool:
        return bool(self.sends or self.recvs or self.collectives)


def _scoped_nodes(root: ast.AST) -> list[ast.AST]:
    """Subtree of ``root`` without nested function bodies."""
    out: list[ast.AST] = []
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        out.append(node)
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
    return out


def summarize(func: ast.AST, name: str = "") -> Summary:
    """Build the effect summary of one function/lambda body."""
    summary = Summary(name=name or getattr(func, "name", "<lambda>"), node=func)
    declared: set[str] = set()
    bound: set[str] = set()
    if hasattr(func, "args"):
        args = func.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            bound.add(a.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                bound.add(extra.arg)

    nodes = _scoped_nodes(func)
    for node in nodes:
        if isinstance(node, (ast.Nonlocal, ast.Global)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)

    for node in nodes:
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Store) and node.id in declared:
                summary.shared_writes.setdefault(node.id, node.lineno)
            elif isinstance(node.ctx, ast.Load) and node.id not in bound:
                summary.free_reads.add(node.id)
        elif isinstance(node, ast.Call):
            cname = _call_name(node)
            if isinstance(node.func, ast.Attribute):
                if cname in _SEND_METHODS:
                    summary.sends.append(node.lineno)
                elif cname in _RECV_METHODS:
                    summary.recvs.append(node.lineno)
                elif cname in _COLLECTIVE_METHODS:
                    summary.collectives.append((cname, node.lineno))
                    if cname.lower() == "barrier":
                        summary.barriers.append(node.lineno)
                elif cname == "acquire" and isinstance(node.func.value, ast.Name):
                    summary.acquires.append((node.func.value.id, node.lineno))
                elif cname == "release" and isinstance(node.func.value, ast.Name):
                    summary.releases.append((node.func.value.id, node.lineno))
            elif isinstance(node.func, ast.Name):
                if cname == "barrier":
                    summary.barriers.append(node.lineno)
                summary.calls.append((cname, node.lineno))
    return summary


@dataclass
class CallGraph:
    """Summaries for every named function in a module, plus call edges."""

    summaries: dict[str, Summary]

    def summary(self, name: str) -> Summary | None:
        return self.summaries.get(name)

    def callees(self, func_name: str) -> list[tuple[Summary, int]]:
        """Resolved (summary, call line) pairs for direct calls — one
        level: callees' own calls are not chased further."""
        caller = self.summaries.get(func_name)
        if caller is None:
            return []
        out = []
        for callee_name, line in caller.calls:
            callee = self.summaries.get(callee_name)
            if callee is not None and callee is not caller:
                out.append((callee, line))
        return out

    def effective_summary(self, func: ast.AST, name: str = "") -> Summary:
        """A function's summary with one level of helper effects merged
        in, each anchored at the *call site* line."""
        base = summarize(func, name)
        merged = Summary(name=base.name, node=base.node)
        merged.shared_writes = dict(base.shared_writes)
        merged.free_reads = set(base.free_reads)
        merged.sends = list(base.sends)
        merged.recvs = list(base.recvs)
        merged.collectives = list(base.collectives)
        merged.barriers = list(base.barriers)
        merged.acquires = list(base.acquires)
        merged.releases = list(base.releases)
        merged.calls = list(base.calls)
        for callee_name, line in base.calls:
            callee = self.summaries.get(callee_name)
            if callee is None or callee.node is func:
                continue
            for var in callee.shared_writes:
                merged.shared_writes.setdefault(var, line)
            merged.free_reads |= callee.free_reads
            merged.sends.extend(line for _ in callee.sends)
            merged.recvs.extend(line for _ in callee.recvs)
            merged.collectives.extend((m, line) for m, _ in callee.collectives)
            merged.barriers.extend(line for _ in callee.barriers)
            merged.acquires.extend((k, line) for k, _ in callee.acquires)
            merged.releases.extend((k, line) for k, _ in callee.releases)
        return merged


def build_callgraph(tree: ast.AST) -> CallGraph:
    """Summaries for all named defs in a module (nested defs included)."""
    summaries: dict[str, Summary] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # First definition wins: shadowing is rare in learner code and
            # a stable choice keeps diagnostics deterministic.
            summaries.setdefault(node.name, summarize(node))
    return CallGraph(summaries=summaries)
