"""A generic worklist dataflow solver over :mod:`.cfg` graphs.

A :class:`Problem` declares its direction, its meet (union for may-
analyses, intersection for must-analyses), its boundary/initial values,
and a per-statement transfer function; :func:`solve` iterates blocks to a
fixed point and returns the in/out sets per block.  Statement-level facts
inside a block are recovered with :func:`facts_at` by replaying the
block's transfers — cheap, and it keeps the solver itself block-granular.

Two classic instances ship with the solver:

* :class:`ReachingDefinitions` — which ``(name, line)`` definitions can
  reach each point (forward, union);
* :class:`LiveVariables` — which names may still be read later
  (backward, union).
"""

from __future__ import annotations

import ast
from typing import Hashable, Iterable

from .cfg import CFG, BasicBlock

__all__ = [
    "Problem",
    "solve",
    "facts_at",
    "ReachingDefinitions",
    "LiveVariables",
    "stmt_defs",
    "stmt_uses",
    "expr_uses",
]


# ---------------------------------------------------------------------------
# Def/use extraction
# ---------------------------------------------------------------------------

def _target_names(target: ast.expr) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


def stmt_defs(stmt: ast.stmt) -> set[str]:
    """Names (re)bound by one statement, without descending into nested defs."""
    if isinstance(stmt, ast.Assign):
        return set().union(*(_target_names(t) for t in stmt.targets)) if stmt.targets else set()
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: set[str] = set()
        for item in stmt.items:
            if item.optional_vars is not None:
                out |= _target_names(item.optional_vars)
        return out
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return {stmt.name}
    if isinstance(stmt, ast.Import):
        return {(a.asname or a.name.split(".")[0]) for a in stmt.names}
    if isinstance(stmt, ast.ImportFrom):
        return {(a.asname or a.name) for a in stmt.names}
    return set()


def expr_uses(expr: ast.AST | None) -> set[str]:
    """Names loaded anywhere in an expression.

    Comprehension targets are scoped: in ``[x for x in items]`` the ``x``
    read in the element is bound by the comprehension's own generator, not
    the enclosing function, so it is not reported as a use (``items`` is).
    Nested lambda bodies are still included — a conservative
    over-approximation of uses.
    """
    if expr is None:
        return set()
    out: set[str] = set()
    _collect_uses(expr, out, frozenset())
    return out


_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _collect_uses(node: ast.AST, out: set[str], bound: frozenset[str]) -> None:
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id not in bound:
            out.add(node.id)
        return
    if isinstance(node, _COMP_NODES):
        local = set(bound)
        for gen in node.generators:
            # each iterable is evaluated before that generator's target binds
            _collect_uses(gen.iter, out, frozenset(local))
            local |= _target_names(gen.target)
            for cond in gen.ifs:
                _collect_uses(cond, out, frozenset(local))
        scope = frozenset(local)
        if isinstance(node, ast.DictComp):
            _collect_uses(node.key, out, scope)
            _collect_uses(node.value, out, scope)
        else:
            _collect_uses(node.elt, out, scope)
        return
    for child in ast.iter_child_nodes(node):
        _collect_uses(child, out, bound)


def stmt_uses(stmt: ast.stmt) -> set[str]:
    """Names a statement reads before any of its own definitions bind."""
    if isinstance(stmt, ast.Assign):
        return expr_uses(stmt.value)
    if isinstance(stmt, ast.AugAssign):
        # x += e reads both x and e.
        return expr_uses(stmt.value) | _target_names(stmt.target)
    if isinstance(stmt, ast.AnnAssign):
        return expr_uses(stmt.value)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return expr_uses(stmt.iter)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out: set[str] = set()
        for item in stmt.items:
            out |= expr_uses(item.context_expr)
        return out
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # A nested def's closure reads happen when it *runs*, not here; its
        # decorators and defaults are evaluated at the def site though.
        out = set()
        for dec in stmt.decorator_list:
            out |= expr_uses(dec)
        if not isinstance(stmt, ast.ClassDef):
            for default in stmt.args.defaults + [
                d for d in stmt.args.kw_defaults if d is not None
            ]:
                out |= expr_uses(default)
        return out
    if isinstance(stmt, (ast.Return, ast.Expr)):
        return expr_uses(stmt.value)
    if isinstance(stmt, ast.Raise):
        return expr_uses(stmt.exc) | expr_uses(stmt.cause)
    if isinstance(stmt, ast.Assert):
        return expr_uses(stmt.test) | expr_uses(stmt.msg)
    if isinstance(stmt, ast.Delete):
        return set()
    # Fallback: every loaded name in the statement.
    return expr_uses(stmt)


# ---------------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------------

class Problem:
    """One dataflow problem: direction, meet, boundary, transfer."""

    #: "forward" (facts flow entry -> exit) or "backward".
    direction: str = "forward"
    #: "union" (may) or "intersection" (must).
    meet: str = "union"

    def boundary(self, cfg: CFG) -> frozenset[Hashable]:
        """Value at the entry (forward) / exit (backward) block."""
        return frozenset()

    def initial(self, cfg: CFG) -> frozenset[Hashable]:
        """Optimistic initial value for every other block."""
        return frozenset()

    def transfer_stmt(self, stmt: ast.stmt, value: frozenset) -> frozenset:
        raise NotImplementedError

    def transfer_test(self, test: ast.expr, value: frozenset) -> frozenset:
        """Branch conditions only *use* values by default."""
        return value

    # ------------------------------------------------------------------ hooks
    def transfer_block(self, block: BasicBlock, value: frozenset) -> frozenset:
        if self.direction == "forward":
            for stmt in block.stmts:
                value = self.transfer_stmt(stmt, value)
            if block.test is not None:
                value = self.transfer_test(block.test, value)
        else:
            if block.test is not None:
                value = self.transfer_test(block.test, value)
            for stmt in reversed(block.stmts):
                value = self.transfer_stmt(stmt, value)
        return value

    def _meet(self, values: Iterable[frozenset]) -> frozenset:
        values = list(values)
        if not values:
            return frozenset()
        if self.meet == "union":
            return frozenset().union(*values)
        return frozenset.intersection(*values)


def solve(cfg: CFG, problem: Problem) -> tuple[dict[int, frozenset], dict[int, frozenset]]:
    """Iterate to a fixed point; return ``(in_sets, out_sets)`` per block."""
    forward = problem.direction == "forward"
    start = cfg.entry if forward else cfg.exit
    edges_in = (
        (lambda b: cfg.blocks[b].preds) if forward else (lambda b: cfg.blocks[b].succs)
    )
    edges_out = (
        (lambda b: cfg.blocks[b].succs) if forward else (lambda b: cfg.blocks[b].preds)
    )

    in_sets: dict[int, frozenset] = {bid: problem.initial(cfg) for bid in cfg.blocks}
    out_sets: dict[int, frozenset] = {}
    in_sets[start] = problem.boundary(cfg)
    for bid in cfg.blocks:
        out_sets[bid] = problem.transfer_block(cfg.blocks[bid], in_sets[bid])

    work = list(cfg.blocks)
    while work:
        bid = work.pop(0)
        if bid != start:
            incoming = [out_sets[p] for p in edges_in(bid)]
            if incoming:
                in_sets[bid] = problem._meet(incoming)
        updated = problem.transfer_block(cfg.blocks[bid], in_sets[bid])
        if updated != out_sets[bid]:
            out_sets[bid] = updated
            for nxt in edges_out(bid):
                if nxt not in work:
                    work.append(nxt)
    if forward:
        return in_sets, out_sets
    # For backward problems report (in, out) in *execution* order: the
    # "in" of a block is the value before it runs.
    return out_sets, in_sets


def facts_at(
    problem: Problem,
    cfg: CFG,
    in_sets: dict[int, frozenset],
    block: BasicBlock,
    stmt: ast.stmt,
    *,
    after: bool = False,
) -> frozenset:
    """Statement-level facts inside a block, by replaying its transfers.

    For forward problems: facts holding immediately before ``stmt`` (or
    after it with ``after=True``).  For backward problems: facts holding
    immediately after ``stmt`` in execution order (before it with
    ``after=True`` — i.e. the transfer applied).
    """
    if problem.direction == "forward":
        value = in_sets[block.id]
        for s in block.stmts:
            if s is stmt:
                return problem.transfer_stmt(s, value) if after else value
            value = problem.transfer_stmt(s, value)
        raise ValueError("statement not in block")
    # backward: walk from the block's execution-order end
    value = in_sets[block.id]  # for backward, in_sets holds post-block facts
    if block.test is not None:
        value = problem.transfer_test(block.test, value)
    for s in reversed(block.stmts):
        if s is stmt:
            return problem.transfer_stmt(s, value) if after else value
        value = problem.transfer_stmt(s, value)
    raise ValueError("statement not in block")


# ---------------------------------------------------------------------------
# Instances
# ---------------------------------------------------------------------------

class ReachingDefinitions(Problem):
    """Which ``(name, line)`` definitions may reach each program point."""

    direction = "forward"
    meet = "union"

    def transfer_stmt(self, stmt: ast.stmt, value: frozenset) -> frozenset:
        defs = stmt_defs(stmt)
        if not defs:
            return value
        line = getattr(stmt, "lineno", 0)
        kept = frozenset(d for d in value if d[0] not in defs)
        return kept | frozenset((name, line) for name in defs)


class LiveVariables(Problem):
    """Which names may still be read on some path from each point."""

    direction = "backward"
    meet = "union"

    def transfer_stmt(self, stmt: ast.stmt, value: frozenset) -> frozenset:
        return (value - stmt_defs(stmt)) | stmt_uses(stmt)

    def transfer_test(self, test: ast.expr, value: frozenset) -> frozenset:
        return value | expr_uses(test)
