"""Flow-sensitive static analysis under pdclint.

The package layers four facilities the lint rules build on:

* :mod:`.cfg` — per-function control-flow graphs with dominators;
* :mod:`.dataflow` — a generic worklist solver plus reaching-definitions
  and live-variables instances;
* :mod:`.mhp` — may-happen-in-parallel guard facts (must/may-held locks,
  one-thread regions) for ``repro.openmp`` parallel bodies;
* :mod:`.callgraph` — one-level effect summaries for helper functions;
* :mod:`.protocol` — static MPI protocol checking by per-rank abstract
  interpretation and trace matching.
"""

from .callgraph import CallGraph, Summary, build_callgraph
from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import (
    LiveVariables,
    Problem,
    ReachingDefinitions,
    facts_at,
    solve,
)
from .mhp import MHPAnalysis, StmtFacts, is_sync_guard, lock_names
from .protocol import (
    Ambiguous,
    Op,
    ProtocolFinding,
    RankTrace,
    check_protocol,
    extract_traces,
    simulate,
    spmd_roots,
)

__all__ = [
    "BasicBlock", "CFG", "build_cfg",
    "Problem", "solve", "facts_at", "ReachingDefinitions", "LiveVariables",
    "MHPAnalysis", "StmtFacts", "lock_names", "is_sync_guard",
    "CallGraph", "Summary", "build_callgraph",
    "Ambiguous", "Op", "RankTrace", "ProtocolFinding",
    "spmd_roots", "extract_traces", "simulate", "check_protocol",
]
