"""Histogram percentiles and the named metric-provider registry."""

from __future__ import annotations

import pytest

from repro.obs import (
    register_provider,
    snapshot_providers,
    unregister_provider,
)
from repro.obs.metrics import Histogram


class TestPercentile:
    def test_empty_histogram_is_zero(self):
        assert Histogram().percentile(50) == 0.0

    def test_out_of_range_rejected(self):
        hist = Histogram()
        hist.add(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_single_value_clamps_to_it(self):
        hist = Histogram()
        for _ in range(4):
            hist.add(10.0)
        # Interpolation inside [8, 16) would say 12; the clamp to the
        # observed range pins every percentile to the only value seen.
        for q in (0, 50, 99, 100):
            assert hist.percentile(q) == 10.0

    def test_uniform_1_to_100_exact_at_bucket_boundary(self):
        hist = Histogram()
        for i in range(1, 101):
            hist.add(float(i))
        # Rank 50 falls in bucket [32, 64) after 31 smaller samples:
        # 32 + (19/32) * 32 = 51 — within one value of the true median.
        assert hist.percentile(50) == 51.0
        # The p99 interpolation overshoots past the max and is clamped.
        assert hist.percentile(99) == 100.0
        assert hist.percentile(0) >= hist.min

    def test_percentiles_are_monotonic(self):
        hist = Histogram()
        for i in range(1, 1000):
            hist.add(float(i * i % 797))
        values = [hist.percentile(q) for q in (10, 50, 90, 99)]
        assert values == sorted(values)
        assert hist.min <= values[0] and values[-1] <= hist.max

    def test_percentiles_dict(self):
        hist = Histogram()
        hist.add(5.0)
        qs = hist.percentiles((50, 90, 99))
        assert set(qs) == {50, 90, 99}
        assert all(v == 5.0 for v in qs.values())

    def test_summary_includes_percentiles(self):
        hist = Histogram()
        hist.add(3.0)
        summary = hist.summary()
        assert summary["p50"] == 3.0 and summary["p90"] == 3.0
        assert summary["p99"] == 3.0

    def test_sub_one_values_land_in_bucket_zero(self):
        hist = Histogram()
        for _ in range(10):
            hist.add(0.25)
        assert hist.percentile(50) == 0.25  # clamped within [min, max]


class TestProviderRegistry:
    def test_register_snapshot_unregister(self):
        register_provider("test-prov", lambda: {"x": 1})
        try:
            assert snapshot_providers()["test-prov"] == {"x": 1}
        finally:
            unregister_provider("test-prov")
        assert "test-prov" not in snapshot_providers()

    def test_snapshot_is_sorted_and_live(self):
        state = {"n": 0}
        register_provider("b-prov", lambda: {"n": state["n"]})
        register_provider("a-prov", lambda: {"n": -1})
        try:
            state["n"] = 7
            snap = snapshot_providers()
            names = [n for n in snap if n.endswith("-prov")]
            assert names == sorted(names)
            assert snap["b-prov"]["n"] == 7  # re-evaluated at snapshot time
        finally:
            unregister_provider("a-prov")
            unregister_provider("b-prov")

    def test_unregister_unknown_is_noop(self):
        unregister_provider("never-registered")

    def test_reregistering_replaces(self):
        register_provider("dup-prov", lambda: {"v": 1})
        register_provider("dup-prov", lambda: {"v": 2})
        try:
            assert snapshot_providers()["dup-prov"] == {"v": 2}
        finally:
            unregister_provider("dup-prov")
