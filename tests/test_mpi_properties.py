"""Property-based tests: collective semantics against reference models.

Each property drives the full thread-per-rank runtime with
hypothesis-generated data and checks the result against the collective's
mathematical definition.  World sizes are kept small so each example runs
in milliseconds.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, MPI
from tests.conftest import spmd

# Worlds spin up real threads: cap example counts and sizes for speed.
FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

sizes = st.integers(min_value=1, max_value=6)
payloads = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=3),
    max_leaves=8,
)


@FAST
@given(size=sizes, payload=payloads, root_offset=st.integers(0, 5))
def test_bcast_delivers_equal_value_everywhere(size, payload, root_offset):
    root = root_offset % size

    def body(comm):
        data = payload if comm.Get_rank() == root else None
        return comm.bcast(data, root=root)

    outs = spmd(body, size)
    assert all(o == payload for o in outs)


@FAST
@given(size=sizes, items=st.data())
def test_scatter_gather_is_identity(size, items):
    values = items.draw(st.lists(payloads, min_size=size, max_size=size))

    def body(comm):
        mine = comm.scatter(values if comm.Get_rank() == 0 else None, root=0)
        return comm.gather(mine, root=0)

    outs = spmd(body, size)
    assert outs[0] == values


@FAST
@given(size=sizes, data=st.data())
def test_allgather_matches_gather_plus_bcast(size, data):
    values = data.draw(st.lists(st.integers(), min_size=size, max_size=size))

    def body(comm):
        return comm.allgather(values[comm.Get_rank()])

    outs = spmd(body, size)
    assert all(o == values for o in outs)


@FAST
@given(size=sizes, data=st.data())
def test_reduce_sum_matches_python_sum(size, data):
    values = data.draw(
        st.lists(
            st.integers(min_value=-(10**6), max_value=10**6),
            min_size=size,
            max_size=size,
        )
    )

    def body(comm):
        return comm.reduce(values[comm.Get_rank()], op=SUM, root=0)

    assert spmd(body, size)[0] == sum(values)


@FAST
@given(size=sizes, data=st.data())
def test_allreduce_max_min(size, data):
    values = data.draw(
        st.lists(st.integers(-1000, 1000), min_size=size, max_size=size)
    )

    def body(comm):
        v = values[comm.Get_rank()]
        return (comm.allreduce(v, op=MAX), comm.allreduce(v, op=MIN))

    outs = spmd(body, size)
    assert all(o == (max(values), min(values)) for o in outs)


@FAST
@given(size=sizes, data=st.data())
def test_scan_prefix_property(size, data):
    values = data.draw(
        st.lists(st.integers(-1000, 1000), min_size=size, max_size=size)
    )

    def body(comm):
        return comm.scan(values[comm.Get_rank()], op=SUM)

    outs = spmd(body, size)
    assert outs == [sum(values[: r + 1]) for r in range(size)]


@FAST
@given(size=st.integers(2, 5), data=st.data())
def test_alltoall_is_transpose(size, data):
    matrix = data.draw(
        st.lists(
            st.lists(st.integers(-100, 100), min_size=size, max_size=size),
            min_size=size,
            max_size=size,
        )
    )

    def body(comm):
        return comm.alltoall(matrix[comm.Get_rank()])

    outs = spmd(body, size)
    for j in range(size):
        assert outs[j] == [matrix[i][j] for i in range(size)]


@FAST
@given(
    size=st.integers(1, 5),
    n=st.integers(1, 64),
    seed=st.integers(0, 2**31 - 1),
)
def test_buffer_bcast_preserves_every_element(size, n, seed):
    rng = np.random.default_rng(seed)
    reference = rng.integers(-1000, 1000, size=n).astype("i")

    def body(comm):
        if comm.Get_rank() == 0:
            data = reference.copy()
        else:
            data = np.empty(n, dtype="i")
        comm.Bcast(data, root=0)
        return data.tolist()

    outs = spmd(body, size)
    assert all(o == reference.tolist() for o in outs)


@FAST
@given(size=st.integers(1, 5), n=st.integers(1, 32), seed=st.integers(0, 2**31 - 1))
def test_buffer_allreduce_matches_numpy(size, n, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(-100, 100, size=(size, n)).astype("i8")

    def body(comm):
        recv = np.empty(n, dtype="i8")
        comm.Allreduce(rows[comm.Get_rank()].copy(), recv, op=SUM)
        return recv.tolist()

    outs = spmd(body, size)
    expected = rows.sum(axis=0).tolist()
    assert all(o == expected for o in outs)


@FAST
@given(
    size=st.integers(2, 5),
    tags=st.lists(st.integers(0, 50), min_size=1, max_size=6, unique=True),
)
def test_tag_matching_retrieves_by_tag_regardless_of_order(size, tags):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            for t in tags:
                comm.send(f"tag-{t}", dest=1, tag=t)
            return None
        if rank == 1:
            # receive in reverse tag order; matching must be by tag
            return [comm.recv(source=0, tag=t) for t in reversed(tags)]
        return None

    outs = spmd(body, size)
    assert outs[1] == [f"tag-{t}" for t in reversed(tags)]
