"""Units for the static cost/scalability analyzer (``analysis.scale.cost``).

Covers the per-rank partial evaluator (message/byte accounting per
communication site, honest abstention codes), polynomial identification
over the ``(N, P)`` sample grid, the Amdahl-style speedup bound, and the
trusted/untrusted entry points.
"""

import ast

import pytest

from repro.analysis.flow.protocol import spmd_roots
from repro.analysis.scale.cost import (
    FLOAT_PICKLE_BYTES,
    POLY_BASIS,
    CostModel,
    Poly,
    _param_defaults,
    analyze_cost,
    analyze_module_cost,
    cost_report,
    fit_poly,
)


def _root(source: str):
    tree = ast.parse(source)
    roots = spmd_roots(tree)
    assert roots, "test source has no SPMD root"
    return roots[0], tree


def _sample(source: str, size: int, **kwargs):
    func, tree = _root(source)
    return analyze_cost(func, tree, size=size, **kwargs)


RING = """
def body(comm):
    rank = comm.Get_rank()
    size = comm.Get_size()
    value = 1.0
    comm.send(value, dest=(rank + 1) % size)
    got = comm.recv(source=(rank - 1) % size)
"""

FANOUT = """
def body(comm):
    rank = comm.Get_rank()
    size = comm.Get_size()
    if rank == 0:
        for worker in range(1, size):
            comm.send(1.0, dest=worker)
    else:
        got = comm.recv(source=0)
"""

BCAST = """
def body(comm):
    rank = comm.Get_rank()
    value = 7.0 if rank == 0 else None
    value = comm.bcast(value, root=0)
"""


class TestEvaluator:
    def test_ring_sends_one_message_per_rank(self):
        sample = _sample(RING, size=4)
        assert sample.abstained is None
        assert sample.msgs == 4
        assert sample.bytes == 4 * FLOAT_PICKLE_BYTES
        [site] = [s for s in sample.sites if s.kind == "p2p"]
        assert site.per_rank_msgs == [1, 1, 1, 1]

    def test_fanout_concentrates_messages_at_root(self):
        sample = _sample(FANOUT, size=5)
        assert sample.abstained is None
        assert sample.msgs == 4
        [site] = [s for s in sample.sites if s.kind == "p2p"]
        assert site.per_rank_msgs == [4, 0, 0, 0, 0]

    def test_bcast_message_count_matches_runtime_algorithm(self):
        # the runtime's bcast is a root fan-out: P - 1 transport messages
        for p in (2, 4, 8):
            sample = _sample(BCAST, size=p)
            assert sample.abstained is None
            assert sample.msgs == p - 1
            assert sample.bytes == (p - 1) * FLOAT_PICKLE_BYTES

    def test_work_scales_down_with_ranks(self):
        src = """
def body(comm):
    rank = comm.Get_rank()
    size = comm.Get_size()
    n = 120
    per = n // size
    total = 0.0
    for i in range(rank * per, (rank + 1) * per):
        total = total + i
    part = comm.reduce(total, root=0)
"""
        s2 = _sample(src, size=2)
        s4 = _sample(src, size=4)
        assert s2.abstained is None and s4.abstained is None
        assert s4.max_work < s2.max_work

    def test_imbalance_metric(self):
        src = """
def body(comm):
    rank = comm.Get_rank()
    size = comm.Get_size()
    total = 0.0
    if rank == 0:
        for i in range(100):
            total = total + i
    part = comm.gather(total, root=0)
"""
        sample = _sample(src, size=4)
        assert sample.abstained is None
        assert sample.imbalance > 1.0  # rank 0 does all the work
        assert max(sample.work) == sample.max_work


class TestAbstention:
    def test_while_around_comm_abstains_with_code(self):
        src = """
def body(comm):
    rank = comm.Get_rank()
    while rank < 100:
        comm.send(1.0, dest=0)
        rank = rank + 1
"""
        sample = _sample(src, size=2)
        assert sample.abstained == "while-around-comm"

    def test_unknown_branch_over_comm_abstains(self):
        src = """
def body(comm):
    rank = comm.Get_rank()
    if mystery():
        comm.send(1.0, dest=0)
"""
        sample = _sample(src, size=2)
        assert sample.abstained == "unknown-branch-comm"

    def test_unresolved_endpoint_abstains(self):
        src = """
def body(comm):
    rank = comm.Get_rank()
    comm.send(1.0, dest=pick_partner(rank))
"""
        sample = _sample(src, size=2)
        assert sample.abstained == "unresolved-endpoint"

    def test_abstention_never_raises(self):
        # a grab-bag of constructs the evaluator does not model
        src = """
def body(comm):
    rank = comm.Get_rank()
    try:
        comm.send(1.0, dest=1 - rank)
    except Exception:
        comm.send(2.0, dest=1 - rank)
"""
        sample = _sample(src, size=2)
        assert sample.abstained is not None

    def test_unknown_payload_degrades_bytes_not_msgs(self):
        # rank 0 skips the gather payload contribution logic entirely in
        # untrusted mode: byte totals go honest-None, counts stay exact
        src = """
def body(comm):
    rank = comm.Get_rank()
    local = compute_part(rank)
    parts = comm.gather(local, root=0)
"""
        sample = _sample(src, size=4)
        assert sample.abstained is None
        assert sample.msgs == 3  # gather: P - 1 transport messages
        assert sample.bytes is None


class TestPolyFit:
    def test_recovers_exact_polynomial(self):
        points = [(float(n), float(p), 3.0 + 2.0 * p)
                  for n in (10, 20, 40) for p in (1, 2, 4, 8)]
        poly = fit_poly(points)
        assert poly is not None
        assert poly.coeffs["P"] == pytest.approx(2.0, abs=1e-6)
        assert poly(100.0, 16.0) == pytest.approx(35.0, abs=1e-4)

    def test_abstains_on_non_polynomial_growth(self):
        points = [(0.0, float(p), 2.0 ** p) for p in (1, 2, 3, 4, 5, 6, 7, 8)]
        assert fit_poly(points) is None

    def test_describe_is_readable(self):
        poly = Poly(coeffs={"1": -1.0, "P": 1.0})
        text = poly.describe()
        assert "P" in text

    def test_basis_covers_the_teaching_shapes(self):
        # serialized fan-out (P), all-pairs (P^2), block decomposition (N/P)
        assert {"P", "P^2", "N/P"} <= set(POLY_BASIS)


class TestModuleModels:
    @pytest.fixture(scope="class")
    def integration_model(self) -> CostModel:
        return analyze_module_cost(
            "repro.exemplars.integration", "integrate_mpi",
            n_param="n", n_values=(100, 200, 400),
            p_values=(1, 2, 3, 4, 5))

    def test_integration_message_poly_is_p_minus_one(self, integration_model):
        poly = integration_model.msgs_poly
        assert poly is not None
        assert poly.coeffs["P"] == pytest.approx(1.0, abs=1e-6)
        assert poly.coeffs["1"] == pytest.approx(-1.0, abs=1e-6)

    def test_integration_bytes_scale_with_reduce_fanin(self,
                                                       integration_model):
        poly = integration_model.bytes_poly
        assert poly is not None
        assert poly(400.0, 4.0) == pytest.approx(
            3 * FLOAT_PICKLE_BYTES, rel=0.05)

    def test_integration_speedup_bound_is_monotone(self, integration_model):
        bounds = integration_model.speedup_bound
        assert [p for p, _ in bounds] == sorted(p for p, _ in bounds)
        values = [s for _, s in bounds]
        assert values == sorted(values)
        assert all(1.0 <= s <= p for p, s in bounds)

    def test_integration_serial_fraction_is_small(self, integration_model):
        assert integration_model.serial_fraction is not None
        assert 0.0 <= integration_model.serial_fraction < 0.1

    def test_sample_at_lookup(self, integration_model):
        sample = integration_model.sample_at(p=4, n=400)
        assert sample is not None
        assert sample.p == 4 and sample.n == 400
        assert integration_model.sample_at(p=99) is None


class TestParamDefaults:
    def test_constant_name_and_tuple_defaults(self):
        src = ("def launch(n, scale=2.0, probs=(0.1, 0.9), fn=helper):\n"
               "    pass\n")
        func = ast.parse(src).body[0]
        out = _param_defaults(func, {"helper": sum})
        assert out == {"scale": 2.0, "probs": (0.1, 0.9), "fn": sum}

    def test_unresolvable_default_left_unbound(self):
        src = "def launch(n, fn=missing, table={'a': 1}):\n    pass\n"
        func = ast.parse(src).body[0]
        out = _param_defaults(func, {})
        assert "fn" not in out and "table" not in out


class TestUntrustedReport:
    def test_cost_report_finds_spmd_roots(self):
        report = cost_report(FANOUT, "learner.py")
        assert len(report.models) == 1
        model = report.models[0]
        clean = [s for s in model.samples if s.abstained is None]
        assert clean
        # serialized fan-out: msgs = P - 1 at every sampled size
        for sample in clean:
            assert sample.msgs == sample.p - 1

    def test_cost_report_never_executes_user_code(self, tmp_path):
        marker = tmp_path / "executed"
        source = (
            f"open({str(marker)!r}, 'w').write('boom')\n"
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    comm.send(open('x'), dest=1 - rank)\n"
        )
        cost_report(source, "hostile.py")
        assert not marker.exists()

    def test_syntax_error_becomes_note(self):
        report = cost_report("def broken(:\n", "bad.py")
        assert not report.models
        assert any("syntax error" in note for note in report.notes)

    def test_report_round_trips_to_dict(self):
        payload = cost_report(RING, "ring.py").to_dict()
        assert payload["path"] == "ring.py"
        model = payload["models"][0]
        assert {"samples", "message_poly", "speedup_bound"} <= set(model)
