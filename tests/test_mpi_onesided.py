"""One-sided communication: Win Put/Get/Accumulate/Fence/Lock."""

import numpy as np
import pytest

from repro.mpi import MPI, PROD, RankFailedError, SUM, Win, mpirun
from tests.conftest import spmd


class TestPutGet:
    def test_put_visible_after_fence(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.zeros(4, dtype="i")
            win = Win.Create(local, comm)
            win.Fence()
            if rank == 0:
                win.Put(np.array([1, 2, 3, 4], dtype="i"), target_rank=1)
            win.Fence()
            win.Free()
            return local.tolist()

        outs = spmd(body, 2)
        assert outs[0] == [0, 0, 0, 0]
        assert outs[1] == [1, 2, 3, 4]

    def test_get_reads_remote_window(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.full(3, rank * 10, dtype="i")
            win = Win.Create(local, comm)
            win.Fence()
            got = np.empty(3, dtype="i")
            win.Get(got, target_rank=(rank + 1) % comm.Get_size())
            win.Fence()
            win.Free()
            return got.tolist()

        outs = spmd(body, 3)
        assert outs == [[10] * 3, [20] * 3, [0] * 3]

    def test_put_at_offset(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.zeros(6, dtype="d")
            win = Win.Create(local, comm)
            win.Fence()
            if rank != 0:
                win.Put(np.full(2, rank, dtype="d"), 0, target_offset=2 * rank)
            win.Fence()
            win.Free()
            return local.tolist()

        outs = spmd(body, 3)
        assert outs[0] == [0, 0, 1, 1, 2, 2]

    def test_put_out_of_bounds_raises(self):
        def body(comm):
            win = Win.Create(np.zeros(2, dtype="i"), comm)
            win.Fence()
            if comm.Get_rank() == 0:
                win.Put(np.zeros(5, dtype="i"), target_rank=1)
            win.Fence()

        with pytest.raises(RankFailedError):
            spmd(body, 2)

    def test_target_without_memory_raises(self):
        def body(comm):
            rank = comm.Get_rank()
            memory = np.zeros(2, dtype="i") if rank == 0 else None
            win = Win.Create(memory, comm)
            win.Fence()
            if rank == 0:
                win.Put(np.zeros(1, dtype="i"), target_rank=1)
            win.Fence()

        with pytest.raises(RankFailedError):
            spmd(body, 2)


class TestAccumulate:
    def test_concurrent_accumulate_never_loses_updates(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.zeros(1, dtype="i8")
            win = Win.Create(local, comm)
            win.Fence()
            for _ in range(200):
                win.Accumulate(np.array([1], dtype="i8"), target_rank=0)
            win.Fence()
            win.Free()
            return int(local[0])

        outs = spmd(body, 4)
        assert outs[0] == 4 * 200

    def test_accumulate_with_prod(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.ones(1, dtype="i8")
            win = Win.Create(local, comm)
            win.Fence()
            win.Accumulate(np.array([rank + 2], dtype="i8"), target_rank=0, op=PROD)
            win.Fence()
            win.Free()
            return int(local[0])

        outs = spmd(body, 3)
        assert outs[0] == 2 * 3 * 4


class TestLockUnlock:
    def test_passive_target_epoch(self):
        def body(comm):
            rank = comm.Get_rank()
            local = np.zeros(1, dtype="i8")
            win = Win.Create(local, comm)
            win.Fence()
            for _ in range(100):
                # read-modify-write made safe by the passive-target lock
                win.Lock(0)
                try:
                    current = np.empty(1, dtype="i8")
                    win.Get(current, target_rank=0)
                    win.Put(current + 1, target_rank=0)
                finally:
                    win.Unlock(0)
            win.Fence()
            win.Free()
            return int(local[0])

        outs = spmd(body, 4)
        assert outs[0] == 400

    def test_freed_window_rejects_access(self):
        def body(comm):
            win = Win.Create(np.zeros(1, dtype="i"), comm)
            win.Free()
            try:
                win.Put(np.zeros(1, dtype="i"), target_rank=0)
                return "no-error"
            except Exception:
                return "rejected"

        assert spmd(body, 2) == ["rejected"] * 2

    def test_two_windows_are_independent(self):
        def body(comm):
            a = np.zeros(1, dtype="i")
            b = np.zeros(1, dtype="i")
            win_a = Win.Create(a, comm)
            win_b = Win.Create(b, comm)
            win_a.Fence()
            win_b.Fence()
            if comm.Get_rank() == 0:
                win_a.Put(np.array([7], dtype="i"), target_rank=1)
                win_b.Put(np.array([9], dtype="i"), target_rank=1)
            win_a.Fence()
            win_b.Fence()
            return (int(a[0]), int(b[0]))

        outs = spmd(body, 2)
        assert outs[1] == (7, 9)

    def test_available_via_api_namespace(self):
        assert MPI.Win is Win
