"""Heat-diffusion exemplar: physics sanity and halo-exchange fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplars import heat_mpi, heat_omp, heat_seq, heat_workload, initial_rod

FAST = settings(max_examples=20, deadline=None)


class TestSequential:
    def test_initial_rod(self):
        u = initial_rod(10)
        assert u[0] == 100.0
        assert (u[1:] == 0.0).all()

    def test_boundaries_stay_fixed(self):
        u = heat_seq(30, steps=50)
        assert u[0] == 100.0
        assert u[-1] == 0.0

    def test_zero_steps_is_initial_state(self):
        np.testing.assert_array_equal(heat_seq(20, 0), initial_rod(20))

    def test_heat_flows_right_over_time(self):
        early = heat_seq(30, steps=5)
        late = heat_seq(30, steps=100)
        mid = 15
        assert late[mid] > early[mid]

    def test_profile_is_monotone_from_hot_end(self):
        u = heat_seq(40, steps=60)
        assert (np.diff(u) <= 1e-12).all()

    def test_total_heat_bounded_by_source(self):
        u = heat_seq(30, steps=200)
        assert (u <= 100.0 + 1e-9).all()
        assert (u >= -1e-9).all()

    def test_converges_to_linear_steady_state(self):
        """With both ends pinned, the steady state is the linear ramp."""
        n = 12
        u = heat_seq(n, steps=5000, alpha=0.5)
        ramp = np.linspace(100.0, 0.0, n)
        assert np.allclose(u, ramp, atol=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            heat_seq(2, 1)
        with pytest.raises(ValueError):
            heat_seq(10, -1)
        with pytest.raises(ValueError):
            heat_seq(10, 1, alpha=0.7)


class TestVariantAgreement:
    @pytest.fixture(scope="class")
    def reference(self):
        return heat_seq(37, steps=30)

    @pytest.mark.parametrize("threads", [1, 2, 3, 4])
    def test_omp_bit_identical(self, reference, threads):
        np.testing.assert_array_equal(
            heat_omp(37, steps=30, num_threads=threads), reference
        )

    @pytest.mark.parametrize("procs", [1, 2, 3, 4, 6])
    def test_mpi_bit_identical(self, reference, procs):
        np.testing.assert_array_equal(
            heat_mpi(37, steps=30, np_procs=procs), reference
        )

    def test_mpi_rejects_more_ranks_than_cells(self):
        with pytest.raises(ValueError, match="striped"):
            heat_mpi(4, steps=1, np_procs=8)

    @FAST
    @given(
        n=st.integers(5, 40),
        steps=st.integers(0, 20),
        procs=st.integers(1, 4),
    )
    def test_property_mpi_matches_seq(self, n, steps, procs):
        if n < procs:
            return
        np.testing.assert_array_equal(
            heat_mpi(n, steps=steps, np_procs=procs), heat_seq(n, steps=steps)
        )


class TestWorkloadDescriptor:
    def test_comm_scales_with_steps(self):
        a = heat_workload(1000, steps=10)
        b = heat_workload(1000, steps=20)
        assert b.messages(4) == 2 * a.messages(4)

    def test_stencil_efficiency_bends_before_monte_carlo(self):
        """Per-step synchronization should cost the stencil efficiency
        relative to an equal-ops embarrassingly parallel sweep."""
        from repro.exemplars import forestfire_workload
        from repro.platforms import ST_OLAF_VM, CostModel

        model = CostModel(ST_OLAF_VM)
        stencil = heat_workload(200_000, steps=400)
        mc = forestfire_workload(size=60, trials=97)  # comparable total ops
        p = 32
        eff = lambda w: (
            model.time(w, 1).total_s / model.time(w, p).total_s / p
        )
        assert eff(stencil) < eff(mc)
