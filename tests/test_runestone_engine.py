"""Runestone engine: questions, modules, progress, rendering."""

import pytest

from repro.runestone import (
    Callout,
    Chapter,
    Choice,
    CodeListing,
    DragAndDrop,
    FillInTheBlank,
    Gradebook,
    HandsOnActivity,
    LearnerProgress,
    Module,
    MultipleChoice,
    OrderingProblem,
    Section,
    Text,
    Video,
    render_html,
    render_section_text,
    render_text,
)


def tiny_module() -> Module:
    mc = MultipleChoice(
        activity_id="q1",
        prompt="Pick B.",
        choices=(Choice("A", "no"), Choice("B", "yes", feedback="well done")),
        correct_label="B",
    )
    fib = FillInTheBlank(
        activity_id="q2", prompt="2+2?", numeric_answer=4, tolerance=0
    )
    section1 = Section("1.1", "Intro", minutes=5).add(Text("welcome"), mc)
    section2 = Section("1.2", "More", minutes=7).add(fib)
    return Module("tiny", "Tiny Module", "testers").add(
        Chapter(1, "Only Chapter").add(section1).add(section2)
    )


class TestQuestionGrading:
    def test_multiple_choice_correct_and_feedback(self):
        q = tiny_module().find_question("q1")
        result = q.grade("B")
        assert result.correct and result.score == 1.0
        assert result.feedback == "well done"

    def test_multiple_choice_wrong_and_unknown(self):
        q = tiny_module().find_question("q1")
        assert not q.grade("A").correct
        bogus = q.grade("Z")
        assert not bogus.correct and "not one of the options" in bogus.feedback

    def test_multiple_choice_case_insensitive(self):
        assert tiny_module().find_question("q1").grade(" b ").correct

    def test_mc_validation(self):
        with pytest.raises(ValueError, match="duplicate"):
            MultipleChoice("x", "p", (Choice("A", "1"), Choice("A", "2")), "A")
        with pytest.raises(ValueError, match="correct label"):
            MultipleChoice("x", "p", (Choice("A", "1"),), "Q")

    def test_fill_in_blank_numeric_tolerance(self):
        q = FillInTheBlank("f", "pi?", numeric_answer=3.14159, tolerance=0.01)
        assert q.grade(3.14).correct
        assert q.grade("3.141").correct  # numeric strings accepted
        assert not q.grade(3.2).correct
        assert not q.grade("not a number").correct

    def test_fill_in_blank_regex(self):
        q = FillInTheBlank("f", "keyword?", answer_pattern=r"critical( section)?")
        assert q.grade("Critical Section").correct
        assert q.grade("critical").correct
        assert not q.grade("atomic").correct

    def test_drag_and_drop_partial_credit(self):
        q = DragAndDrop(
            "d", "match", pairs=(("a", "1"), ("b", "2"), ("c", "3"), ("d", "4"))
        )
        half = q.grade({"a": "1", "b": "2", "c": "4", "d": "3"})
        assert not half.correct and half.score == 0.5
        assert q.grade(dict(q.pairs)).correct

    def test_drag_and_drop_validation(self):
        with pytest.raises(ValueError):
            DragAndDrop("d", "p", pairs=())
        with pytest.raises(ValueError):
            DragAndDrop("d", "p", pairs=(("a", "1"), ("a", "2")))

    def test_ordering_problem(self):
        q = OrderingProblem("o", "order", steps=("fork", "work", "join"))
        assert q.grade(["fork", "work", "join"]).correct
        partial = q.grade(["fork", "join", "work"])
        assert not partial.correct and partial.score == pytest.approx(1 / 3)
        wrong_set = q.grade(["fork", "fork", "join"])
        assert wrong_set.score == 0.0

    def test_grade_result_validation(self):
        from repro.runestone.questions import GradeResult

        with pytest.raises(ValueError):
            GradeResult("x", True, "f", score=1.5)


class TestModuleStructure:
    def test_lookup_and_counts(self):
        m = tiny_module()
        assert len(m.all_questions()) == 2
        assert m.find_section("1.2").title == "More"
        with pytest.raises(KeyError):
            m.find_question("missing")
        with pytest.raises(KeyError):
            m.find_section("9.9")

    def test_pacing_arithmetic(self):
        m = tiny_module()
        assert m.total_minutes == 12
        assert m.fits_lab_period()

    def test_prework_excluded_from_session(self):
        m = Module("m", "M", "a", target_minutes=10)
        m.add(Chapter(1, "setup", pre_work=True).add(Section("1.1", "s", minutes=60)))
        m.add(Chapter(2, "lab").add(Section("2.1", "t", minutes=9)))
        assert m.session_minutes == 9
        assert m.prework_minutes == 60
        assert m.fits_lab_period(slack_minutes=0)

    def test_activities_collected(self):
        s = Section("1.1", "x").add(
            HandsOnActivity("run it", "openmp", "spmd", "go")
        )
        m = Module("m", "M", "a").add(Chapter(1, "c").add(s))
        assert len(m.all_activities()) == 1


class TestProgressAndGradebook:
    def test_submit_records_attempts(self):
        lp = LearnerProgress("zed", tiny_module())
        assert not lp.submit("q1", "A").correct
        assert lp.submit("q1", "B").correct
        assert len(lp.attempts_for("q1")) == 2
        assert lp.eventually_correct("q1")
        assert not lp.eventually_correct("q2")

    def test_completion_fraction(self):
        lp = LearnerProgress("zed", tiny_module())
        assert lp.completion_fraction == 0.0
        lp.complete_section("1.1")
        assert lp.completion_fraction == 0.5
        lp.complete_section("1.2", minutes=3.5)
        assert lp.finished()
        assert lp.minutes_spent == pytest.approx(8.5)

    def test_question_score_uses_best_attempt(self):
        lp = LearnerProgress("zed", tiny_module())
        lp.submit("q1", "A")
        lp.submit("q1", "B")
        assert lp.question_score == pytest.approx(0.5)  # q2 unattempted

    def test_unknown_section_rejected(self):
        lp = LearnerProgress("zed", tiny_module())
        with pytest.raises(KeyError):
            lp.complete_section("3.1")

    def test_gradebook_rates_and_hardest(self):
        gb = Gradebook(tiny_module())
        a = gb.enroll("a")
        b = gb.enroll("b")
        with pytest.raises(ValueError):
            gb.enroll("a")
        for lp, first in ((a, "B"), (b, "A")):
            lp.submit("q1", first)
            lp.submit("q2", 4)
            for s in ("1.1", "1.2"):
                lp.complete_section(s)
        assert gb.completion_rate() == 1.0
        hardest = gb.hardest_questions()
        assert hardest[0][0] == "q1" and hardest[0][1] == 0.5
        assert gb.mean_minutes() == pytest.approx(12.0)


class TestRendering:
    def test_text_render_includes_all_blocks(self):
        s = Section("2.3", "Race Conditions").add(
            Text("watch this"),
            Video("races", duration_s=122),
            CodeListing("c", "int x;"),
            Callout("tip", "be careful"),
        )
        out = render_section_text(s)
        assert "2.3 Race Conditions" in out
        assert "(2:02)" in out  # the Fig. 1 video duration format
        assert "[TIP]" in out and "int x;" in out

    def test_module_text_render(self):
        out = render_text(tiny_module())
        assert "Tiny Module" in out and "Check me" in out

    def test_html_render_is_wellformed_enough(self):
        html_out = render_html(tiny_module())
        assert html_out.startswith("<!DOCTYPE html>")
        assert html_out.count("<h3") == 2
        assert 'input type="radio"' in html_out
        assert "&lt;" not in render_text(tiny_module())  # text stays unescaped

    def test_html_escapes_content(self):
        m = Module("m", "<script>", "a").add(
            Chapter(1, "c").add(Section("1.1", "s").add(Text("<b>bold</b>")))
        )
        out = render_html(m)
        assert "<script>" not in out
        assert "&lt;b&gt;" in out
