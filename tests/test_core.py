"""Core package: curriculum, session simulation, workshop, delivery."""

import pytest

from repro.core import (
    GOALS,
    INJECTION_POINTS,
    STRATEGIES,
    SessionConfig,
    available_platforms,
    distributed_memory_module,
    plan_scaling_run,
    run_exemplar_study,
    run_lab_session,
    shared_memory_module,
    simulate_workshop,
)
from repro.patternlets import get_patternlet
from repro.runestone import build_raspberry_pi_module


class TestCurriculum:
    def test_three_goals_three_strategies(self):
        assert len(GOALS) == 3 and len(STRATEGIES) == 3

    def test_every_strategy_achieves_a_goal(self):
        goal_numbers = {g.number for g in GOALS}
        assert {s.achieves_goal for s in STRATEGIES} == goal_numbers

    def test_modules_cover_both_paradigms(self):
        assert shared_memory_module().paradigm == "openmp"
        assert distributed_memory_module().paradigm == "mpi"

    def test_module_requirements(self):
        shared = shared_memory_module().requirements()
        assert any("kit" in r for r in shared)
        dist = distributed_memory_module().requirements()
        assert any("Google account" in r for r in dist)
        assert any("Chameleon" in r for r in dist)

    def test_module_platforms_resolve(self):
        for module in (shared_memory_module(), distributed_memory_module()):
            assert module.platforms()

    def test_distributed_module_includes_unicore_colab(self):
        """The paper's point: Colab teaches concepts despite one core."""
        platforms = distributed_memory_module().platforms()
        assert any(p.cores == 1 for p in platforms)
        assert any(p.cores >= 48 for p in platforms)

    def test_injection_points_reference_real_patternlets(self):
        for injection in INJECTION_POINTS:
            paradigm = (
                "openmp" if injection.module_slug == "shared-memory" else "mpi"
            )
            for name in injection.patternlets:
                get_patternlet(paradigm, name)  # raises if missing


class TestLabSession:
    @pytest.fixture(scope="class")
    def outcome(self):
        module = build_raspberry_pi_module()
        learners = [f"s{i}" for i in range(10)]
        return run_lab_session(module, learners, SessionConfig(seed=7))

    def test_everyone_finishes(self, outcome):
        assert outcome.completion_rate == 1.0

    def test_videos_absorb_setup_issues(self, outcome):
        """All issue kinds are video-covered, so none persist — the paper's
        'no technical difficulties' result."""
        assert outcome.learners_with_issues == 0
        assert outcome.resolved_by_videos > 0

    def test_deterministic_for_seed(self):
        module = build_raspberry_pi_module()
        a = run_lab_session(module, ["x", "y"], SessionConfig(seed=3))
        b = run_lab_session(module, ["x", "y"], SessionConfig(seed=3))
        assert a.mean_minutes == b.mean_minutes
        assert a.resolved_by_videos == b.resolved_by_videos

    def test_mean_minutes_near_design_pacing(self, outcome):
        module = build_raspberry_pi_module()
        design = module.total_minutes
        assert design * 0.7 <= outcome.mean_minutes <= design * 1.3

    def test_questions_eventually_answered(self, outcome):
        for progress in outcome.gradebook.records.values():
            assert progress.question_score == 1.0


class TestWorkshop:
    @pytest.fixture(scope="class")
    def report(self):
        return simulate_workshop(seed=2020, eager_beavers=3)

    def test_cohort_size(self, report):
        assert report.participants == 22

    def test_vnc_incident_reproduced(self, report):
        assert len(report.vnc_incident.locked_out_participants) == 3
        assert report.vnc_incident.all_finished_via_ssh

    def test_assessment_numbers_attached(self, report):
        assert report.table2.rows[0][1] == 4.55
        assert report.figure3.test.significant()
        assert report.figure4.test.p_value < 1e-6

    def test_headline_findings_include_paper_claims(self, report):
        findings = " ".join(report.headline_findings())
        assert "technical difficulties" in findings
        assert "highest rated" in findings
        assert "ssh" in findings
        assert "significantly" in findings

    def test_no_eager_beavers_no_incident(self):
        report = simulate_workshop(eager_beavers=0)
        assert report.vnc_incident.locked_out_participants == ()
        assert not report.vnc_incident.all_finished_via_ssh


class TestDelivery:
    def test_platform_catalog(self):
        platforms = available_platforms()
        assert "colab" in platforms and "stolaf-vm" in platforms

    def test_plan_scaling_run_respects_cores(self):
        assert plan_scaling_run("colab") == [1, 2]
        assert max(plan_scaling_run("stolaf-vm")) == 64
        assert plan_scaling_run("raspberry-pi-4") == [1, 2, 4, 8]

    def test_plan_with_explicit_ceiling(self):
        assert plan_scaling_run("stolaf-vm", max_procs=4) == [1, 2, 4]

    @pytest.mark.parametrize("exemplar", ["integration", "forestfire", "drugdesign"])
    def test_colab_never_speeds_up(self, exemplar):
        run = run_exemplar_study(exemplar, "colab")
        assert not run.study.shows_speedup()
        assert "no speedup" in run.learner_takeaway()

    @pytest.mark.parametrize("exemplar", ["integration", "forestfire", "drugdesign"])
    @pytest.mark.parametrize("platform", ["stolaf-vm", "chameleon-cluster"])
    def test_big_platforms_speed_up_well(self, exemplar, platform):
        run = run_exemplar_study(exemplar, platform)
        assert run.study.max_speedup >= 8.0
        assert "speedup" in run.learner_takeaway()

    def test_pi_speedup_bounded_by_four_cores(self):
        run = run_exemplar_study("integration", "raspberry-pi-4")
        assert 2.0 <= run.study.max_speedup <= 4.0

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(KeyError, match="choose from"):
            run_exemplar_study("quantum", "colab")
        with pytest.raises(KeyError, match="choose from"):
            run_exemplar_study("integration", "cray")
