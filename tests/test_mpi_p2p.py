"""Point-to-point messaging semantics: blocking, nonblocking, matching."""

import numpy as np
import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPI,
    PROC_NULL,
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    RankFailedError,
    Status,
    TruncationError,
)
from tests.conftest import spmd


class TestBlockingSendRecv:
    def test_object_roundtrip(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert spmd(body, 2)[1] == {"a": 7, "b": 3.14}

    def test_value_semantics_no_aliasing(self):
        """The receiver's object must be a private copy of the sender's."""
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                payload = [1, 2, 3]
                comm.send(payload, dest=1)
                payload.append(99)  # mutation after send must not leak
                return payload
            got = comm.recv(source=0)
            got.append(-1)  # and receiver mutation must not leak back
            return got

        outs = spmd(body, 2)
        assert outs[0] == [1, 2, 3, 99]
        assert outs[1] == [1, 2, 3, -1]

    def test_fifo_per_sender(self):
        """Messages between one pair with one tag never overtake."""
        def body(comm):
            if comm.Get_rank() == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(20)]

        assert spmd(body, 2)[1] == list(range(20))

    def test_any_source_any_tag(self):
        def body(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            if rank != 0:
                comm.send(rank * 10, dest=0, tag=rank)
                return None
            status = Status()
            got = {}
            for _ in range(size - 1):
                value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
                got[status.Get_source()] = (value, status.Get_tag())
            return got

        got = spmd(body, 4)[0]
        assert got == {1: (10, 1), 2: (20, 2), 3: (30, 3)}

    def test_tag_selectivity_out_of_arrival_order(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (second, first)

        assert spmd(body, 2)[1] == ("second", "first")

    def test_proc_null_send_and_recv_are_noops(self):
        def body(comm):
            comm.send("into the void", dest=PROC_NULL)
            status = Status()
            got = comm.recv(source=PROC_NULL, status=status)
            return (got, status.Get_source())

        for out in spmd(body, 2):
            assert out == (None, PROC_NULL)

    def test_send_to_invalid_rank_raises(self):
        def body(comm):
            comm.send(1, dest=99)

        with pytest.raises(RankFailedError) as exc_info:
            spmd(body, 2)
        assert all(
            isinstance(e, InvalidRankError) for e in exc_info.value.failures.values()
        )

    def test_negative_tag_raises(self):
        def body(comm):
            comm.send(1, dest=0, tag=-5)

        with pytest.raises(RankFailedError):
            spmd(body, 1)

    def test_tag_above_ub_raises(self):
        def body(comm):
            comm.send(1, dest=0, tag=MPI.TAG_UB + 1)

        with pytest.raises(RankFailedError):
            spmd(body, 1)


class TestNonblocking:
    def test_isend_irecv_roundtrip(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                req = comm.isend({"x": 1}, dest=1, tag=9)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=9)
            return req.wait()

        assert spmd(body, 2)[1] == {"x": 1}

    def test_irecv_test_polls_until_arrival(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.barrier()
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            done, _ = req.test()
            before = done  # nothing sent yet (sender is parked at barrier)
            comm.barrier()
            while True:
                done, value = req.test()
                if done:
                    return (before, value)

        assert spmd(body, 2)[1] == (False, "late")

    def test_waitall_returns_payloads_in_order(self):
        from repro.mpi import Request

        def body(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            if rank == 0:
                reqs = [comm.irecv(source=s, tag=3) for s in range(1, size)]
                return Request.Waitall(reqs)
            comm.send(rank * 100, dest=0, tag=3)
            return None

        assert spmd(body, 4)[0] == [100, 200, 300]

    def test_issend_completes_only_when_matched(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                req = comm.issend("sync", dest=1)
                done, _ = req.test()
                unmatched = done
                comm.barrier()  # let rank 1 post its recv
                req.wait()
                return unmatched
            comm.barrier()
            return comm.recv(source=0)

        outs = spmd(body, 2)
        assert outs[0] is False
        assert outs[1] == "sync"


class TestSendrecvProbe:
    def test_sendrecv_exchange_is_deadlock_free(self):
        def body(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            partner = (rank + 1) % size
            return comm.sendrecv(
                f"from {rank}", dest=partner, source=(rank - 1) % size
            )

        outs = spmd(body, 4)
        assert outs == [f"from {(r - 1) % 4}" for r in range(4)]

    def test_iprobe_reports_pending_message(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.send("ping", dest=1, tag=6)
                comm.barrier()
                return None
            comm.barrier()  # guarantee the message arrived first
            status = Status()
            seen = comm.iprobe(source=0, tag=6, status=status)
            nothing = comm.iprobe(source=0, tag=7)
            value = comm.recv(source=0, tag=6)
            return (seen, status.Get_source(), nothing, value)

        assert spmd(body, 2)[1] == (True, 0, False, "ping")

    def test_probe_blocks_until_message(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.send(42, dest=1, tag=2)
                return None
            comm.probe(source=0, tag=2)
            return comm.recv(source=0, tag=2)

        assert spmd(body, 2)[1] == 42


class TestBufferP2P:
    def test_typed_roundtrip_explicit_datatype(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.Send([np.arange(100, dtype="i"), MPI.INT], dest=1, tag=77)
                return None
            buf = np.empty(100, dtype="i")
            comm.Recv([buf, MPI.INT], source=0, tag=77)
            return buf.sum()

        assert spmd(body, 2)[1] == sum(range(100))

    def test_typed_roundtrip_automatic_discovery(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.Send(np.arange(50, dtype=np.float64), dest=1, tag=13)
                return None
            buf = np.empty(50, dtype=np.float64)
            comm.Recv(buf, source=0, tag=13)
            return float(buf[-1])

        assert spmd(body, 2)[1] == 49.0

    def test_truncation_raises(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.Send(np.arange(10, dtype="i"), dest=1)
            else:
                buf = np.empty(5, dtype="i")
                comm.Recv(buf, source=0)

        with pytest.raises(RankFailedError) as exc_info:
            spmd(body, 2)
        assert any(
            isinstance(e, TruncationError) for e in exc_info.value.failures.values()
        )

    def test_status_count_for_typed_message(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.Send(np.zeros(16, dtype="d"), dest=1)
                return None
            buf = np.empty(16, dtype="d")
            status = Status()
            comm.Recv(buf, source=0, status=status)
            return status.Get_count(MPI.DOUBLE)

        assert spmd(body, 2)[1] == 16

    def test_irecv_buffer_variant(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.Isend(np.full(8, 7, dtype="i"), dest=1).wait()
                return None
            buf = np.zeros(8, dtype="i")
            comm.Irecv(buf, source=0).wait()
            return int(buf.sum())

        assert spmd(body, 2)[1] == 56

    def test_mixing_object_send_with_buffer_recv_raises(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.send([1, 2, 3], dest=1)
            else:
                buf = np.empty(3, dtype="i")
                comm.Recv(buf, source=0)

        with pytest.raises(RankFailedError):
            spmd(body, 2)


class TestDeadlockDetection:
    def test_recv_first_exchange_deadlocks(self):
        def body(comm):
            partner = comm.Get_rank() ^ 1
            comm.recv(source=partner)
            comm.send("never", dest=partner)

        with pytest.raises(DeadlockError):
            spmd(body, 2, deadlock_timeout=5.0)

    def test_ssend_without_receiver_deadlocks(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.ssend("nobody listens", dest=1)
            else:
                comm.recv(source=0, tag=999)  # wrong tag: never matches

        with pytest.raises(DeadlockError):
            spmd(body, 2, deadlock_timeout=5.0)

    def test_matched_ssend_completes(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.ssend("handshake", dest=1)
                return "sent"
            return comm.recv(source=0)

        assert spmd(body, 2) == ["sent", "handshake"]
