"""Schedule controller: determinism, replay tokens, witness detection."""

import pytest

from repro.openmp import barrier, critical, parallel_region
from repro.openmp.sync import AtomicCounter
from repro.testkit import (
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    decode_token,
    encode_token,
    lost_update_witness,
    run_scheduled,
)


def racy_workload(iterations=2, num_threads=2):
    counter = AtomicCounter()

    def body():
        for _ in range(iterations):
            counter.unsafe_read_modify_write(1)

    parallel_region(body, num_threads=num_threads)
    return counter.value


class TestTokens:
    def test_round_trip(self):
        assert decode_token("o1.2.0101") == (2, [0, 1, 0, 1])
        assert decode_token("o1.3.-") == (3, [])

    def test_encode_empty(self):
        assert encode_token(2, []) == "o1.2.-"

    @pytest.mark.parametrize(
        "bad", ["", "o1.2", "o2.2.01", "x1.2.01", "o1.nope.01", "o1.2.!!"]
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            decode_token(bad)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = run_scheduled(racy_workload, RandomScheduler(11))
        b = run_scheduled(racy_workload, RandomScheduler(11))
        assert a.token == b.token
        assert a.result == b.result

    def test_replay_reproduces_token_and_result(self):
        for seed in range(8):
            original = run_scheduled(racy_workload, RandomScheduler(seed))
            assert not original.stalled
            _, choices = decode_token(original.token)
            replay = run_scheduled(racy_workload, ReplayScheduler(choices))
            assert replay.faithful, f"seed {seed}: replay had to improvise"
            assert replay.token == original.token
            assert replay.result == original.result

    def test_round_robin_interleaves_and_loses(self):
        run = run_scheduled(racy_workload, RoundRobinScheduler())
        assert run.result < 4  # strict alternation always overlaps the RMWs
        assert lost_update_witness(run.decisions) is not None

    def test_schedules_differ_across_seeds(self):
        tokens = {
            run_scheduled(racy_workload, RandomScheduler(seed)).token
            for seed in range(12)
        }
        assert len(tokens) > 1


class TestWitness:
    def test_witness_iff_lost_update(self):
        for seed in range(12):
            run = run_scheduled(racy_workload, RandomScheduler(seed))
            witness = lost_update_witness(run.decisions)
            if run.result == 4:
                assert witness is None, f"seed {seed}: spurious witness"
            else:
                assert witness is not None, f"seed {seed}: missed lost update"

    def test_no_witness_with_critical(self):
        def safe():
            counter = AtomicCounter()

            def body():
                for _ in range(2):
                    with critical("c"):
                        counter.unsafe_read_modify_write(1)

            parallel_region(body, num_threads=2)
            return counter.value

        for seed in range(8):
            run = run_scheduled(safe, RandomScheduler(seed))
            assert run.result == 4
            assert lost_update_witness(run.decisions) is None


class TestStructuredWorkloads:
    def test_barrier_under_schedules(self):
        def workload():
            log = []

            def body():
                log.append("a")
                barrier()
                log.append("b")

            parallel_region(body, num_threads=3)
            return "".join(log)

        for seed in range(6):
            run = run_scheduled(workload, RandomScheduler(seed))
            assert not run.stalled
            assert run.result == "aaabbb"

    def test_exception_in_controlled_thread_propagates(self):
        def workload():
            def body():
                raise RuntimeError("boom")

            parallel_region(body, num_threads=2)

        run = run_scheduled(workload, RandomScheduler(0))
        assert run.error is not None
        assert "boom" in str(run.error)
        assert not run.stalled

    def test_sequential_code_between_regions(self):
        def workload():
            counter = AtomicCounter()

            def body():
                counter.add(1)

            parallel_region(body, num_threads=2)
            parallel_region(body, num_threads=2)
            return counter.value

        run = run_scheduled(workload, RandomScheduler(3))
        assert run.error is None
        assert run.result == 4

    def test_decisions_record_runnable_sets(self):
        run = run_scheduled(racy_workload, RandomScheduler(5))
        assert run.decisions
        for decision in run.decisions:
            assert decision.chosen in decision.runnable
            assert set(decision.pending) >= set(decision.runnable)
