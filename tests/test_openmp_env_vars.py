"""OMP_* environment-variable parsing (the shell-driven lab workflow)."""

import pytest

from repro.openmp import get_config
from repro.openmp.env import _reset_for_testing


@pytest.fixture(autouse=True)
def fresh_config(monkeypatch):
    """Each test re-parses the environment into a fresh config."""
    _reset_for_testing()
    yield
    _reset_for_testing()


class TestOmpNumThreads:
    def test_env_sets_default_team_size(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "6")
        assert get_config().num_threads == 6

    def test_nested_list_takes_first_level(self, monkeypatch):
        # OMP_NUM_THREADS accepts a nesting list: "4,2" -> outer team of 4
        monkeypatch.setenv("OMP_NUM_THREADS", "4,2")
        assert get_config().num_threads == 4

    def test_garbage_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("OMP_NUM_THREADS", "lots")
        assert get_config().num_threads == (os.cpu_count() or 1)

    def test_zero_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "0")
        assert get_config().num_threads == 1

    def test_unset_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv("OMP_NUM_THREADS", raising=False)
        assert get_config().num_threads == (os.cpu_count() or 1)


class TestOmpSchedule:
    def test_schedule_kind(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "dynamic")
        cfg = get_config()
        assert cfg.schedule == "dynamic"
        assert cfg.chunk is None

    def test_schedule_with_chunk(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "guided,4")
        cfg = get_config()
        assert cfg.schedule == "guided"
        assert cfg.chunk == 4

    def test_case_and_whitespace_tolerant(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", " DYNAMIC , 8 ")
        cfg = get_config()
        assert cfg.schedule == "dynamic"
        assert cfg.chunk == 8

    def test_bad_chunk_ignored(self, monkeypatch):
        monkeypatch.setenv("OMP_SCHEDULE", "static,many")
        cfg = get_config()
        assert cfg.schedule == "static"
        assert cfg.chunk is None

    def test_runtime_schedule_resolves_from_env(self, monkeypatch):
        """schedule='runtime' in a loop defers to OMP_SCHEDULE."""
        monkeypatch.setenv("OMP_SCHEDULE", "dynamic,2")
        from repro.openmp import parallel_for

        total = parallel_for(
            100, lambda i: i, num_threads=3, schedule="runtime", reduction="+"
        )
        assert total == sum(range(100))
