"""Communicator management: Split, Dup, Create, groups, Cartesian topology."""

import pytest

from repro.mpi import SUM, Group, PROC_NULL, UNDEFINED
from repro.mpi.cartesian import compute_dims
from tests.conftest import spmd


class TestSplit:
    def test_split_by_parity(self):
        def body(comm):
            rank = comm.Get_rank()
            sub = comm.Split(color=rank % 2, key=rank)
            return (sub.Get_rank(), sub.Get_size(), sub.allreduce(rank, op=SUM))

        outs = spmd(body, 6)
        evens = sum(r for r in range(6) if r % 2 == 0)
        odds = sum(r for r in range(6) if r % 2 == 1)
        for rank, (sub_rank, sub_size, total) in enumerate(outs):
            assert sub_size == 3
            assert sub_rank == rank // 2
            assert total == (evens if rank % 2 == 0 else odds)

    def test_split_key_reverses_order(self):
        def body(comm):
            rank = comm.Get_rank()
            sub = comm.Split(color=0, key=-rank)
            return sub.Get_rank()

        outs = spmd(body, 4)
        assert outs == [3, 2, 1, 0]

    def test_split_undefined_yields_none(self):
        def body(comm):
            rank = comm.Get_rank()
            color = UNDEFINED if rank == 0 else 1
            sub = comm.Split(color=color, key=rank)
            if rank == 0:
                return sub
            return sub.Get_size()

        outs = spmd(body, 4)
        assert outs[0] is None
        assert outs[1:] == [3, 3, 3]

    def test_split_twice_gives_independent_comms(self):
        def body(comm):
            a = comm.Split(color=0, key=comm.Get_rank())
            b = comm.Split(color=comm.Get_rank() % 2, key=comm.Get_rank())
            return (a.Get_size(), b.Get_size(), a.allreduce(1), b.allreduce(1))

        outs = spmd(body, 4)
        assert all(o == (4, 2, 4, 2) for o in outs)

    def test_messages_in_subcomm_do_not_leak_to_parent(self):
        def body(comm):
            rank = comm.Get_rank()
            sub = comm.Split(color=0, key=rank)
            if rank == 0:
                sub.send("sub-message", dest=1, tag=3)
            comm.barrier()
            if rank == 1:
                # the parent communicator must see nothing pending
                leaked = comm.iprobe(source=0, tag=3)
                value = sub.recv(source=0, tag=3)
                return (leaked, value)
            return None

        assert spmd(body, 2)[1] == (False, "sub-message")

    def test_dup_has_same_shape(self):
        def body(comm):
            dup = comm.Dup()
            return (dup.Get_rank(), dup.Get_size(), dup.allreduce(1))

        outs = spmd(body, 3)
        assert outs == [(0, 3, 3), (1, 3, 3), (2, 3, 3)]

    def test_create_from_subgroup(self):
        def body(comm):
            group = comm.Get_group().Incl([0, 2])
            sub = comm.Create(group)
            if sub is None:
                return None
            return (sub.Get_rank(), sub.Get_size())

        outs = spmd(body, 4)
        assert outs == [(0, 2), None, (1, 2), None]


class TestGroup:
    def test_incl_excl(self):
        g = Group(range(6))
        assert g.Incl([1, 3, 5]).ranks == (1, 3, 5)
        assert g.Excl([0, 1]).ranks == (2, 3, 4, 5)

    def test_get_rank_and_undefined(self):
        g = Group([10, 20, 30])
        assert g.Get_rank(20) == 1
        assert g.Get_rank(99) == UNDEFINED

    def test_translate_ranks(self):
        a = Group([5, 6, 7, 8])
        b = Group([8, 6])
        assert Group.Translate_ranks(a, [0, 1, 3], b) == [UNDEFINED, 1, 0]

    def test_set_operations(self):
        a, b = Group([1, 2, 3]), Group([3, 4])
        assert Group.Union(a, b).ranks == (1, 2, 3, 4)
        assert Group.Intersection(a, b).ranks == (3,)
        assert Group.Difference(a, b).ranks == (1, 2)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Group([1, 1, 2])

    def test_excl_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Group([1, 2]).Excl([5])


class TestComputeDims:
    @pytest.mark.parametrize(
        "nnodes,ndims,expected",
        [
            (12, 2, [4, 3]),
            (8, 3, [2, 2, 2]),
            (7, 2, [7, 1]),
            (16, 2, [4, 4]),
            (1, 3, [1, 1, 1]),
            (30, 2, [6, 5]),
        ],
    )
    def test_balanced_factorization(self, nnodes, ndims, expected):
        dims = compute_dims(nnodes, ndims)
        assert dims == expected
        product = 1
        for d in dims:
            product *= d
        assert product == nnodes

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            compute_dims(0, 2)
        with pytest.raises(ValueError):
            compute_dims(4, 0)


class TestCartesian:
    def test_coords_roundtrip_3x2(self):
        def body(comm):
            cart = comm.Create_cart((3, 2), periods=(False, False))
            coords = cart.Get_coords(cart.Get_rank())
            assert cart.Get_cart_rank(coords) == cart.Get_rank()
            return coords

        outs = spmd(body, 6)
        assert outs == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_shift_nonperiodic_boundaries_are_proc_null(self):
        def body(comm):
            cart = comm.Create_cart((4,), periods=(False,))
            return cart.Shift(0, 1)

        outs = spmd(body, 4)
        assert outs[0] == (PROC_NULL, 1)
        assert outs[1] == (0, 2)
        assert outs[3] == (2, PROC_NULL)

    def test_shift_periodic_wraps(self):
        def body(comm):
            cart = comm.Create_cart((4,), periods=(True,))
            return cart.Shift(0, 1)

        outs = spmd(body, 4)
        assert outs[0] == (3, 1)
        assert outs[3] == (2, 0)

    def test_excess_ranks_get_none(self):
        def body(comm):
            cart = comm.Create_cart((2,), periods=(False,))
            return None if cart is None else cart.Get_size()

        assert spmd(body, 4) == [2, 2, None, None]

    def test_grid_too_large_raises(self):
        from repro.mpi import RankFailedError

        def body(comm):
            comm.Create_cart((4, 4))

        with pytest.raises(RankFailedError):
            spmd(body, 4)

    def test_halo_exchange_along_ring(self):
        """The classic neighbor exchange the forest-fire row decomposition uses."""

        def body(comm):
            cart = comm.Create_cart((comm.Get_size(),), periods=(True,))
            left, right = cart.Shift(0, 1)
            return cart.sendrecv(cart.Get_rank(), dest=right, source=left)

        outs = spmd(body, 5)
        assert outs == [(r - 1) % 5 for r in range(5)]

    def test_get_topo(self):
        def body(comm):
            cart = comm.Create_cart((2, 2), periods=(True, False))
            return cart.Get_topo()

        dims, periods, coords = spmd(body, 4)[3]
        assert dims == (2, 2)
        assert periods == (True, False)
        assert coords == (1, 1)
