"""Platform models, cost model, speedup analysis, access gateway."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms import (
    CHAMELEON_NODE,
    COLAB_VM,
    PLATFORMS,
    RASPBERRY_PI_4,
    ST_OLAF_VM,
    AccessGateway,
    Cluster,
    CostModel,
    LoginOutcome,
    Machine,
    Protocol,
    ScalingStudy,
    Workload,
    amdahl_speedup,
    chameleon_cluster,
    gustafson_speedup,
    karp_flatt_fraction,
    pi_beowulf_cluster,
)

FAST = settings(max_examples=40, deadline=None)


class TestMachines:
    def test_paper_platform_core_counts(self):
        assert COLAB_VM.cores == 1  # "Colab VMs have just one core"
        assert ST_OLAF_VM.cores == 64  # "a 64-core VM"
        assert RASPBERRY_PI_4.cores == 4

    def test_serial_rate_positive(self):
        for platform in PLATFORMS.values():
            assert platform.serial_rate > 0

    def test_with_cores(self):
        assert ST_OLAF_VM.with_cores(32).cores == 32
        assert ST_OLAF_VM.cores == 64  # original untouched

    def test_invalid_machine(self):
        with pytest.raises(ValueError):
            Machine("bad", cores=0, clock_ghz=1.0)
        with pytest.raises(ValueError):
            Machine("bad", cores=4, clock_ghz=0.0)

    def test_cluster_capacity_and_placement(self):
        cluster = chameleon_cluster(4)
        assert cluster.cores == 4 * CHAMELEON_NODE.cores
        assert cluster.nodes_for(1) == 1
        assert cluster.nodes_for(CHAMELEON_NODE.cores + 1) == 2
        assert cluster.nodes_for(10_000) == 4

    def test_registry_contains_paper_platforms(self):
        for key in ("colab", "stolaf-vm", "chameleon-cluster", "raspberry-pi-4"):
            assert key in PLATFORMS


class TestWorkloadValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Workload("w", total_ops=0)
        with pytest.raises(ValueError):
            Workload("w", total_ops=1, serial_fraction=1.5)
        with pytest.raises(ValueError):
            Workload("w", total_ops=1, imbalance=-0.1)


class TestCostModel:
    @pytest.fixture
    def workload(self):
        return Workload(
            "bench",
            total_ops=1e9,
            serial_fraction=0.02,
            messages=lambda p: 2.0 * (p - 1),
            message_bytes=lambda p: 1e4 * (p - 1),
        )

    def test_one_process_time_is_serial_time(self, workload):
        t = CostModel(ST_OLAF_VM).time(workload, 1)
        assert t.comm_s == 0.0 and t.spawn_s == 0.0
        assert t.total_s == pytest.approx(1e9 / ST_OLAF_VM.serial_rate)

    def test_unicore_vm_never_speeds_up(self, workload):
        model = CostModel(COLAB_VM)
        t1 = model.time(workload, 1).total_s
        for p in (2, 4, 8):
            assert model.time(workload, p).total_s >= t1

    def test_multicore_speeds_up_until_cores(self, workload):
        model = CostModel(ST_OLAF_VM)
        times = [model.time(workload, p).total_s for p in (1, 2, 4, 8, 16)]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_oversubscription_no_longer_helps_compute(self, workload):
        model = CostModel(RASPBERRY_PI_4)  # 4 cores
        t4 = model.time(workload, 4).total_s
        t16 = model.time(workload, 16).total_s
        assert t16 > t4  # only overhead grows past the core count

    def test_imbalance_slows_the_busiest_rank(self):
        base = Workload("w", total_ops=1e9, imbalance=0.0)
        skew = Workload("w", total_ops=1e9, imbalance=0.5)
        model = CostModel(ST_OLAF_VM)
        assert model.time(skew, 8).total_s > model.time(base, 8).total_s
        # no decomposition, no imbalance penalty at p=1
        assert model.time(skew, 1).total_s == model.time(base, 1).total_s

    def test_cluster_pays_network_once_it_spills(self, workload):
        cluster = pi_beowulf_cluster(4)
        model = CostModel(cluster)
        within = model.time(workload, cluster.node.cores)
        across = model.time(workload, cluster.node.cores + 1)
        assert across.comm_s > within.comm_s

    def test_sweep_matches_pointwise(self, workload):
        model = CostModel(ST_OLAF_VM)
        sweep = model.sweep(workload, [1, 2, 4])
        assert [t.total_s for t in sweep] == [
            model.time(workload, p).total_s for p in (1, 2, 4)
        ]

    def test_invalid_procs(self, workload):
        with pytest.raises(ValueError):
            CostModel(ST_OLAF_VM).time(workload, 0)

    @FAST
    @given(
        procs=st.integers(1, 256),
        serial=st.floats(0.0, 1.0),
        ops=st.floats(1e3, 1e12),
    )
    def test_property_breakdown_components_nonnegative(self, procs, serial, ops):
        w = Workload("w", total_ops=ops, serial_fraction=serial)
        t = CostModel(ST_OLAF_VM).time(w, procs)
        assert t.serial_s >= 0 and t.parallel_s >= 0
        assert t.comm_s >= 0 and t.spawn_s >= 0
        assert t.total_s > 0


class TestSpeedupAnalysis:
    def test_amdahl_limits(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)
        assert amdahl_speedup(1.0, 1000) == pytest.approx(1.0)
        assert amdahl_speedup(0.05, 10**9) == pytest.approx(20.0, rel=1e-3)

    def test_gustafson_exceeds_amdahl_for_scaled_problems(self):
        assert gustafson_speedup(0.1, 64) > amdahl_speedup(0.1, 64)

    def test_karp_flatt_recovers_serial_fraction(self):
        f = 0.08
        s = amdahl_speedup(f, 16)
        assert karp_flatt_fraction(s, 16) == pytest.approx(f, rel=1e-9)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            amdahl_speedup(-0.1, 4)
        with pytest.raises(ValueError):
            gustafson_speedup(0.5, 0)
        with pytest.raises(ValueError):
            karp_flatt_fraction(2.0, 1)

    def test_scaling_study_columns(self):
        study = ScalingStudy("m", "w", [1, 2, 4], [8.0, 4.0, 2.0])
        assert study.speedups == [1.0, 2.0, 4.0]
        assert study.efficiencies == [1.0, 1.0, 1.0]
        assert study.max_speedup == 4.0
        assert study.shows_speedup()
        assert study.crossover_procs() is None

    def test_crossover_detection(self):
        study = ScalingStudy("m", "w", [1, 2, 4, 8], [8.0, 4.0, 3.0, 5.0])
        assert study.crossover_procs() == 8

    def test_study_requires_baseline(self):
        with pytest.raises(ValueError, match="baseline"):
            ScalingStudy("m", "w", [2, 4], [4.0, 2.0])

    def test_study_validation(self):
        with pytest.raises(ValueError):
            ScalingStudy("m", "w", [1, 2], [1.0])
        with pytest.raises(ValueError):
            ScalingStudy("m", "w", [1], [0.0])

    def test_format_table(self):
        text = ScalingStudy("St. Olaf", "fire", [1, 2], [4.0, 2.1]).format_table()
        assert "speedup" in text and "St. Olaf" in text


class TestAccessGateway:
    def test_three_strikes_bans_vnc_only(self):
        g = AccessGateway(max_failures=3, ban_duration_s=600)
        for t in range(3):
            assert (
                g.attempt("eager", Protocol.VNC, False, float(t))
                is LoginOutcome.BAD_CREDENTIALS
            )
        assert g.is_blocked("eager", Protocol.VNC, 10.0)
        assert not g.is_blocked("eager", Protocol.SSH, 10.0)
        assert g.fallback_available("eager", 10.0)

    def test_correct_login_during_ban_is_refused(self):
        """The paper's incident: the now-correct VNC login still bounces."""
        g = AccessGateway()
        for t in range(3):
            g.attempt("eager", Protocol.VNC, False, float(t))
        assert g.attempt("eager", Protocol.VNC, True, 5.0) is LoginOutcome.BLOCKED

    def test_ban_expires(self):
        g = AccessGateway(ban_duration_s=100)
        for t in range(3):
            g.attempt("u", Protocol.VNC, False, float(t))
        assert g.attempt("u", Protocol.VNC, True, 200.0) is LoginOutcome.SUCCESS

    def test_success_resets_failure_count(self):
        g = AccessGateway(max_failures=3)
        g.attempt("u", Protocol.VNC, False, 0.0)
        g.attempt("u", Protocol.VNC, False, 1.0)
        g.attempt("u", Protocol.VNC, True, 2.0)
        g.attempt("u", Protocol.VNC, False, 3.0)
        g.attempt("u", Protocol.VNC, False, 4.0)
        assert not g.is_blocked("u", Protocol.VNC, 5.0)

    def test_ssh_failures_never_ban_by_default(self):
        g = AccessGateway()
        for t in range(10):
            g.attempt("u", Protocol.SSH, False, float(t))
        assert not g.is_blocked("u", Protocol.SSH, 20.0)

    def test_audit_log_records_everything(self):
        g = AccessGateway()
        g.attempt("a", Protocol.SSH, True, 0.0)
        g.attempt("b", Protocol.VNC, False, 1.0)
        assert len(g.audit_log) == 2
        assert g.audit_log[0].outcome is LoginOutcome.SUCCESS

    def test_blocked_users_listing(self):
        g = AccessGateway(max_failures=1)
        g.attempt("x", Protocol.VNC, False, 0.0)
        assert g.blocked_users(1.0) == [("x", Protocol.VNC)]

    def test_users_are_independent(self):
        g = AccessGateway(max_failures=1)
        g.attempt("x", Protocol.VNC, False, 0.0)
        assert g.attempt("y", Protocol.VNC, True, 1.0) is LoginOutcome.SUCCESS

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AccessGateway(max_failures=0)
        with pytest.raises(ValueError):
            AccessGateway(ban_duration_s=0)
