"""``repro explore``: explorer verdicts, CLI exit codes, golden replays."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.testkit import explore_target, replay_faults, replay_schedule

GOLDENS = Path(__file__).parent / "goldens"


class TestExplorer:
    def test_race_explorer_finds_and_cross_validates(self):
        result = explore_target("race", "openmp", seed=7, max_schedules=24)
        assert result.flagged, "explorer missed the data race"
        assert result.analyzer_errors > 0
        assert result.agreement, "explorer and race detector disagree"
        assert all(o.detector_errors for o in result.flagged)
        assert result.minimized and result.minimized.startswith("o1.2.")

    def test_explorer_is_deterministic(self):
        a = explore_target("race", "openmp", seed=7, max_schedules=12)
        b = explore_target("race", "openmp", seed=7, max_schedules=12)
        assert [o.token for o in a.outcomes] == [o.token for o in b.outcomes]
        assert a.minimized == b.minimized

    @pytest.mark.parametrize("name", ["critical", "atomic", "reduction"])
    def test_clean_patternlets_agree_with_analyzer(self, name):
        result = explore_target(name, "openmp", seed=7, max_schedules=12)
        assert not result.flagged, f"{name} wrongly flagged"
        assert result.analyzer_errors == 0
        assert result.agreement

    def test_mpi_deadlock_agrees_with_checker(self):
        result = explore_target("deadlock", "mpi", seed=7)
        assert result.flagged
        assert result.outcomes[0].verdict == "deadlock"
        assert result.analyzer_errors > 0
        assert result.agreement

    def test_fault_plan_minimizes_to_crash_only(self):
        result = explore_target(
            "broadcast", "mpi", seed=7,
            faults="drop:src=0,dst=1,nth=1;crash:rank=1,at=1",
        )
        assert result.flagged
        assert result.outcomes[0].verdict.startswith("rank-failed")
        assert result.minimized == "f1.crash:rank=1,at=1"

    def test_forced_race_fails_under_every_flagged_schedule(self):
        """Regression for race --forced: explored racy schedules must lose."""
        from repro.patternlets import get_patternlet

        race = get_patternlet("openmp", "race")
        result = explore_target("race", "openmp", seed=7, max_schedules=24)
        assert result.flagged
        for outcome in result.flagged:
            values = race.run(
                num_threads=2, iterations=2, schedule=outcome.token
            ).values
            assert values["lost"] > 0, (
                f"forced replay of {outcome.token} did not lose an update"
            )
            assert values["diagnostics"], (
                f"no race diagnostic under {outcome.token}"
            )

    def test_unknown_target_raises_keyerror(self):
        with pytest.raises(KeyError):
            explore_target("nosuchthing")


class TestGoldenReplays:
    def test_race_golden_replays_identically_twice(self):
        golden = json.loads((GOLDENS / "explore_race.json").read_text())
        first = replay_schedule("race", golden["minimized"]).to_dict()
        second = replay_schedule("race", golden["minimized"]).to_dict()
        assert first == second, "minimized race token replayed differently"
        assert first == golden["replay_expect"]

    def test_race_golden_canonical_forced_schedule(self):
        golden = json.loads((GOLDENS / "explore_race.json").read_text())
        from repro.patternlets.openmp.race import FORCED_SCHEDULE

        assert golden["canonical"] == FORCED_SCHEDULE
        outcome = replay_schedule("race", golden["canonical"])
        assert outcome.flagged

    def test_race_golden_flagged_corpus_still_flags(self):
        golden = json.loads((GOLDENS / "explore_race.json").read_text())
        # Spot-check a stable prefix of the corpus; the full sweep runs in
        # the scheduled deep-explore job.
        for token in golden["flagged_tokens"][:4]:
            assert replay_schedule("race", token).flagged, token

    def test_deadlock_golden_replays_identically_twice(self):
        golden = json.loads((GOLDENS / "explore_deadlock.json").read_text())
        first = replay_faults("deadlock", golden["plan"]).to_dict()
        second = replay_faults("deadlock", golden["plan"]).to_dict()
        assert first == second
        assert first == golden["replay_expect"]

    def test_broadcast_crash_golden(self):
        golden = json.loads((GOLDENS / "explore_deadlock.json").read_text())
        crash = golden["broadcast_crash"]
        outcome = replay_faults("broadcast", crash["plan"]).to_dict()
        assert outcome == crash["replay_expect"]

    @pytest.mark.slow
    def test_race_golden_full_corpus(self):
        golden = json.loads((GOLDENS / "explore_race.json").read_text())
        for token in golden["flagged_tokens"]:
            assert replay_schedule("race", token).flagged, token


class TestExploreCli:
    def test_explore_race_exits_1(self, capsys):
        assert main(["explore", "race", "--seed", "7"]) == 1
        out = capsys.readouterr().out
        assert "minimized repro" in out
        assert "verdicts agree" in out

    def test_explore_clean_exits_0(self, capsys):
        assert main(["explore", "atomic", "--schedules", "8"]) == 0
        assert "flagged: 0" in capsys.readouterr().out

    def test_explore_unknown_exits_2(self, capsys):
        assert main(["explore", "nosuchthing"]) == 2
        assert "no patternlet" in capsys.readouterr().err

    def test_replay_token_twice_identical(self, capsys):
        assert main(["explore", "race", "--replay", "o1.2.00111"]) == 1
        out = capsys.readouterr().out
        assert "deterministic" in out
        assert "NONDETERMINISTIC" not in out

    def test_replay_bad_token_exits_2(self, capsys):
        assert main(["explore", "race", "--replay", "bogus"]) == 2

    def test_replay_json_payload(self, capsys):
        assert main(
            ["explore", "deadlock", "--replay", "f1.none", "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["deterministic"] is True
        assert payload["outcome"]["verdict"] == "deadlock"

    def test_repro_dir_writes_bundle(self, capsys, tmp_path):
        assert main([
            "explore", "race", "--seed", "7", "--schedules", "12",
            "--repro-dir", str(tmp_path),
        ]) == 1
        bundle = json.loads((tmp_path / "race-repro.json").read_text())
        assert bundle["token"].startswith("o1.2.")
        assert "--replay" in bundle["replay"]
        timeline = (tmp_path / "race-timeline.txt").read_text()
        assert "legend:" in timeline

    def test_json_report_shape(self, capsys):
        assert main(["explore", "race", "--seed", "7", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["flagged"] > 0
        assert payload["agreement"] is True
        assert payload["minimized"].startswith("o1.2.")

    def test_mpi_faults_via_cli(self, capsys):
        assert main([
            "explore", "broadcast",
            "--faults", "drop:src=0,dst=1,nth=1;crash:rank=1,at=1",
        ]) == 1
        assert "rank-failed" in capsys.readouterr().out
