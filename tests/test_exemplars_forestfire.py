"""Forest-fire exemplar: physics sanity, determinism, decomposition invariance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplars import (
    DEFAULT_PROBS,
    burn_once,
    fire_curve_mpi,
    fire_curve_omp,
    fire_curve_seq,
)
from repro.exemplars.forestfire import forestfire_workload

FAST = settings(max_examples=25, deadline=None)


class TestBurnOnce:
    def test_probability_zero_burns_only_the_ignition_tree(self):
        burned, iters = burn_once(size=11, prob=0.0, seed=1)
        assert burned == pytest.approx(1 / 121)
        assert iters == 1

    def test_probability_one_burns_everything(self):
        burned, iters = burn_once(size=11, prob=1.0, seed=1)
        assert burned == 1.0
        # fire spreads one Manhattan ring per step from the center
        assert iters == 11  # 2 * (11 // 2) + 1

    def test_deterministic_for_seed(self):
        assert burn_once(15, 0.5, seed=42) == burn_once(15, 0.5, seed=42)

    def test_seed_matters(self):
        results = {burn_once(15, 0.5, seed=s) for s in range(8)}
        assert len(results) > 1

    def test_size_one_forest(self):
        burned, iters = burn_once(1, 0.7, seed=0)
        assert burned == 1.0 and iters == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            burn_once(0, 0.5, seed=1)
        with pytest.raises(ValueError):
            burn_once(5, 1.5, seed=1)
        with pytest.raises(ValueError):
            burn_once(5, -0.1, seed=1)

    @FAST
    @given(
        size=st.integers(3, 20),
        prob=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_burned_fraction_in_bounds(self, size, prob, seed):
        burned, iters = burn_once(size, prob, seed)
        assert 0.0 < burned <= 1.0  # at least the center tree burns
        assert iters >= 1


class TestFireCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return fire_curve_seq(trials=8, size=21, seed=7)

    def test_default_probability_sweep(self, curve):
        assert curve.probs == list(DEFAULT_PROBS)
        assert curve.probs[0] == 0.1 and curve.probs[-1] == 1.0

    def test_s_curve_shape(self, curve):
        assert curve.is_monotone_nondecreasing()
        assert curve.burned[0] < 0.2  # sparse fires die out
        assert curve.burned[-1] == 1.0  # certain spread burns all

    def test_phase_transition_near_half(self, curve):
        assert 0.4 <= curve.transition_prob() <= 0.7

    def test_format_table(self, curve):
        table = curve.format_table()
        assert "21x21" in table and "burned %" in table
        assert len(table.splitlines()) == 12

    def test_deterministic_across_runs(self):
        a = fire_curve_seq(trials=4, size=15, seed=3)
        b = fire_curve_seq(trials=4, size=15, seed=3)
        assert a.burned == b.burned


class TestDecompositionInvariance:
    """The headline property: the curve is bit-identical however trials are
    split across threads or ranks (per-trial seeding + ordered folding)."""

    @pytest.fixture(scope="class")
    def reference(self):
        return fire_curve_seq(trials=9, size=13, seed=5)

    @pytest.mark.parametrize("threads", [1, 2, 3, 4])
    def test_omp_bit_identical(self, reference, threads):
        curve = fire_curve_omp(trials=9, size=13, seed=5, num_threads=threads)
        assert curve.burned == reference.burned
        assert [p.avg_iterations for p in curve.points] == [
            p.avg_iterations for p in reference.points
        ]

    @pytest.mark.parametrize("procs", [1, 2, 3, 5])
    def test_mpi_bit_identical(self, reference, procs):
        curve = fire_curve_mpi(trials=9, size=13, seed=5, np_procs=procs)
        assert curve.burned == reference.burned

    def test_more_workers_than_trials(self, reference):
        curve = fire_curve_mpi(trials=9, size=13, seed=5, np_procs=8)
        assert curve.burned == reference.burned


class TestWorkloadDescriptor:
    def test_ops_scale_with_trials(self):
        a = forestfire_workload(size=50, trials=10)
        b = forestfire_workload(size=50, trials=20)
        assert b.total_ops == 2 * a.total_ops

    def test_moderate_imbalance(self):
        w = forestfire_workload(size=50, trials=10)
        assert 0.0 < w.imbalance < 0.5
