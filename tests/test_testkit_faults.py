"""Fault injector: plan grammar, deterministic delivery faults, rank crashes."""

import pytest

from repro.mpi import (
    DeadlockError,
    RankCrashedError,
    RankFailedError,
    fork_available,
    run,
    run_procs,
)
from repro.testkit import FaultPlan, FaultRule, fault_injection, parse_plan

TIMEOUT = 4.0


def ring(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    comm.send(rank, dest=(rank + 1) % size)
    return comm.recv(source=(rank - 1) % size)


def bcast(comm):
    data = "payload" if comm.Get_rank() == 0 else None
    return comm.bcast(data, root=0)


class TestPlanGrammar:
    def test_parse_round_trip(self):
        spec = "drop:src=0,dst=1,nth=2;crash:rank=1,at=3"
        plan = parse_plan(spec)
        assert plan.format() == spec
        assert plan.token == f"f1.{spec}"
        assert parse_plan(plan.token) == plan

    def test_none_is_empty(self):
        assert not parse_plan("none")
        assert not parse_plan("")
        assert parse_plan("f1.none").format() == "none"

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:rank=1",          # unknown action
            "drop:src=0",              # missing dst
            "crash:at=1",              # missing rank
            "drop:src=0,dst=1,nth=x",  # non-integer field
            "drop:src=0,dst=1,bogus=1",  # unknown field
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_plan(bad)

    def test_random_plans_are_seed_deterministic(self):
        assert FaultPlan.random(9, 3).token == FaultPlan.random(9, 3).token
        tokens = {FaultPlan.random(s, 3).token for s in range(8)}
        assert len(tokens) > 1

    def test_shrink_enumerates_single_rule_removals(self):
        plan = parse_plan("drop:src=0,dst=1,nth=1;crash:rank=1,at=1")
        shrunk = list(plan.shrink())
        assert len(shrunk) == 2
        assert all(len(p.rules) == 1 for p in shrunk)


class TestThreadRankFaults:
    def test_crash_surfaces_as_rank_failed(self):
        with fault_injection("crash:rank=1,at=2"):
            with pytest.raises(RankFailedError) as excinfo:
                run(ring, 3, deadlock_timeout=TIMEOUT)
        failure = excinfo.value.failures[1]
        assert isinstance(failure, RankCrashedError)
        assert (failure.rank, failure.at_op) == (1, 2)

    def test_crash_is_deterministic(self):
        outcomes = []
        for _ in range(3):
            with fault_injection("crash:rank=1,at=2"):
                with pytest.raises(RankFailedError) as excinfo:
                    run(ring, 3, deadlock_timeout=TIMEOUT)
            failure = excinfo.value.failures[1]
            outcomes.append((sorted(excinfo.value.failures), failure.at_op))
        assert outcomes == [([1], 2)] * 3

    def test_drop_deadlocks_the_ring(self):
        with fault_injection("drop:src=0,dst=1,nth=1"):
            with pytest.raises(DeadlockError):
                run(ring, 3, deadlock_timeout=TIMEOUT)

    def test_duplicate_is_harmless_to_matching(self):
        with fault_injection("dup:src=0,dst=1,nth=1,times=3"):
            assert run(ring, 3, deadlock_timeout=TIMEOUT) == [2, 0, 1]

    def test_delay_reorders_but_delivers(self):
        def two_sends(comm):
            rank = comm.Get_rank()
            if rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            # Tag matching must still pair each message correctly even
            # though the transport delivered them out of order.
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        with fault_injection("delay:src=0,dst=1,nth=1,after=1"):
            results = run(two_sends, 2, deadlock_timeout=TIMEOUT)
        assert results[1] == ("first", "second")

    def test_crash_mid_collective(self):
        with fault_injection("crash:rank=2,at=1"):
            with pytest.raises((RankFailedError, DeadlockError)) as excinfo:
                run(bcast, 3, deadlock_timeout=TIMEOUT)
        if isinstance(excinfo.value, RankFailedError):
            assert isinstance(excinfo.value.failures[2], RankCrashedError)

    def test_no_plan_no_interference(self):
        assert run(ring, 3, deadlock_timeout=TIMEOUT) == [2, 0, 1]

    def test_injection_context_detaches(self):
        with fault_injection("drop:src=0,dst=1,nth=1"):
            pass
        assert run(ring, 3, deadlock_timeout=TIMEOUT) == [2, 0, 1]


@pytest.mark.skipif(not fork_available(), reason="needs os.fork")
class TestProcessRankFaults:
    def test_crash_crosses_the_fork(self):
        with fault_injection("crash:rank=1,at=2"):
            with pytest.raises(RankFailedError) as excinfo:
                run_procs(ring, 3, deadlock_timeout=TIMEOUT)
        failure = excinfo.value.failures[1]
        assert isinstance(failure, RankCrashedError)
        assert (failure.rank, failure.at_op) == (1, 2)

    def test_drop_deadlocks_process_ranks(self):
        with fault_injection("drop:src=0,dst=1,nth=1"):
            with pytest.raises(DeadlockError):
                run_procs(ring, 3, deadlock_timeout=TIMEOUT)

    def test_clean_run_after_context_exit(self):
        with fault_injection("crash:rank=1,at=1"):
            pass
        assert run_procs(ring, 3, deadlock_timeout=TIMEOUT) == [2, 0, 1]


class TestRuleValidation:
    def test_crash_rule_requires_rank(self):
        with pytest.raises(ValueError):
            FaultRule(action="crash")
        assert FaultRule(action="crash", rank=0, at=2).format() == "crash:rank=0,at=2"

    def test_delivery_rule_requires_edge(self):
        with pytest.raises(ValueError):
            FaultRule(action="drop", src=0)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(action="scramble", src=0, dst=1)
