"""World lifecycle, error propagation, console capture, mpirun emulation."""

import pytest

from repro.mpi import (
    DeadlockError,
    MPI,
    NotInWorldError,
    RankFailedError,
    World,
    WorldAbortedError,
    current_comm,
    mpirun,
    parse_mpirun_command,
    run_script,
)
from tests.conftest import spmd


class TestWorldLifecycle:
    def test_run_returns_per_rank_results(self):
        assert spmd(lambda comm: comm.Get_rank() ** 2, 5) == [0, 1, 4, 9, 16]

    def test_single_rank_world(self):
        assert spmd(lambda comm: comm.Get_size(), 1) == [1]

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            World(0)

    def test_args_and_kwargs_forwarded(self):
        def body(comm, base, scale=1):
            return base + comm.Get_rank() * scale

        assert spmd(body, 3, 100, scale=10) == [100, 110, 120]

    def test_hostname_configurable(self):
        def body(comm):
            return comm.Get_processor_name()

        assert spmd(body, 2, hostname="pi-cluster-node0") == ["pi-cluster-node0"] * 2

    def test_worlds_are_isolated(self):
        """Two sequential worlds must not share mailboxes or state."""

        def sender_only(comm):
            if comm.Get_rank() == 0:
                comm.isend("stale", dest=1, tag=1)
            # rank 1 deliberately never receives

        spmd(sender_only, 2)

        def receiver(comm):
            if comm.Get_rank() == 1:
                return comm.iprobe(source=0, tag=1)
            return None

        assert spmd(receiver, 2)[1] is False


class TestErrorPropagation:
    def test_rank_exception_aggregated(self):
        def body(comm):
            if comm.Get_rank() == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()  # would hang forever without abort propagation

        with pytest.raises(RankFailedError) as exc_info:
            spmd(body, 3)
        failures = exc_info.value.failures
        assert isinstance(failures[1], ValueError)

    def test_abort_unparks_blocked_ranks(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.Abort(errorcode=7)
            else:
                comm.recv(source=0)  # parked until the abort

        with pytest.raises(RankFailedError) as exc_info:
            spmd(body, 3)
        assert any(
            isinstance(e, WorldAbortedError)
            for e in exc_info.value.failures.values()
        )

    def test_freed_comm_rejects_operations(self):
        from repro.mpi import CommAlreadyFreedError

        def body(comm):
            sub = comm.Dup()
            sub.Free()
            try:
                sub.send(1, dest=0)
            except CommAlreadyFreedError:
                return "caught"
            return "not caught"

        assert spmd(body, 2) == ["caught", "caught"]


class TestCommWorldProxy:
    def test_proxy_resolves_per_thread(self):
        def body(comm):
            # MPI.COMM_WORLD must resolve to *this* rank's view.
            return (MPI.COMM_WORLD.Get_rank(), comm.Get_rank())

        outs = spmd(body, 4)
        assert all(a == b for a, b in outs)

    def test_proxy_outside_world_raises(self):
        with pytest.raises(NotInWorldError):
            current_comm()

    def test_get_processor_name_outside_world(self):
        assert MPI.Get_processor_name() == "localhost"


class TestParseMpirun:
    def test_standard_form(self):
        inv = parse_mpirun_command("mpirun -np 4 python 00spmd.py")
        assert (inv.np, inv.script) == (4, "00spmd.py")

    def test_allow_run_as_root_and_figure2_typo(self):
        inv = parse_mpirun_command(
            "mpirun --allow-run-as-root -mp 4 python 00spmd.py"
        )
        assert inv.np == 4
        assert inv.allow_run_as_root is True

    def test_mpiexec_with_n(self):
        inv = parse_mpirun_command("mpiexec -n 8 python job.py --size 100")
        assert inv.np == 8
        assert inv.extra_args == ["--size", "100"]

    def test_python3_binary(self):
        inv = parse_mpirun_command("mpirun -np 2 python3 ring.py")
        assert inv.script == "ring.py"

    def test_default_np_is_one(self):
        assert parse_mpirun_command("mpirun python x.py").np == 1

    def test_not_mpirun_raises(self):
        with pytest.raises(ValueError, match="not an mpirun command"):
            parse_mpirun_command("ls -la")

    def test_missing_script_raises(self):
        with pytest.raises(ValueError):
            parse_mpirun_command("mpirun -np 4 python")

    def test_nonpositive_np_raises(self):
        with pytest.raises(ValueError):
            parse_mpirun_command("mpirun -np 0 python x.py")


class TestRunScript:
    def test_figure2_greetings(self):
        source = (
            "from mpi4py import MPI\n"
            "comm = MPI.COMM_WORLD\n"
            "print('Greetings from process {} of {} on {}'.format("
            "comm.Get_rank(), comm.Get_size(), MPI.Get_processor_name()))\n"
        )
        result = run_script(source, 4)
        assert len(result.stdout_lines) == 4
        ranks = sorted(int(line.split()[3]) for line in result.stdout_lines)
        assert ranks == [0, 1, 2, 3]
        assert all("of 4 on d6ff4f902ed6" in line for line in result.stdout_lines)

    def test_module_globals_are_per_rank(self):
        source = (
            "from mpi4py import MPI\n"
            "counter = 0\n"  # a module global: must be private per rank
            "counter += MPI.COMM_WORLD.Get_rank()\n"
            "print(counter)\n"
        )
        result = run_script(source, 3)
        assert sorted(int(l) for l in result.stdout_lines) == [0, 1, 2]

    def test_per_rank_lines_partition_stdout(self):
        source = "from mpi4py import MPI\nprint(MPI.COMM_WORLD.Get_rank())\n"
        result = run_script(source, 5)
        for rank in range(5):
            assert result.per_rank_lines[rank] == [str(rank)]

    def test_argv_exposed(self):
        source = "print(','.join(ARGV))\n"
        result = run_script(source, 1, argv=["--fire", "0.5"])
        assert result.stdout_lines == ["--fire,0.5"]

    def test_script_collectives(self):
        source = (
            "from mpi4py import MPI\n"
            "comm = MPI.COMM_WORLD\n"
            "total = comm.reduce(comm.Get_rank(), op=MPI.SUM, root=0)\n"
            "if comm.Get_rank() == 0:\n"
            "    print('total', total)\n"
        )
        result = run_script(source, 4)
        assert result.stdout_lines == ["total 6"]

    def test_script_deadlock_detected(self):
        source = (
            "from mpi4py import MPI\n"
            "comm = MPI.COMM_WORLD\n"
            "comm.recv(source=(comm.Get_rank() + 1) % comm.Get_size())\n"
        )
        with pytest.raises(DeadlockError):
            run_script(source, 2, deadlock_timeout=5.0)


class TestConsole:
    def test_interleaved_lines_keep_arrival_order(self):
        from repro.mpi import Console

        console = Console()
        console.write(0, "a")
        console.write(1, "b\nc")
        console.write(0, "d")
        assert console.lines() == ["a", "b", "c", "d"]
        assert console.lines(0) == ["a", "d"]
        assert console.lines(1) == ["b", "c"]
        assert len(console) == 4
        console.clear()
        assert console.lines() == []
