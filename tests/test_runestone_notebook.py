"""Notebook emulation: writefile/mpirun cells and the Colab patternlets."""

import pytest

from repro.runestone import Notebook, build_mpi_colab_notebook
from repro.runestone.modules.mpi_colab import SPMD_CELL_SOURCE, SPMD_RUN_COMMAND


class TestNotebookMechanics:
    def test_writefile_stores_virtual_file(self):
        nb = Notebook("t")
        nb.code("%%writefile hello.py\nprint('hi')\n")
        result = nb.run_cell(0)
        assert result.ok and result.kind == "writefile"
        assert "print('hi')" in nb.files["hello.py"]

    def test_mpirun_cell_executes_saved_file(self):
        nb = Notebook("t")
        nb.code(
            "%%writefile r.py\nfrom mpi4py import MPI\n"
            "print('rank', MPI.COMM_WORLD.Get_rank())\n"
        )
        nb.code("! mpirun -np 3 python r.py")
        results = nb.run_all()
        assert all(r.ok for r in results)
        lines = sorted(results[1].stdout.splitlines())
        assert lines == ["rank 0", "rank 1", "rank 2"]

    def test_mpirun_before_writefile_errors(self):
        nb = Notebook("t")
        nb.code("! mpirun -np 2 python missing.py")
        result = nb.run_cell(0)
        assert not result.ok
        assert "write it first" in result.error

    def test_plain_python_cells_share_namespace(self):
        nb = Notebook("t")
        nb.code("x = 21")
        nb.code("print(x * 2)")
        results = nb.run_all()
        assert results[1].stdout == "42"

    def test_python_error_captured_not_raised(self):
        nb = Notebook("t")
        nb.code("1 / 0")
        result = nb.run_cell(0)
        assert not result.ok and "ZeroDivisionError" in result.error

    def test_markdown_cells_are_inert(self):
        nb = Notebook("t").md("# title")
        assert nb.run_cell(0).kind == "markdown"

    def test_unsupported_shell_command_rejected(self):
        nb = Notebook("t")
        nb.code("! rm -rf /")
        result = nb.run_cell(0)
        assert not result.ok and "only supports mpirun" in result.error

    def test_malformed_writefile_rejected(self):
        nb = Notebook("t")
        nb.code("%%writefile\nprint(1)\n")
        assert not nb.run_cell(0).ok

    def test_rewriting_file_overwrites(self):
        nb = Notebook("t")
        nb.code("%%writefile a.py\nprint(1)\n")
        nb.code("%%writefile a.py\nprint(2)\n")
        nb.code("! mpirun -np 1 python a.py")
        results = nb.run_all()
        assert results[2].stdout == "2"


class TestColabPatternletsNotebook:
    @pytest.fixture(scope="class")
    def executed(self):
        nb = build_mpi_colab_notebook(np=4)
        return nb, nb.run_all()

    def test_every_cell_succeeds(self, executed):
        _nb, results = executed
        failures = [(r.cell_index, r.error) for r in results if not r.ok]
        assert not failures

    def test_figure2_spmd_output(self, executed):
        _nb, results = executed
        spmd = next(r for r in results if r.kind == "mpirun")
        lines = spmd.stdout.splitlines()
        assert len(lines) == 4
        assert all(l.startswith("Greetings from process") for l in lines)
        assert {int(l.split()[3]) for l in lines} == {0, 1, 2, 3}

    def test_figure2_cell_text_matches_paper(self):
        assert "%%writefile 00spmd.py" in SPMD_CELL_SOURCE
        assert "Greetings from process {} of {} on {}" in SPMD_CELL_SOURCE
        assert "--allow-run-as-root" in SPMD_RUN_COMMAND

    def test_notebook_covers_core_patterns(self, executed):
        nb, _results = executed
        saved = set(nb.files)
        assert {
            "00spmd.py",
            "01sendReceive.py",
            "02ring.py",
            "03broadcast.py",
            "04scatterGather.py",
            "05reduce.py",
            "06parallelLoop.py",
        } <= saved

    def test_ring_made_it_round(self, executed):
        _nb, results = executed
        ring = [r for r in results if r.kind == "mpirun"][2]
        assert "Token made it around the ring: [0, 1, 2, 3]" in ring.stdout

    def test_reduce_total(self, executed):
        _nb, results = executed
        reduce_cell = [r for r in results if r.kind == "mpirun"][5]
        assert "Sum of all ranks: 6" in reduce_cell.stdout

    def test_parallel_loop_total(self, executed):
        _nb, results = executed
        loop_cell = [r for r in results if r.kind == "mpirun"][6]
        assert f"is {sum(i * i for i in range(1000))}" in loop_cell.stdout

    def test_runs_at_other_process_counts(self):
        nb = build_mpi_colab_notebook(np=3)
        results = nb.run_all()
        assert all(r.ok for r in results)
        spmd = next(r for r in results if r.kind == "mpirun")
        assert len(spmd.stdout.splitlines()) == 3
