"""Module linter: the shipped modules are clean; broken modules are caught."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runestone import (
    Chapter,
    Choice,
    FillInTheBlank,
    HandsOnActivity,
    Module,
    MultipleChoice,
    Section,
    Video,
    build_distributed_module,
    build_raspberry_pi_module,
    validate_module,
)
from repro.runestone.questions import DragAndDrop, OrderingProblem

FAST = settings(max_examples=40, deadline=None)


def errors(findings):
    return [f for f in findings if f.level == "error"]


class TestShippedModulesAreClean:
    @pytest.mark.parametrize(
        "builder", [build_raspberry_pi_module, build_distributed_module]
    )
    def test_no_errors(self, builder):
        findings = validate_module(builder(), run_activities=True)
        assert not errors(findings), [str(f) for f in errors(findings)]

    @pytest.mark.parametrize(
        "builder", [build_raspberry_pi_module, build_distributed_module]
    )
    def test_no_warnings_either(self, builder):
        findings = validate_module(builder())
        assert not findings, [str(f) for f in findings]


class TestLinterCatchesMistakes:
    def _module_with(self, *blocks, minutes=10):
        return Module("broken", "Broken", "test").add(
            Chapter(1, "c").add(Section("1.1", "s", minutes=minutes).add(*blocks))
        )

    def test_empty_module(self):
        findings = validate_module(Module("empty", "Empty", "t"))
        assert any("no chapters" in f.message for f in errors(findings))

    def test_duplicate_section_numbers(self):
        module = Module("dup", "Dup", "t").add(
            Chapter(1, "c")
            .add(Section("1.1", "a", minutes=5))
            .add(Section("1.1", "b", minutes=5))
        )
        findings = validate_module(module)
        assert any("duplicate section" in f.message for f in errors(findings))

    def test_duplicate_activity_ids(self):
        q = MultipleChoice(
            "same", "p", (Choice("A", "x", feedback="f"), Choice("B", "y")), "A"
        )
        module = self._module_with(q, q)
        findings = validate_module(module)
        assert any("duplicate question" in f.message for f in errors(findings))

    def test_nonpositive_minutes(self):
        module = self._module_with(minutes=0)
        findings = validate_module(module)
        assert any("non-positive pacing" in f.message for f in errors(findings))

    def test_overlong_session_warns(self):
        module = self._module_with(minutes=500)
        findings = validate_module(module)
        assert any("beyond" in f.message for f in findings)
        assert not errors(findings)

    def test_blank_without_answer_spec(self):
        bad = FillInTheBlank("b1", "prompt?")
        findings = validate_module(self._module_with(bad))
        assert any("neither a numeric answer" in f.message for f in errors(findings))

    def test_correct_choice_without_feedback_warns(self):
        q = MultipleChoice("m1", "p", (Choice("A", "x"), Choice("B", "y")), "A")
        findings = validate_module(self._module_with(q))
        assert any("no feedback" in f.message for f in findings)

    def test_unknown_patternlet(self):
        activity = HandsOnActivity("bad", "mpi", "teleportation", "go", ("x",))
        findings = validate_module(self._module_with(activity))
        assert any("unknown patternlet" in f.message for f in errors(findings))

    def test_wrong_expected_key_caught_only_when_running(self):
        activity = HandsOnActivity("bad", "mpi", "spmd", "go", ("no_such_key",))
        module = self._module_with(activity)
        assert not errors(validate_module(module, run_activities=False))
        findings = validate_module(module, run_activities=True)
        assert any("no_such_key" in f.message for f in errors(findings))

    def test_long_video_warns(self):
        video = Video("epic lecture", duration_s=40 * 60)
        findings = validate_module(self._module_with(video))
        assert any("favor short videos" in f.message for f in findings)


class TestQuestionGradingProperties:
    @FAST
    @given(data=st.data())
    def test_drag_and_drop_score_counts_exact_matches(self, data):
        n = data.draw(st.integers(1, 6))
        pairs = tuple((f"t{i}", f"d{i}") for i in range(n))
        question = DragAndDrop("dd", "match", pairs=pairs)
        # permute the answers arbitrarily
        perm = data.draw(st.permutations(list(range(n))))
        answer = {f"t{i}": f"d{perm[i]}" for i in range(n)}
        result = question.grade(answer)
        exact = sum(1 for i in range(n) if perm[i] == i)
        assert result.score == pytest.approx(exact / n)
        assert result.correct == (exact == n)

    @FAST
    @given(data=st.data())
    def test_ordering_score_counts_fixed_points(self, data):
        n = data.draw(st.integers(2, 7))
        steps = tuple(f"s{i}" for i in range(n))
        question = OrderingProblem("op", "order", steps=steps)
        perm = data.draw(st.permutations(list(steps)))
        result = question.grade(list(perm))
        fixed = sum(1 for a, b in zip(perm, steps) if a == b)
        assert result.score == pytest.approx(fixed / n)

    @FAST
    @given(
        answer=st.floats(-1e6, 1e6),
        target=st.floats(-100, 100),
        tolerance=st.floats(0, 10),
    )
    def test_numeric_blank_tolerance_is_symmetric(self, answer, target, tolerance):
        question = FillInTheBlank(
            "fb", "?", numeric_answer=target, tolerance=tolerance
        )
        assert question.grade(answer).correct == (abs(answer - target) <= tolerance)
