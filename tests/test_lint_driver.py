"""The parallel incremental lint driver: determinism, caching, skip notes.

``repro lint --jobs N --cache`` must be a pure speedup: whatever the job
count and whether results come from workers or the content-hash cache,
the merged report renders byte-identical to a serial ``lint_targets``
run.  This suite pins that down, plus the cache lifecycle (cold fill,
warm hit, invalidation on content/config change, corrupt-entry
recovery) and the defensive directory walk of satellite concern (a):
``__pycache__`` pruning, non-UTF-8 and empty files skipped with a note.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import SKIP_DIRS, lint_path, lint_targets
from repro.analysis.scale.driver import lint_corpus

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: a small mixed corpus: findings, clean files, suppressions, C sources
CORPUS = [
    "pdc101_tp.py", "pdc101_tn.py", "pdc103_tp.py", "pdc106_tp.py",
    "suppressed_tp.py", "pdc202_tp.c", "pdc203_tn.c",
]


@pytest.fixture
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    for name in CORPUS:
        (root / name).write_bytes((FIXTURES / name).read_bytes())
    return root


def _serial_render(root: Path) -> str:
    return lint_targets([str(root)]).render()


class TestDeterminism:
    def test_single_job_matches_serial_byte_for_byte(self, corpus_dir):
        want = _serial_render(corpus_dir)
        got = lint_corpus([corpus_dir], jobs=1)
        assert got.report.render() == want

    def test_parallel_jobs_match_serial_byte_for_byte(self, corpus_dir):
        want = _serial_render(corpus_dir)
        got = lint_corpus([corpus_dir], jobs=4)
        assert got.report.render() == want

    def test_cached_rerun_matches_serial_byte_for_byte(self, corpus_dir,
                                                       tmp_path):
        cache = tmp_path / "cache"
        want = _serial_render(corpus_dir)
        cold = lint_corpus([corpus_dir], cache_dir=cache)
        warm = lint_corpus([corpus_dir], cache_dir=cache)
        assert cold.report.render() == want
        assert warm.report.render() == want

    def test_parallel_warm_cache_matches_serial(self, corpus_dir, tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([corpus_dir], jobs=4, cache_dir=cache)
        warm = lint_corpus([corpus_dir], jobs=4, cache_dir=cache)
        assert warm.report.render() == _serial_render(corpus_dir)

    def test_json_payload_matches_serial(self, corpus_dir, tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([corpus_dir], cache_dir=cache)
        warm = lint_corpus([corpus_dir], cache_dir=cache)
        serial = lint_targets([str(corpus_dir)])
        assert json.loads(warm.report.to_json()) == json.loads(
            serial.to_json())


class TestCacheLifecycle:
    def test_cold_run_misses_warm_run_hits(self, corpus_dir, tmp_path):
        cache = tmp_path / "cache"
        cold = lint_corpus([corpus_dir], cache_dir=cache)
        assert cold.cache_misses == len(CORPUS)
        assert cold.cache_hits == 0
        warm = lint_corpus([corpus_dir], cache_dir=cache)
        assert warm.cache_hits == len(CORPUS)
        assert warm.cache_misses == 0

    def test_content_change_invalidates_only_that_file(self, corpus_dir,
                                                       tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([corpus_dir], cache_dir=cache)
        target = corpus_dir / "pdc101_tn.py"
        target.write_text(target.read_text() + "\n# touched\n")
        rerun = lint_corpus([corpus_dir], cache_dir=cache)
        assert rerun.cache_misses == 1
        assert rerun.cache_hits == len(CORPUS) - 1

    def test_config_change_invalidates_everything(self, corpus_dir, tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([corpus_dir], cache_dir=cache)
        rerun = lint_corpus([corpus_dir], cache_dir=cache, ignore=["PDC101"])
        assert rerun.cache_misses == len(CORPUS)

    def test_corrupt_cache_entry_falls_back_to_linting(self, corpus_dir,
                                                       tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([corpus_dir], cache_dir=cache)
        for entry in cache.iterdir():
            entry.write_text("{truncated")
        rerun = lint_corpus([corpus_dir], cache_dir=cache)
        assert rerun.cache_misses == len(CORPUS)
        assert rerun.report.render() == _serial_render(corpus_dir)

    def test_stats_shape(self, corpus_dir, tmp_path):
        result = lint_corpus([corpus_dir], jobs=2,
                             cache_dir=tmp_path / "cache")
        assert result.stats == {
            "files": len(CORPUS),
            "cache_hits": 0,
            "cache_misses": len(CORPUS),
            "jobs": 2,
        }

    def test_without_cache_dir_nothing_is_written(self, corpus_dir, tmp_path):
        before = set(tmp_path.rglob("*"))
        result = lint_corpus([corpus_dir], jobs=2)
        after = set(tmp_path.rglob("*"))
        assert result.cache_hits == 0
        assert before == after


class TestDefensiveWalk:
    """Satellite (a): tool directories, binary junk, and empty files must
    never crash a directory lint — they are pruned or noted."""

    @pytest.fixture
    def messy_dir(self, corpus_dir):
        pycache = corpus_dir / "__pycache__"
        pycache.mkdir()
        (pycache / "stale.py").write_text("import nonsense (\n")
        (corpus_dir / "binary.py").write_bytes(b"\x93NUMPY\xff\xfe\x00junk")
        (corpus_dir / "empty.py").write_text("")
        (corpus_dir / "blank.py").write_text("   \n\t\n")
        return corpus_dir

    def test_lint_path_skips_with_notes(self, messy_dir):
        report = lint_path(messy_dir)
        notes = "\n".join(report.notes)
        assert "binary.py: not UTF-8 text" in notes
        assert "empty.py: empty file" in notes
        assert "blank.py: empty file" in notes
        assert "stale.py" not in notes  # __pycache__ is pruned silently
        assert "__pycache__" not in notes

    def test_pycache_contents_never_linted(self, messy_dir):
        report = lint_path(messy_dir)
        assert not any("stale.py" in (d.location or "")
                       for d in report.diagnostics)
        # the real findings still surface
        assert any("pdc101_tp.py" in (d.location or "")
                   for d in report.diagnostics)

    def test_driver_walk_matches_lint_path(self, messy_dir, tmp_path):
        serial = lint_path(messy_dir)
        result = lint_corpus([messy_dir], jobs=4,
                             cache_dir=tmp_path / "cache")
        assert result.report.render() == serial.render()
        assert sorted(result.report.notes) == sorted(serial.notes)

    def test_skipped_files_are_not_cached_as_findings(self, messy_dir,
                                                      tmp_path):
        cache = tmp_path / "cache"
        lint_corpus([messy_dir], cache_dir=cache)
        warm = lint_corpus([messy_dir], cache_dir=cache)
        notes = "\n".join(warm.report.notes)
        assert "binary.py: not UTF-8 text" in notes
        assert "empty.py: empty file" in notes

    def test_skip_dirs_is_public_and_covers_the_usual_suspects(self):
        assert "__pycache__" in SKIP_DIRS
        assert ".git" in SKIP_DIRS


class TestTargets:
    def test_explicit_file_list(self, corpus_dir):
        files = [corpus_dir / "pdc101_tp.py", corpus_dir / "pdc103_tp.py"]
        result = lint_corpus(files, jobs=2)
        rules = sorted(d.details["rule"] for d in result.report.diagnostics)
        assert rules == ["PDC101", "PDC103"]
        assert result.stats["files"] == 2

    def test_enable_threads_opt_in_rules_through_workers(self, tmp_path):
        root = tmp_path / "cost"
        root.mkdir()
        src = FIXTURES / "pdc121_tp.py"
        (root / src.name).write_bytes(src.read_bytes())
        plain = lint_corpus([root], jobs=2)
        enabled = lint_corpus([root], jobs=2,
                              enable=["PDC120", "PDC121", "PDC122"])
        assert not plain.report.diagnostics
        assert [d.details["rule"] for d in enabled.report.diagnostics] == [
            "PDC121"]
