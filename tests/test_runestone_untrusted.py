"""Untrusted-input edges: graders, lookups, and renders must not crash.

The serving layer feeds ``validate``/``render``/``grade`` whatever a
remote browser sent; these pin the contract the routes rely on — bad
shapes become wrong answers or ``KeyError``, never an unhandled crash.
"""

from __future__ import annotations

import pytest

from repro.runestone import (
    Chapter,
    Module,
    Section,
    build_distributed_module,
    build_raspberry_pi_module,
    render_html,
    render_text,
    validate_module,
)
from repro.runestone.questions import (
    DragAndDrop,
    FillInTheBlank,
    MultipleChoice,
    OrderingProblem,
)


@pytest.fixture(scope="module")
def module():
    return build_raspberry_pi_module()


class TestUnknownIds:
    def test_unknown_activity_id_is_keyerror(self, module):
        with pytest.raises(KeyError):
            module.find_question("no_such_activity")

    def test_unknown_section_is_keyerror(self, module):
        with pytest.raises(KeyError):
            module.find_section("42.1")

    @pytest.mark.parametrize("bogus", ["", "sp_mc_1 ", "SP_MC_1", "1; drop"])
    def test_near_miss_ids_do_not_resolve(self, module, bogus):
        with pytest.raises(KeyError):
            module.find_question(bogus)


class TestMalformedAnswers:
    """Every grader is total over JSON values: wrong shape → wrong answer."""

    PAYLOADS = [None, 0, 3.5, True, "text", [], [1, 2], {}, {"a": "b"}]

    def _questions(self, module):
        return list(module.all_questions())

    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_shipped_questions_never_raise(self, module, payload):
        for question in self._questions(module):
            result = question.grade(payload)
            assert 0.0 <= result.score <= 1.0
            assert isinstance(result.feedback, str)

    def test_drag_and_drop_non_dict_is_wrong_not_crash(self):
        q = DragAndDrop("dd", "match", pairs=(("a", "1"), ("b", "2")))
        result = q.grade(["a", "1"])
        assert result.correct is False and "map" in result.feedback

    def test_drag_and_drop_extra_keys_score_zero_credit(self):
        q = DragAndDrop("dd", "match", pairs=(("a", "1"), ("b", "2")))
        result = q.grade({"a": "1", "zzz": "junk"})
        assert result.score == 0.5  # one real match; junk keys ignored

    def test_ordering_string_is_not_a_step_list(self):
        q = OrderingProblem("op", "order", steps=("first", "second"))
        result = q.grade("firstsecond")
        assert result.correct is False and "list" in result.feedback

    def test_ordering_mixed_types_coerced(self):
        q = OrderingProblem("op", "order", steps=("1", "2"))
        assert q.grade([1, 2]).correct is True

    def test_fill_in_blank_numeric_rejects_non_numbers(self):
        q = FillInTheBlank("fb", "how many?", numeric_answer=4.0, tolerance=0.5)
        for payload in ([], {}, None, "four"):
            result = q.grade(payload)
            assert result.correct is False

    def test_multiple_choice_arbitrary_types_stringified(self):
        from repro.runestone import Choice

        q = MultipleChoice(
            "mc", "pick", choices=(Choice("A", "x"), Choice("B", "y")),
            correct_label="A",
        )
        assert q.grade({"weird": 1}).correct is False
        assert q.grade(["A"]).correct is False
        assert q.grade("  a  ").correct is True  # whitespace + case folding


class TestEmptyModules:
    def test_empty_module_renders_without_crashing(self):
        empty = Module("empty", "Empty", "nobody")
        assert "Empty" in render_text(empty)
        assert "<html" in render_html(empty) or "Empty" in render_html(empty)

    def test_empty_module_flagged_by_validate(self):
        findings = validate_module(Module("empty", "Empty", "nobody"))
        assert any(f.level == "error" for f in findings)

    def test_empty_section_renders(self):
        module = Module("thin", "Thin", "t").add(
            Chapter(1, "c").add(Section("1.1", "bare", minutes=5))
        )
        assert "bare" in render_text(module)
        assert module.find_section("1.1").number == "1.1"

    def test_module_with_no_questions_has_empty_pool(self):
        from repro.serve import answer_pool

        module = Module("thin", "Thin", "t").add(
            Chapter(1, "c").add(Section("1.1", "bare", minutes=5))
        )
        assert answer_pool(module) == []
        assert list(module.all_questions()) == []


class TestShippedModulesStillClean:
    @pytest.mark.parametrize(
        "builder", [build_raspberry_pi_module, build_distributed_module]
    )
    def test_activity_ids_unique_and_findable(self, builder):
        module = builder()
        ids = [q.activity_id for q in module.all_questions()]
        assert len(ids) == len(set(ids))
        for aid in ids:
            assert module.find_question(aid).activity_id == aid
