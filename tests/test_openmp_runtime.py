"""OpenMP runtime: regions, introspection, env config, error propagation."""

import pytest

from repro.openmp import (
    get_config,
    get_max_threads,
    get_num_threads,
    get_thread_num,
    in_parallel,
    parallel_region,
    scoped_num_threads,
    set_num_threads,
)


class TestParallelRegion:
    def test_every_thread_runs_once(self):
        results = parallel_region(get_thread_num, num_threads=6)
        assert results == list(range(6))

    def test_master_runs_in_caller_thread(self):
        import threading

        caller = threading.get_ident()

        def body():
            if get_thread_num() == 0:
                return threading.get_ident() == caller
            return None

        assert parallel_region(body, num_threads=3)[0] is True

    def test_team_size_from_config_by_default(self):
        with scoped_num_threads(3):
            assert parallel_region(get_num_threads) == [3, 3, 3]

    def test_single_thread_region(self):
        assert parallel_region(lambda: get_num_threads(), num_threads=1) == [1]

    def test_introspection_outside_region(self):
        assert get_thread_num() == 0
        assert get_num_threads() == 1
        assert not in_parallel()

    def test_in_parallel_inside_region(self):
        assert parallel_region(in_parallel, num_threads=2) == [True, True]

    def test_nested_region_serializes(self):
        """OpenMP default: nested parallelism off -> inner team of one."""

        def inner():
            return get_num_threads()

        def outer():
            return parallel_region(inner, num_threads=4)

        results = parallel_region(outer, num_threads=3)
        assert results == [[1]] * 3

    def test_exception_propagates_with_lowest_thread_first(self):
        def body():
            if get_thread_num() in (1, 2):
                raise RuntimeError(f"thread {get_thread_num()} failed")

        with pytest.raises(RuntimeError, match="thread 1 failed") as exc_info:
            parallel_region(body, num_threads=4)
        assert set(exc_info.value.__exceptions__) == {1, 2}

    def test_invalid_team_size(self):
        with pytest.raises(ValueError):
            parallel_region(lambda: None, num_threads=0)

    def test_args_forwarded(self):
        results = parallel_region(
            lambda offset: offset + get_thread_num(), num_threads=3, args=(100,)
        )
        assert results == [100, 101, 102]


class TestEnvConfig:
    def test_set_and_get_num_threads(self):
        old = get_max_threads()
        try:
            set_num_threads(7)
            assert get_max_threads() == 7
        finally:
            set_num_threads(old)

    def test_scoped_override_restores(self):
        before = get_max_threads()
        with scoped_num_threads(2):
            assert get_max_threads() == 2
        assert get_max_threads() == before

    def test_invalid_num_threads(self):
        with pytest.raises(ValueError):
            set_num_threads(0)
        with pytest.raises(ValueError):
            set_num_threads(100_000)

    def test_config_has_schedule_defaults(self):
        cfg = get_config()
        assert cfg.schedule in ("static", "dynamic", "guided")
