"""Collective-communication semantics, object and buffer variants."""

import numpy as np
import pytest

from repro.mpi import MAX, MAXLOC, MIN, MINLOC, MPI, PROD, SUM, Op
from tests.conftest import spmd

SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestObjectCollectives:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_bcast_reaches_every_rank(self, size, root):
        root = size - 1 if root == "last" else 0

        def body(comm):
            data = {"payload": list(range(10))} if comm.Get_rank() == root else None
            return comm.bcast(data, root=root)

        outs = spmd(body, size)
        assert all(o == {"payload": list(range(10))} for o in outs)

    def test_bcast_non_root_copies_are_private(self):
        def body(comm):
            data = [0] if comm.Get_rank() == 0 else None
            data = comm.bcast(data, root=0)
            data.append(comm.Get_rank())
            return data

        outs = spmd(body, 4)
        assert outs == [[0, 0], [0, 1], [0, 2], [0, 3]]

    @pytest.mark.parametrize("size", SIZES)
    def test_scatter_gather_roundtrip(self, size):
        def body(comm):
            rank = comm.Get_rank()
            chunk = comm.scatter(
                [f"item-{i}" for i in range(size)] if rank == 0 else None, root=0
            )
            assert chunk == f"item-{rank}"
            return comm.gather(chunk.upper(), root=0)

        outs = spmd(body, size)
        assert outs[0] == [f"ITEM-{i}" for i in range(size)]
        assert all(o is None for o in outs[1:])

    def test_scatter_wrong_length_raises(self):
        from repro.mpi import RankFailedError

        def body(comm):
            comm.scatter([1, 2, 3] if comm.Get_rank() == 0 else None, root=0)

        with pytest.raises(RankFailedError):
            spmd(body, 2)

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        def body(comm):
            return comm.allgather(comm.Get_rank() ** 2)

        outs = spmd(body, size)
        expected = [r * r for r in range(size)]
        assert all(o == expected for o in outs)

    @pytest.mark.parametrize("size", SIZES)
    def test_alltoall_transpose(self, size):
        def body(comm):
            rank = comm.Get_rank()
            return comm.alltoall([(rank, j) for j in range(size)])

        outs = spmd(body, size)
        for r, out in enumerate(outs):
            assert out == [(i, r) for i in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize(
        "op,expected_fn",
        [
            (SUM, lambda size: sum(range(size))),
            (PROD, lambda size: int(np.prod(range(1, size + 1)))),
            (MAX, lambda size: size - 1),
            (MIN, lambda size: 0),
        ],
    )
    def test_reduce_ops(self, size, op, expected_fn):
        def body(comm):
            value = comm.Get_rank() + 1 if op is PROD else comm.Get_rank()
            return comm.reduce(value, op=op, root=0)

        outs = spmd(body, size)
        assert outs[0] == expected_fn(size)
        assert all(o is None for o in outs[1:])

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_sum(self, size):
        def body(comm):
            return comm.allreduce(comm.Get_rank() + 1, op=SUM)

        outs = spmd(body, size)
        assert all(o == size * (size + 1) // 2 for o in outs)

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_allreduce_maxloc(self, size):
        def body(comm):
            rank = comm.Get_rank()
            # value peaks in the middle so the loc is interesting
            value = -abs(rank - size // 2)
            return comm.allreduce((value, rank), op=MAXLOC)

        outs = spmd(body, size)
        assert all(o == (0, size // 2) for o in outs)

    def test_reduce_non_commutative_preserves_rank_order(self):
        concat = Op.Create(lambda a, b: a + b, commute=False)

        def body(comm):
            return comm.reduce(chr(ord("a") + comm.Get_rank()), op=concat, root=0)

        assert spmd(body, 5)[0] == "abcde"

    def test_allreduce_non_commutative(self):
        concat = Op.Create(lambda a, b: a + b, commute=False)

        def body(comm):
            return comm.allreduce([comm.Get_rank()], op=concat)

        outs = spmd(body, 4)
        assert all(o == [0, 1, 2, 3] for o in outs)

    @pytest.mark.parametrize("size", SIZES)
    def test_scan_inclusive_prefix(self, size):
        def body(comm):
            return comm.scan(comm.Get_rank() + 1, op=SUM)

        outs = spmd(body, size)
        assert outs == [sum(range(1, r + 2)) for r in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_exscan_exclusive_prefix(self, size):
        def body(comm):
            return comm.exscan(comm.Get_rank() + 1, op=SUM)

        outs = spmd(body, size)
        assert outs[0] is None
        assert outs[1:] == [sum(range(1, r + 1)) for r in range(1, size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_barrier_orders_phases(self, size):
        import threading

        def body(comm, log, lock):
            rank = comm.Get_rank()
            with lock:
                log.append(("pre", rank))
            comm.barrier()
            with lock:
                log.append(("post", rank))

        log: list = []
        spmd(body, size, log, __import__("threading").Lock())
        phases = [p for p, _r in log]
        assert phases == ["pre"] * size + ["post"] * size

    def test_back_to_back_collectives_do_not_cross_match(self):
        """A fast root racing into collective #2 must not corrupt #1."""

        def body(comm):
            first = comm.bcast("alpha" if comm.Get_rank() == 0 else None, root=0)
            second = comm.bcast("beta" if comm.Get_rank() == 0 else None, root=0)
            third = comm.allreduce(1, op=SUM)
            return (first, second, third)

        outs = spmd(body, 6)
        assert all(o == ("alpha", "beta", 6) for o in outs)


class TestBufferCollectives:
    @pytest.mark.parametrize("size", [1, 2, 4, 5])
    def test_Bcast_in_place(self, size):
        def body(comm):
            rank = comm.Get_rank()
            data = np.arange(100, dtype="i") if rank == 0 else np.empty(100, dtype="i")
            comm.Bcast(data, root=0)
            return int(data.sum())

        assert spmd(body, size) == [sum(range(100))] * size

    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_Scatter_tutorial_example(self, size):
        def body(comm):
            rank = comm.Get_rank()
            sendbuf = None
            if rank == 0:
                sendbuf = np.empty([size, 100], dtype="i")
                sendbuf.T[:, :] = range(size)
            recvbuf = np.empty(100, dtype="i")
            comm.Scatter(sendbuf, recvbuf, root=0)
            return bool(np.allclose(recvbuf, rank))

        assert all(spmd(body, size))

    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_Gather_tutorial_example(self, size):
        def body(comm):
            rank = comm.Get_rank()
            sendbuf = np.zeros(100, dtype="i") + rank
            recvbuf = np.empty([size, 100], dtype="i") if rank == 0 else None
            comm.Gather(sendbuf, recvbuf, root=0)
            if rank == 0:
                return all(np.allclose(recvbuf[i, :], i) for i in range(size))
            return True

        assert all(spmd(body, size))

    def test_Scatter_indivisible_raises(self):
        from repro.mpi import RankFailedError

        def body(comm):
            send = np.arange(10, dtype="i") if comm.Get_rank() == 0 else None
            recv = np.empty(3, dtype="i")
            comm.Scatter(send, recv, root=0)

        with pytest.raises(RankFailedError):
            spmd(body, 3)

    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_Scatterv_Gatherv_variable_segments(self, size):
        counts = [i + 1 for i in range(size)]
        total = sum(counts)

        def body(comm):
            rank = comm.Get_rank()
            recv = np.empty(counts[rank], dtype="d")
            send = [np.arange(total, dtype="d"), counts, None, MPI.DOUBLE] if rank == 0 else None
            comm.Scatterv(send, recv, root=0)
            displ = sum(counts[:rank])
            assert np.allclose(recv, np.arange(displ, displ + counts[rank]))
            out = None
            if rank == 0:
                out = np.zeros(total, dtype="d")
            comm.Gatherv(recv * 2, [out, counts, None, MPI.DOUBLE] if rank == 0 else None, root=0)
            return out.sum() if rank == 0 else None

        outs = spmd(body, size)
        assert outs[0] == 2 * sum(range(total))

    @pytest.mark.parametrize("size", [1, 2, 4, 5])
    def test_Allgather_matvec_style(self, size):
        def body(comm):
            rank = comm.Get_rank()
            x = np.full(3, float(rank))
            xg = np.zeros(3 * size, dtype="d")
            comm.Allgather([x, MPI.DOUBLE], [xg, MPI.DOUBLE])
            return xg.tolist()

        outs = spmd(body, size)
        expected = [float(r) for r in range(size) for _ in range(3)]
        assert all(o == expected for o in outs)

    @pytest.mark.parametrize("size", [2, 4])
    def test_Alltoall_typed(self, size):
        def body(comm):
            rank = comm.Get_rank()
            send = np.array(
                [rank * 10 + j for j in range(size)], dtype="i"
            )
            recv = np.empty(size, dtype="i")
            comm.Alltoall(send, recv)
            return recv.tolist()

        outs = spmd(body, size)
        for r, out in enumerate(outs):
            assert out == [i * 10 + r for i in range(size)]

    @pytest.mark.parametrize("size", [1, 2, 4, 5])
    def test_Reduce_and_Allreduce_elementwise(self, size):
        def body(comm):
            rank = comm.Get_rank()
            send = np.full(10, rank, dtype="d")
            recv = np.empty(10, dtype="d")
            comm.Reduce(send, recv if rank == 0 else recv, op=SUM, root=0)
            root_sum = float(recv[0]) if rank == 0 else None
            comm.Allreduce(send, recv, op=MAX)
            return (root_sum, float(recv[0]))

        outs = spmd(body, size)
        assert outs[0][0] == float(sum(range(size)))
        assert all(o[1] == float(size - 1) for o in outs)
