"""Event-bus layer: hook protocols, the recorder ring, arg sanitization."""

import threading

import pytest

from repro.mpi import hooks as mpi_hooks
from repro.obs import Event, Recorder, active, record, sanitize_args
from repro.openmp import hooks as omp_hooks


class TestTimestampedObservers:
    def test_plain_observer_protocol_unchanged(self):
        """The legacy observer(event, *args) protocol must not change."""
        seen = []

        def observer(event, *args):
            seen.append((event, args))

        omp_hooks.attach(observer)
        try:
            omp_hooks.emit("barrier_enter")
            omp_hooks.emit("acquire", "k")
        finally:
            omp_hooks.detach(observer)
        assert seen == [("barrier_enter", ()), ("acquire", ("k",))]

    def test_timestamped_observer_receives_clock(self):
        seen = []

        def observer(ts, event, *args):
            seen.append((ts, event, args))

        omp_hooks.attach(observer, timestamped=True)
        try:
            omp_hooks.emit("read", 0, None)
        finally:
            omp_hooks.detach(observer)
        assert len(seen) == 1
        ts, event, args = seen[0]
        assert isinstance(ts, float) and ts > 0.0
        assert event == "read"
        assert args == (0, None)

    def test_explicit_ts_passes_through(self):
        seen = []

        def observer(ts, event, *args):
            seen.append(ts)

        omp_hooks.attach(observer, timestamped=True)
        try:
            omp_hooks.emit("read", 0, None, ts=123.5)
        finally:
            omp_hooks.detach(observer)
        assert seen == [123.5]

    def test_both_protocols_coexist(self):
        plain, stamped = [], []

        def p(event, *args):
            plain.append(event)

        def t(ts, event, *args):
            stamped.append(event)

        mpi_hooks.attach(p)
        mpi_hooks.attach(t, timestamped=True)
        try:
            assert mpi_hooks.enabled
            mpi_hooks.emit("send", 1, 0, 1, 0, 16)
        finally:
            mpi_hooks.detach(p)
            mpi_hooks.detach(t)
        assert plain == ["send"]
        assert stamped == ["send"]
        assert not mpi_hooks.enabled

    def test_bound_method_observer_detaches(self):
        """Bound methods are fresh objects per access; detach must still work."""

        class Watcher:
            def observe(self, event, *args):
                pass

        w = Watcher()
        mpi_hooks.attach(w.observe)
        assert mpi_hooks.enabled
        mpi_hooks.detach(w.observe)  # a *different* bound-method object
        assert not mpi_hooks.enabled

    def test_enabled_reflects_either_observer_kind(self):
        def t(ts, event, *args):
            pass

        assert not omp_hooks.enabled
        omp_hooks.attach(t, timestamped=True)
        try:
            assert omp_hooks.enabled
        finally:
            omp_hooks.detach(t)
        assert not omp_hooks.enabled


class TestRecorder:
    def test_records_both_seams(self):
        with record() as rec:
            omp_hooks.emit("barrier_enter")
            mpi_hooks.emit("send", 1, 0, 1, 0, 8)
        sources = {(ev.source, ev.name) for ev in rec.events()}
        assert ("openmp", "barrier_enter") in sources
        assert ("mpi", "send") in sources

    def test_ring_capacity_and_dropped(self):
        rec = Recorder(capacity=4)
        for i in range(10):
            rec._file(float(i), "openmp", "read", (i,))
        assert len(rec) == 4
        assert rec.dropped == 6
        assert [ev.args[0] for ev in rec.events()] == [6, 7, 8, 9]

    def test_nested_recording_rejected(self):
        with record():
            with pytest.raises(RuntimeError, match="already active"):
                with record():
                    pass

    def test_active_tracks_context(self):
        assert active() is None
        with record() as rec:
            assert active() is rec
        assert active() is None

    def test_events_carry_thread_id(self):
        with record() as rec:
            omp_hooks.emit("read", 0, None)
        (ev,) = [e for e in rec.events() if e.name == "read"]
        assert ev.tid == threading.get_ident()


class TestSanitizeArgs:
    def test_scalars_pass_through(self):
        assert sanitize_args((1, 2.5, "x", True, None)) == (1, 2.5, "x", True, None)

    def test_objects_become_type_id_tuples(self):
        lock = threading.Lock()
        (out,) = sanitize_args((lock,))
        assert out[0] == "lock"
        assert isinstance(out[1], int)

    def test_nested_tuples_recurse(self):
        out = sanitize_args((("critical", 42),))
        assert out == (("critical", 42),)


class TestEvent:
    def test_shifted_zero_returns_self(self):
        ev = Event(ts=1.0, source="openmp", name="read")
        assert ev.shifted(0.0) is ev

    def test_shifted_moves_timestamp_only(self):
        ev = Event(ts=1.0, source="openmp", name="read", args=(1,), tid=7)
        moved = ev.shifted(2.5)
        assert moved.ts == 3.5
        assert (moved.name, moved.args, moved.tid) == ("read", (1,), 7)

    def test_lane_key(self):
        ev = Event(ts=0.0, source="mpi", name="send", tid=3, proc=("rank", 1))
        assert ev.lane_key() == (("rank", 1), 3)
