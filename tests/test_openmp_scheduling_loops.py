"""Loop scheduling and worksharing: partitions, reductions, hypothesis props."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.openmp import (
    DynamicScheduler,
    GuidedScheduler,
    REDUCTIONS,
    Reduction,
    for_loop,
    get_reduction,
    parallel_for,
    parallel_region,
    static_block_ranges,
    static_chunks,
)

FAST = settings(max_examples=50, deadline=None)


class TestStaticBlockRanges:
    def test_even_split(self):
        assert static_block_ranges(8, 4) == [
            range(0, 2), range(2, 4), range(4, 6), range(6, 8)
        ]

    def test_remainder_spread_over_leading_threads(self):
        ranges = static_block_ranges(10, 3)
        assert [len(r) for r in ranges] == [4, 3, 3]

    def test_more_threads_than_iterations(self):
        ranges = static_block_ranges(2, 5)
        assert [len(r) for r in ranges] == [1, 1, 0, 0, 0]

    def test_zero_iterations(self):
        assert all(len(r) == 0 for r in static_block_ranges(0, 4))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            static_block_ranges(-1, 2)
        with pytest.raises(ValueError):
            static_block_ranges(5, 0)

    @FAST
    @given(n=st.integers(0, 500), t=st.integers(1, 16))
    def test_property_exact_cover(self, n, t):
        ranges = static_block_ranges(n, t)
        flat = [i for r in ranges for i in r]
        assert flat == list(range(n))
        sizes = [len(r) for r in ranges]
        assert max(sizes) - min(sizes) <= 1  # balanced


class TestStaticChunks:
    def test_round_robin_chunk1(self):
        assert list(static_chunks(10, 3, 1, 0)) == [0, 3, 6, 9]
        assert list(static_chunks(10, 3, 1, 1)) == [1, 4, 7]

    def test_chunked_round_robin(self):
        assert list(static_chunks(12, 2, 3, 0)) == [0, 1, 2, 6, 7, 8]
        assert list(static_chunks(12, 2, 3, 1)) == [3, 4, 5, 9, 10, 11]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            list(static_chunks(10, 2, 0, 0))

    @FAST
    @given(n=st.integers(0, 300), t=st.integers(1, 8), c=st.integers(1, 9))
    def test_property_exact_cover(self, n, t, c):
        flat = sorted(i for thread in range(t) for i in static_chunks(n, t, c, thread))
        assert flat == list(range(n))


class TestDynamicGuidedSchedulers:
    def test_dynamic_claims_disjoint_chunks(self):
        sched = DynamicScheduler(10, chunk=3)
        chunks = []
        while True:
            c = sched.next_chunk()
            if not c:
                break
            chunks.append(list(c))
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_dynamic_concurrent_exact_cover(self):
        sched = DynamicScheduler(500, chunk=7)
        claimed: list[int] = []
        lock = threading.Lock()

        def worker():
            for i in sched:
                with lock:
                    claimed.append(i)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(claimed) == list(range(500))

    def test_guided_chunks_decay(self):
        sched = GuidedScheduler(100, num_threads=4, min_chunk=2)
        sizes = []
        while True:
            c = sched.next_chunk()
            if not c:
                break
            sizes.append(len(c))
        assert sum(sizes) == 100
        assert sizes[0] == 25  # 100 // 4
        assert sizes[0] >= sizes[-1]
        assert sizes[-1] >= 1

    @FAST
    @given(n=st.integers(0, 400), c=st.integers(1, 10))
    def test_dynamic_property_exact_cover(self, n, c):
        sched = DynamicScheduler(n, chunk=c)
        assert sorted(iter(sched)) == list(range(n))

    @FAST
    @given(n=st.integers(0, 400), t=st.integers(1, 8), c=st.integers(1, 6))
    def test_guided_property_exact_cover(self, n, t, c):
        sched = GuidedScheduler(n, num_threads=t, min_chunk=c)
        assert sorted(iter(sched)) == list(range(n))


class TestParallelFor:
    @pytest.mark.parametrize("schedule,chunk", [
        ("static", None), ("static", 1), ("static", 4),
        ("dynamic", 1), ("dynamic", 5), ("guided", None),
    ])
    @pytest.mark.parametrize("threads", [1, 3, 4])
    def test_sum_reduction_all_schedules(self, schedule, chunk, threads):
        total = parallel_for(
            200, lambda i: i, num_threads=threads, schedule=schedule,
            chunk=chunk, reduction="+",
        )
        assert total == sum(range(200))

    def test_product_reduction(self):
        assert parallel_for(6, lambda i: i + 1, num_threads=3, reduction="*") == 720

    def test_max_min_reductions(self):
        data = [3, 1, 4, 1, 5, 9, 2, 6]
        assert parallel_for(8, lambda i: data[i], num_threads=3, reduction="max") == 9
        assert parallel_for(8, lambda i: data[i], num_threads=3, reduction="min") == 1

    def test_logical_reductions(self):
        assert parallel_for(10, lambda i: i < 10, num_threads=2, reduction="&&") is True
        assert parallel_for(10, lambda i: i == 99, num_threads=2, reduction="||") is False

    def test_custom_reduction(self):
        longest = Reduction("longest", "", lambda a, b: a if len(a) >= len(b) else b)
        words = ["hi", "hello", "hey", "howdy!"]
        out = parallel_for(4, lambda i: words[i], num_threads=2, reduction=longest)
        assert out == "howdy!"

    def test_no_reduction_returns_none_and_covers(self):
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        assert parallel_for(57, body, num_threads=4, schedule="dynamic") is None
        assert sorted(seen) == list(range(57))

    def test_zero_iterations(self):
        assert parallel_for(0, lambda i: i, num_threads=4, reduction="+") == 0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            parallel_for(-1, lambda i: i)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            parallel_for(10, lambda i: i, schedule="chaotic")

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            parallel_for(10, lambda i: i, reduction="??")

    @FAST
    @given(
        n=st.integers(0, 200),
        threads=st.integers(1, 6),
        schedule=st.sampled_from(["static", "dynamic", "guided"]),
    )
    def test_property_reduction_equals_serial(self, n, threads, schedule):
        assert parallel_for(
            n, lambda i: i * i, num_threads=threads, schedule=schedule, reduction="+"
        ) == sum(i * i for i in range(n))


class TestForLoopInsideRegion:
    def test_reduction_result_on_every_thread(self):
        def body():
            return for_loop(lambda i: i, 100, reduction="+")

        assert parallel_region(body, num_threads=4) == [4950] * 4

    def test_dynamic_for_loop_inside_region(self):
        claimed = []
        lock = threading.Lock()

        def record(i):
            with lock:
                claimed.append(i)

        def body():
            for_loop(record, 83, schedule="dynamic", chunk=4)

        parallel_region(body, num_threads=3)
        assert sorted(claimed) == list(range(83))

    def test_sequential_fallback_outside_region(self):
        assert for_loop(lambda i: i, 10, reduction="+") == 45


class TestReductionRegistry:
    def test_all_registered_reductions_have_identities(self):
        for name, red in REDUCTIONS.items():
            # identity ⊕ x == x for a representative value of the right kind
            x = True if name in ("&&", "||") else 5
            assert red.combine(red.identity, x) == x, name

    def test_get_reduction_passthrough(self):
        custom = Reduction("c", 0, lambda a, b: a + b)
        assert get_reduction(custom) is custom

    def test_fold(self):
        assert REDUCTIONS["+"].fold([1, 2, 3]) == 6
        assert REDUCTIONS["max"].fold([]) == float("-inf")
