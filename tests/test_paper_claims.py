"""End-to-end reproduction checks: one test per table/figure/claim of the paper.

This is the executable version of EXPERIMENTS.md — each test pins a number
or qualitative shape the paper reports to what the reproduction computes.
"""

import pytest

from repro.assessment import figure3, figure4, table2
from repro.core import run_exemplar_study, simulate_workshop
from repro.exemplars import fire_curve_seq
from repro.kits import standard_pi_kit
from repro.patternlets import get_patternlet
from repro.runestone import (
    RACE_CONDITION_QUESTION,
    build_mpi_colab_notebook,
    build_raspberry_pi_module,
)


class TestTableI:
    def test_kit_costs_100_66(self):
        assert standard_pi_kit().cost() == 100.66

    def test_approximately_100_dollar_kit(self):
        assert abs(standard_pi_kit().cost() - 100) < 1.0


class TestTableII:
    def test_exact_means(self):
        assert table2().rows == (
            ("OpenMP on Raspberry Pi", 4.55, 4.45),
            ("MPI & Distr. Cluster Computing", 4.38, 4.29),
        )

    def test_every_session_rated_four_or_higher(self):
        for _session, a, b in table2().rows:
            assert a >= 4.0 and b >= 4.0


class TestFigure1:
    def test_race_condition_page_renders_with_question(self):
        from repro.runestone import render_section_text

        module = build_raspberry_pi_module()
        view = render_section_text(module.find_section("2.3"))
        assert "Q-2: What is a race condition?" in view
        assert "sp_mc_2" in view

    def test_answer_c_is_graded_correct(self):
        assert RACE_CONDITION_QUESTION.grade("C").correct


class TestFigure2:
    def test_colab_spmd_produces_four_greetings(self):
        notebook = build_mpi_colab_notebook(np=4)
        results = notebook.run_all()
        spmd = next(r for r in results if r.kind == "mpirun")
        lines = spmd.stdout.splitlines()
        assert len(lines) == 4
        for rank in range(4):
            assert any(
                line == f"Greetings from process {rank} of 4 on d6ff4f902ed6"
                for line in lines
            )


class TestFigure3:
    def test_pre_post_means_and_significance(self):
        test = figure3().test
        assert round(test.pre_mean, 2) == 2.82  # paper: pre_m = 2.82
        assert round(test.post_mean, 2) == 3.59  # paper: post_m = 3.59
        assert test.p_value == pytest.approx(0.0004, abs=5e-5)  # paper: 0.0004


class TestFigure4:
    def test_pre_post_means_and_significance(self):
        test = figure4().test
        assert round(test.pre_mean, 2) == 2.59  # paper: pre_m = 2.59
        assert round(test.post_mean, 2) == 3.77  # paper: post_m = 3.77
        assert test.p_value == pytest.approx(4.18e-8, rel=0.01)  # paper: 4.18e-08


class TestSectionIVClaims:
    def test_no_technical_difficulties_in_shared_memory_session(self):
        report = simulate_workshop()
        assert report.shared_memory_session.learners_with_issues == 0

    def test_colab_unicore_cannot_show_speedup(self):
        # "the Colab's single-core VMs prevent learners from experiencing
        # parallel speedup"
        for exemplar in ("integration", "forestfire", "drugdesign"):
            assert not run_exemplar_study(exemplar, "colab").study.shows_speedup()

    def test_chameleon_and_stolaf_show_good_speedup(self):
        # "this server provided good parallel speedup and scalability"
        for platform in ("stolaf-vm", "chameleon-cluster"):
            study = run_exemplar_study("forestfire", platform).study
            assert study.max_speedup > 8.0
            assert study.efficiencies[1] > 0.8  # near-linear at small counts

    def test_vnc_lockout_with_ssh_fallback(self):
        report = simulate_workshop(eager_beavers=2)
        assert len(report.vnc_incident.locked_out_participants) == 2
        assert report.vnc_incident.all_finished_via_ssh


class TestMaterialDesignClaims:
    def test_modules_fit_a_two_hour_lab_period(self):
        module = build_raspberry_pi_module()
        assert module.session_minutes == 120

    def test_pacing_is_30_60_30(self):
        module = build_raspberry_pi_module()
        session_chapters = [c for c in module.chapters if not c.pre_work]
        assert [c.minutes for c in session_chapters] == [30, 60, 30]

    def test_image_supports_3b_onward(self):
        from repro.kits import CSIP_IMAGE, SUPPORTED_MODELS, UNSUPPORTED_MODELS

        assert all(CSIP_IMAGE.supports(m) for m in SUPPORTED_MODELS)
        assert not any(CSIP_IMAGE.supports(m) for m in UNSUPPORTED_MODELS)

    def test_forest_fire_exemplar_shows_its_phase_transition(self):
        curve = fire_curve_seq(trials=6, size=21, seed=1)
        assert curve.is_monotone_nondecreasing()
        assert 0.3 <= curve.transition_prob() <= 0.8

    def test_deadlock_patternlet_is_safe_to_teach(self):
        # the broken version terminates with a detected deadlock, not a hang
        result = get_patternlet("mpi", "deadlock").run(np=2, timeout=5.0)
        assert result.values["deadlocked"]
