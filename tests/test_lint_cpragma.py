"""The ``#pragma omp`` parser and the C-listing consistency check."""

import pytest

from repro.analysis.lint import (
    CPragmaError,
    check_clistings,
    parse_pragma,
    parse_source,
)
from repro.patternlets import C_LISTINGS, get_patternlet, has_c_listing


class TestParsePragma:
    def test_bare_parallel(self):
        pragma = parse_pragma("#pragma omp parallel")
        assert pragma.directive == "parallel"
        assert pragma.clauses == ()

    def test_combined_parallel_for(self):
        pragma = parse_pragma("  # pragma omp parallel for schedule(static)")
        assert pragma.directive == "parallel for"
        assert pragma.has_clause("schedule")

    def test_data_clauses_and_args(self):
        pragma = parse_pragma(
            "#pragma omp parallel private(i, id) shared(total)")
        assert pragma.clause_args("private") == ("i", "id")
        assert pragma.data_vars() == {"i", "id", "total"}

    def test_reduction_operator_prefix_is_stripped(self):
        pragma = parse_pragma("#pragma omp parallel for reduction(+:sum)")
        assert pragma.data_vars("reduction") == {"sum"}

    def test_critical_takes_a_name_argument(self):
        pragma = parse_pragma("#pragma omp critical(update)")
        assert pragma.directive == "critical"

    def test_trailing_comment_is_ignored(self):
        pragma = parse_pragma("#pragma omp barrier  // wait here")
        assert pragma.directive == "barrier"

    @pytest.mark.parametrize("text,fragment", [
        ("#pragma omp paralel", "unknown omp directive"),
        ("#pragma omp parallel nosuchclause", "unknown omp clause"),
        ("#pragma omp parallel private(i", "unbalanced parentheses"),
        ("#pragma omp", "no directive"),
        ("#pragma omp for(i)", "does not take an argument list"),
        ("int x = 0;", "not an omp pragma"),
    ])
    def test_rejects_malformed_pragmas(self, text, fragment):
        with pytest.raises(CPragmaError, match=fragment):
            parse_pragma(text)

    def test_error_carries_line_number(self):
        with pytest.raises(CPragmaError) as excinfo:
            parse_pragma("#pragma omp paralel", lineno=42)
        assert excinfo.value.line == 42


class TestParseSource:
    def test_collects_pragmas_with_line_numbers(self):
        text = "int main() {\n#pragma omp parallel\n{\n#pragma omp barrier\n}\n}\n"
        pragmas, diagnostics = parse_source(text, "demo.c")
        assert [(p.line, p.directive) for p in pragmas] == [
            (2, "parallel"), (4, "barrier")]
        assert diagnostics == []

    def test_bad_pragma_becomes_diagnostic_not_exception(self):
        pragmas, diagnostics = parse_source(
            "#pragma omp paralel\n", "demo.c")
        assert pragmas == []
        assert diagnostics[0].details["rule"] == "parse-error"
        assert diagnostics[0].location == "demo.c:1"


class TestClistingConsistency:
    def test_all_listings_parse_and_match_registered_patternlets(self):
        report = check_clistings()
        assert report.clean, report.render()
        assert report.target == "clistings"
        assert report.notes  # summary note names the counts

    def test_every_openmp_patternlet_listing_is_reachable(self):
        for name in C_LISTINGS:
            assert has_c_listing(name)
            assert get_patternlet("openmp", name).c_listing == C_LISTINGS[name]
