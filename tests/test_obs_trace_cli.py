"""``repro trace`` CLI: exit codes, output modes, Chrome export."""

import json

import pytest

from repro.cli import main
from repro.openmp.backends import shutdown_pool


@pytest.fixture(autouse=True)
def _fresh_pool():
    yield
    shutdown_pool()


class TestTraceCommand:
    def test_openmp_patternlet_exits_zero(self, capsys):
        rc = main(["trace", "barrier", "--np", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "thread 0" in out
        assert "load imbalance" in out

    def test_mpi_patternlet_reports_messages(self, capsys):
        rc = main(["trace", "messagePassingRing", "--np", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "messages (src->dst: count, bytes):" in out
        assert "0->1:" in out

    def test_unknown_target_exits_2(self, capsys):
        rc = main(["trace", "definitelyNotAThing"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown trace target" in err
        assert "available:" in err

    def test_timeline_flag_appends_legend(self, capsys):
        rc = main(["trace", "barrier", "--np", "2", "--timeline"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "legend:" in out

    def test_json_output_is_schema_versioned(self, capsys):
        rc = main(["trace", "barrier", "--np", "2", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads(out)
        assert doc["schema"] == 1
        assert doc["profile"]["lanes"]
        assert "imbalance_ratio" in doc["profile"]

    def test_chrome_export_writes_valid_trace(self, capsys, tmp_path):
        from repro.obs import validate_chrome_trace

        path = tmp_path / "trace.json"
        rc = main(["trace", "broadcast", "--paradigm", "mpi", "--np", "3",
                   "--chrome", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_processes_backend_flag(self, capsys):
        rc = main(["trace", "reduce", "--paradigm", "mpi", "--np", "2",
                   "--backend", "processes"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rank 0" in out and "rank 1" in out

    def test_exemplar_target(self, capsys):
        rc = main(["trace", "integration", "--paradigm", "openmp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "thread" in out
