"""The process-rank launcher: real OS processes behind the ``comm`` API."""

from __future__ import annotations

import pytest

from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MPI_BACKENDS,
    PROC_NULL,
    RankFailedError,
    Status,
    fork_available,
    mpirun,
    run_procs,
)
from repro.mpi.launcher import _resolve_mpi_backend
from repro.mpi.ops import MAX, SUM

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process ranks need the fork start method"
)

TIMEOUT = 8.0


def _run(fn, np, *args, **kwargs):
    kwargs.setdefault("deadlock_timeout", TIMEOUT)
    return run_procs(fn, np, *args, **kwargs)


class TestBasics:
    def test_ranks_are_distinct_processes(self):
        import os

        parent = os.getpid()

        def body(comm):
            return (comm.Get_rank(), comm.Get_size(), os.getpid())

        out = _run(body, 3)
        assert [(r, s) for r, s, _ in out] == [(0, 3), (1, 3), (2, 3)]
        pids = [pid for _, _, pid in out]
        assert len(set(pids)) == 3 and parent not in pids

    def test_extra_args_forwarded(self):
        def body(comm, base, scale=1):
            return base + scale * comm.Get_rank()

        assert _run(body, 3, 100, scale=10) == [100, 110, 120]

    def test_closures_are_fine_under_fork(self):
        secret = {"value": 77}

        def body(comm):
            return secret["value"] + comm.Get_rank()

        assert _run(body, 2) == [77, 78]


class TestPointToPoint:
    def test_ring_exchange(self):
        def body(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            comm.send(rank, dest=(rank + 1) % size, tag=5)
            return comm.recv(source=(rank - 1) % size, tag=5)

        assert _run(body, 3) == [2, 0, 1]

    def test_status_and_wildcards(self):
        def body(comm):
            if comm.Get_rank() == 1:
                comm.send("hello", dest=0, tag=42)
                return None
            status = Status()
            msg = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            return (msg, status.Get_source(), status.Get_tag())

        out = _run(body, 2)
        assert out[0] == ("hello", 1, 42)

    def test_proc_null_send_recv_are_noops(self):
        def body(comm):
            comm.send("into the void", dest=PROC_NULL)
            return comm.recv(source=PROC_NULL)

        assert _run(body, 2) == [None, None]

    def test_sendrecv_swap(self):
        def body(comm):
            rank = comm.Get_rank()
            partner = 1 - rank
            return comm.sendrecv(f"from {rank}", dest=partner, source=partner)

        assert _run(body, 2) == ["from 1", "from 0"]


class TestCollectives:
    def test_bcast(self):
        def body(comm):
            payload = {"k": [1, 2, 3]} if comm.Get_rank() == 0 else None
            return comm.bcast(payload, root=0)

        out = _run(body, 3)
        assert out == [{"k": [1, 2, 3]}] * 3

    def test_scatter_gather_roundtrip(self):
        def body(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            blocks = [[i, i * i] for i in range(size)] if rank == 0 else None
            mine = comm.scatter(blocks, root=0)
            return comm.gather(mine, root=0)

        out = _run(body, 3)
        assert out[0] == [[0, 0], [1, 1], [2, 4]]
        assert out[1] is None and out[2] is None

    def test_allgather_and_allreduce(self):
        def body(comm):
            rank = comm.Get_rank()
            return (comm.allgather(rank), comm.allreduce(rank, op=SUM),
                    comm.allreduce(rank, op=MAX))

        out = _run(body, 3)
        assert out == [([0, 1, 2], 3, 2)] * 3

    def test_reduce_root_only(self):
        def body(comm):
            return comm.reduce(comm.Get_rank() + 1, op=SUM, root=0)

        out = _run(body, 3)
        assert out[0] == 6 and out[1] is None and out[2] is None

    def test_barrier(self):
        def body(comm):
            for _ in range(3):
                comm.barrier()
            return comm.Get_rank()

        assert _run(body, 3) == [0, 1, 2]


class TestCartesian:
    def test_shift_with_proc_null_edges(self):
        def body(comm):
            cart = comm.Create_cart((comm.Get_size(),), periods=(False,))
            left, right = cart.Shift(0, 1)
            return (left, right)

        out = _run(body, 3)
        assert out == [(PROC_NULL, 1), (0, 2), (1, PROC_NULL)]

    def test_periodic_shift_and_coords(self):
        def body(comm):
            cart = comm.Create_cart((comm.Get_size(),), periods=(True,))
            left, right = cart.Shift(0, 1)
            return (left, right, cart.Get_coords(cart.Get_rank()))

        out = _run(body, 3)
        assert out == [(2, 1, [0]), (0, 2, [1]), (1, 0, [2])]

    def test_halo_exchange_matches_thread_backend(self):
        import numpy as np

        from repro.exemplars.heat import heat_mpi, heat_seq

        expected = heat_seq(24, 12)
        import repro.exemplars.heat as heat_mod

        # Run the same exemplar body through run_procs via mpirun's backend.
        def run(backend):
            import os

            os.environ["REPRO_MPI_BACKEND"] = backend
            try:
                return heat_mod.heat_mpi(24, 12, np_procs=3)
            finally:
                os.environ.pop("REPRO_MPI_BACKEND", None)

        assert np.allclose(run("processes"), expected)
        assert np.allclose(heat_mpi(24, 12, np_procs=3), expected)


class TestFailures:
    def test_rank_exception_raises_rank_failed(self):
        def body(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("rank 1 exploded")
            return comm.Get_rank()

        with pytest.raises(RankFailedError, match="rank 1"):
            _run(body, 2)


class TestLauncherIntegration:
    def test_mpirun_backend_parameter(self):
        def body(comm):
            return comm.allreduce(comm.Get_rank(), op=SUM)

        threads = mpirun(body, 3, deadlock_timeout=TIMEOUT)
        procs = mpirun(body, 3, deadlock_timeout=TIMEOUT, backend="processes")
        assert threads == procs == [3, 3, 3]

    def test_backend_registry_and_env(self, monkeypatch):
        assert MPI_BACKENDS == ("threads", "processes")
        assert _resolve_mpi_backend(None) == "threads"
        monkeypatch.setenv("REPRO_MPI_BACKEND", "processes")
        assert _resolve_mpi_backend(None) == "processes"
        assert _resolve_mpi_backend("threads") == "threads"
        with pytest.raises(ValueError, match="unknown MPI backend"):
            _resolve_mpi_backend("carrier-pigeon")
