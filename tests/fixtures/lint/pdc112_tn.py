"""True negative for PDC112: send and receive counts pair up exactly.

The stream flows from rank 0 to rank 1 only; other ranks stand aside, so
the counts balance at any world size.
"""

from repro.mpi import mpirun


def stream(np: int = 2):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            for i in range(3):
                comm.send(i, dest=1, tag=5)
            return None
        if rank == 1:
            items = []
            for _ in range(3):
                items.append(comm.recv(source=0, tag=5))
            return items
        return None

    return mpirun(body, np)
