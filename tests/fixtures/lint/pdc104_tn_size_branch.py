"""True negative for PDC104 (flow flip): `num_ranks` is not a rank split."""

from repro.mpi import mpirun


def synchronized_setup(np: int = 4):
    def body(comm):
        num_ranks = comm.Get_size()
        if num_ranks > 1:
            comm.barrier()  # every rank takes this branch together
        return num_ranks

    return mpirun(body, np)
