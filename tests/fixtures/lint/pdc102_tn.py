"""True negative for PDC102: the barrier sits outside the single construct."""

from repro.openmp import barrier, parallel_region, single


def phase_sync(num_threads: int = 4) -> None:
    def body() -> None:
        if single():
            pass  # one thread does setup work here
        barrier()  # every thread reaches the barrier

    parallel_region(body, num_threads=num_threads)
