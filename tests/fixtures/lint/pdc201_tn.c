/* True negative for PDC201: the temporary is listed in private(). */
#include <stdio.h>
#include <omp.h>

int main() {
    int id = -1;
    #pragma omp parallel private(id)
    {
        id = omp_get_thread_num();
        printf("thread %d\n", id);
    }
    return 0;
}
