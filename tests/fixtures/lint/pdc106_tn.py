"""True negative for PDC106: acquire is paired with release in finally."""

import threading

_lock = threading.Lock()
_counter = [0]


def safe_increment() -> int:
    _lock.acquire()
    try:
        _counter[0] += 1
        return _counter[0]
    finally:
        _lock.release()


def safer_increment() -> int:
    with _lock:
        _counter[0] += 1
        return _counter[0]
