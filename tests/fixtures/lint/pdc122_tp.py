"""True positive for PDC122: the chunk size is guessed, remainder dumped.

``per`` undershoots the even share, so ranks 0..P-2 each take a sliver
and the last rank inherits everything left over — at P=4 it does more
than 3x the mean work.
"""

from repro.mpi import mpirun

N = 64


def tally(np: int = 4):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        per = max(1, N // (4 * size))
        lo = rank * per
        hi = lo + per if rank < size - 1 else N
        total = 0.0
        for item in range(lo, hi):
            for _rep in range(4):
                total = total + item
        return comm.gather(total, root=0)

    return mpirun(body, np)
