"""True positive for PDC106: a lock acquired but never released."""

import threading

_lock = threading.Lock()
_counter = [0]


def unsafe_increment() -> int:
    _lock.acquire()
    _counter[0] += 1
    return _counter[0]  # every return leaves the lock held
