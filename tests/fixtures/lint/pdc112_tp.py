"""True positive for PDC112: a receive that no send will ever match."""

from repro.mpi import mpirun


def collect(np: int = 2):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            return comm.recv(source=1, tag=3)  # rank 1 never sends
        return None

    return mpirun(body, np)
