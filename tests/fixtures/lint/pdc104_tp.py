"""True positive for PDC104: a collective inside an `if rank` branch."""

from repro.mpi import mpirun


def broadcast_wrong(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        data = None
        if rank == 0:
            data = comm.bcast([1, 2, 3], root=0)  # only rank 0 calls it
        return data

    return mpirun(body, np)
