"""Legacy helper with an unpaired acquire, ratcheted in the lint baseline."""

import threading

_lock = threading.Lock()


def grab() -> None:
    _lock.acquire()
