"""Legacy learner submission kept as ratchet debt (see legacy_baseline.json)."""

from repro.openmp import parallel_region


def tally(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        total = total + 1

    parallel_region(body, num_threads=num_threads)
    return total
