"""True negative for PDC101 (flow flip): a Lock under a neutral name guards."""

import threading

from repro.openmp import parallel_region

mutex = threading.Lock()


def safe_sum(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        with mutex:
            total = total + 1  # serialized by the mutex

    parallel_region(body, num_threads=num_threads)
    return total
