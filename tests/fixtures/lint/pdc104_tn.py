"""True negative for PDC104: every rank calls the collective."""

from repro.mpi import mpirun


def broadcast_right(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        data = [1, 2, 3] if rank == 0 else None
        data = comm.bcast(data, root=0)  # all ranks enter the collective
        return data

    return mpirun(body, np)
