"""True negative for PDC107: the body updates the shared flag via nonlocal."""

from repro.openmp import critical, parallel_region


def search(items, target, num_threads: int = 4) -> bool:
    found = False

    def body() -> None:
        nonlocal found
        if target in items:
            with critical("found"):
                found = True

    parallel_region(body, num_threads=num_threads)
    return found
