"""A true positive silenced by a pdclint suppression directive."""

from repro.openmp import parallel_region


def intentionally_racy(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        total = total + 1  # pdclint: disable=PDC101

    parallel_region(body, num_threads=num_threads)
    return total
