"""True positive for PDC105: the parallel_for body reads a neighbor element."""

from repro.openmp import parallel_for


def smooth(values: list[float]) -> float:
    def body(i: int) -> float:
        return values[i] + values[i - 1]  # depends on the previous iteration

    return parallel_for(len(values), body, num_threads=4, reduction="+")
