"""True positive for PDC121: a broadcast sits inside the time-step loop.

Every iteration pays full collective latency for one scalar; hoisting
the bcast (or batching the steps) amortizes it.
"""

from repro.mpi import mpirun


def relax(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        value = 1.0
        for _step in range(32):
            value = comm.bcast(value * 0.5 if rank == 0 else None, root=0)
        return value

    return mpirun(body, np)
