"""True negative for PDC108: every path to the shared write holds the lock."""

import threading

from repro.openmp import parallel_region

mutex = threading.Lock()


def tally(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        mutex.acquire()
        total = total + 1
        mutex.release()

    parallel_region(body, num_threads=num_threads)
    return total
