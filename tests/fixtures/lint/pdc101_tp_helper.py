"""True positive for PDC101 (flow flip): the racy write hides in a helper."""

from repro.openmp import parallel_region


def racy_sum(num_threads: int = 4) -> int:
    total = 0

    def bump() -> None:
        nonlocal total
        total = total + 1

    def body() -> None:
        bump()  # the helper's shared write runs with no lock held

    parallel_region(body, num_threads=num_threads)
    return total
