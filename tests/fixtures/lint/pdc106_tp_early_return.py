"""True positive for PDC106 (flow): an early return path skips release()."""

import threading

_lock = threading.Lock()
_cache: dict = {}


def lookup(key):
    _lock.acquire()
    if key not in _cache:
        return None  # leaves the lock held on the miss path
    value = _cache[key]
    _lock.release()
    return value
