"""True positive for PDC104 (flow flip): the rank test hides behind an alias."""

from repro.mpi import mpirun


def reduce_wrong(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        is_root = rank == 0
        total = None
        if is_root:
            total = comm.reduce(1, root=0)  # only the root calls it
        return total

    return mpirun(body, np)
