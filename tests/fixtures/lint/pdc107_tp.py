"""True positive for PDC107: the body forgets `nonlocal` on a result flag."""

from repro.openmp import parallel_region


def search(items, target, num_threads: int = 4) -> bool:
    found = False

    def body() -> None:
        if target in items:
            found = True  # rebinds a body-local, not the outer flag

    parallel_region(body, num_threads=num_threads)
    return found
