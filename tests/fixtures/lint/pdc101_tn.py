"""True negative for PDC101: the shared write is guarded by critical."""

from repro.openmp import critical, parallel_region


def safe_sum(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        with critical("sum"):
            total = total + 1  # safe: one thread at a time

    parallel_region(body, num_threads=num_threads)
    return total
