"""True negative for PDC105: each iteration touches only its own element."""

from repro.openmp import parallel_for


def square_sum(values: list[float]) -> float:
    def body(i: int) -> float:
        return values[i] * values[i]  # independent iterations

    return parallel_for(len(values), body, num_threads=4, reduction="+")
