"""True positive for PDC101: unsynchronized shared write in a parallel body."""

from repro.openmp import parallel_region


def racy_sum(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        total = total + 1  # racy read-modify-write on the closure variable

    parallel_region(body, num_threads=num_threads)
    return total
