"""True positive for PDC102: barrier() inside a single construct."""

from repro.openmp import barrier, parallel_region, single


def phase_sync(num_threads: int = 4) -> None:
    def body() -> None:
        if single():
            barrier()  # only the single winner arrives: the team hangs

    parallel_region(body, num_threads=num_threads)
