"""True positive for PDC103: every rank recv()s before it send()s."""

from repro.mpi import mpirun


def exchange(np: int = 2):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = (rank + 1) % size
        incoming = comm.recv(source=partner, tag=1)  # all ranks block here
        comm.send(rank, dest=partner, tag=1)
        return incoming

    return mpirun(body, np)
