"""True negative for PDC121: the broadcast is hoisted out of the loop.

One collective seeds every rank, then the time-step loop is pure local
arithmetic.
"""

from repro.mpi import mpirun


def relax(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        value = comm.bcast(1.0 if rank == 0 else None, root=0)
        for _step in range(32):
            value = value * 0.5
        return value

    return mpirun(body, np)
