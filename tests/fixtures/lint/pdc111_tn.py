"""True negative for PDC111: every rank issues the collectives in one order."""

from repro.mpi import mpirun


def staged(np: int = 4):
    def body(comm):
        rank = comm.Get_rank()
        data = comm.bcast("config" if rank == 0 else None, root=0)
        sizes = comm.gather(len(data), root=0)
        return sizes

    return mpirun(body, np)
