"""True negative for PDC103: rank parity breaks the exchange symmetry."""

from repro.mpi import mpirun


def exchange(np: int = 2):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = (rank + 1) % size
        if rank % 2 == 0:
            comm.send(rank, dest=partner, tag=1)
            incoming = comm.recv(source=partner, tag=1)
        else:
            incoming = comm.recv(source=partner, tag=1)
            comm.send(rank, dest=partner, tag=1)
        return incoming

    return mpirun(body, np)
