"""True negative for PDC103: rank parity breaks the exchange symmetry.

Pairs ranks as (0,1), (2,3), ... — valid for every even world size, and
the launcher refuses odd ones, so the verdict holds for all runnable P.
"""

from repro.mpi import mpirun


def exchange(np: int = 2):
    if np < 2 or np % 2:
        raise ValueError("pairwise exchange needs an even process count")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = rank ^ 1
        if rank % 2 == 0:
            comm.send(rank, dest=partner, tag=1)
            incoming = comm.recv(source=partner, tag=1)
        else:
            incoming = comm.recv(source=partner, tag=1)
            comm.send(rank, dest=partner, tag=1)
        return incoming

    return mpirun(body, np)
