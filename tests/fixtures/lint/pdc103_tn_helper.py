"""True negative for PDC103 (flow flip): the recv-first helper is rank-gated."""

from repro.mpi import mpirun


def receive_then_send(comm, partner):
    incoming = comm.recv(source=partner, tag=3)
    comm.send("ack", dest=partner, tag=3)
    return incoming


def exchange(np: int = 2):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = (rank + 1) % size
        if rank % 2 == 0:
            comm.send("ping", dest=partner, tag=3)
            return comm.recv(source=partner, tag=3)
        return receive_then_send(comm, partner)

    return mpirun(body, np)
