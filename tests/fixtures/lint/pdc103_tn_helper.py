"""True negative for PDC103 (flow flip): the recv-first helper is rank-gated.

Even/odd neighbours pair via ``rank ^ 1``; odd world sizes are rejected
by the launcher, so the parity split is safe for every runnable P.
"""

from repro.mpi import mpirun


def receive_then_send(comm, partner):
    incoming = comm.recv(source=partner, tag=3)
    comm.send("ack", dest=partner, tag=3)
    return incoming


def exchange(np: int = 2):
    if np < 2 or np % 2:
        raise ValueError("pairwise exchange needs an even process count")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = rank ^ 1
        if rank % 2 == 0:
            comm.send("ping", dest=partner, tag=3)
            return comm.recv(source=partner, tag=3)
        return receive_then_send(comm, partner)

    return mpirun(body, np)
