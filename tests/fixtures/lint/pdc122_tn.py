"""True negative for PDC122: divmod chunking splits the range evenly.

Every rank gets ``base`` or ``base + 1`` items, so the work profile is
flat at every world size.
"""

from repro.mpi import mpirun

N = 64


def tally(np: int = 4):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        base, extra = divmod(N, size)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        total = 0.0
        for item in range(lo, hi):
            for _rep in range(4):
                total = total + item
        return comm.gather(total, root=0)

    return mpirun(body, np)
