/* True negative for PDC203: the implied barrier separates the two loops. */
#include <stdio.h>
#include <omp.h>

int main() {
    double a[100], b[100];
    #pragma omp parallel
    {
        #pragma omp for
        for (int i = 0; i < 100; i++) {
            a[i] = i * 0.5;
        }
        #pragma omp for
        for (int i = 0; i < 100; i++) {
            b[i] = a[i] * 2.0;
        }
    }
    printf("%f\n", b[0]);
    return 0;
}
