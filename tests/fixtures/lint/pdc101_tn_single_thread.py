"""True negative for PDC101 (flow flip): a master-only write cannot race."""

from repro.openmp import master, parallel_region


def tag_run(num_threads: int = 4) -> str:
    label = ""

    def body() -> None:
        nonlocal label
        if master():
            label = "visited"  # one thread only: no concurrent writer

    parallel_region(body, num_threads=num_threads)
    return label
