"""True positive for PDC120: rank 0 hands out work one send at a time.

The fan-out loop serializes O(P) messages through a single rank — the
classic master/worker shape that a ``scatter`` would parallelize.
"""

from repro.mpi import mpirun


def distribute(np: int = 4):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        if rank == 0:
            for worker in range(1, size):
                comm.send(worker * 10, dest=worker, tag=1)
            return 0
        return comm.recv(source=0, tag=1)

    return mpirun(body, np)
