"""True positive for PDC110: each rank waits for a message never yet sent."""

from repro.mpi import mpirun


def crossed(np: int = 2):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            ack = comm.recv(source=1, tag=1)  # waits for the ack first
            comm.send("query", dest=1, tag=2)
            return ack
        query = comm.recv(source=0, tag=2)  # waits for the query first
        comm.send("ack", dest=0, tag=1)
        return query

    return mpirun(body, np)
