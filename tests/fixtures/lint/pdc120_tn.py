"""True negative for PDC120: the fan-out goes through a collective.

``scatter`` moves the same data as the send loop but the runtime's
algorithm spreads the traffic, so no single rank serializes it.
"""

from repro.mpi import mpirun


def distribute(np: int = 4):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        chunks = [r * 10 for r in range(size)] if rank == 0 else None
        return comm.scatter(chunks, root=0)

    return mpirun(body, np)
