"""True positive for PDC108: the shared write is guarded on one path only."""

import threading

from repro.openmp import get_thread_num, parallel_region

mutex = threading.Lock()


def tally(num_threads: int = 4) -> int:
    total = 0

    def body() -> None:
        nonlocal total
        if get_thread_num() == 0:
            mutex.acquire()
        total = total + 1  # guarded only on thread 0's path
        if get_thread_num() == 0:
            mutex.release()

    parallel_region(body, num_threads=num_threads)
    return total
