/* True positive for PDC201: per-thread temporary missing from private(). */
#include <stdio.h>
#include <omp.h>

int main() {
    int id = -1;
    #pragma omp parallel
    {
        id = omp_get_thread_num();
        printf("thread %d\n", id);
    }
    return 0;
}
