/* True positive for PDC202: accumulation variable missing from reduction(). */
#include <stdio.h>
#include <omp.h>

int main() {
    const int N = 1000000;
    long sum = 0;
    #pragma omp parallel for
    for (int i = 1; i <= N; i++) {
        sum += i;
    }
    printf("sum = %ld\n", sum);
    return 0;
}
