"""True positive for PDC103 (flow flip): a size guard hid the exchange."""

from repro.mpi import mpirun


def exchange(np: int = 2):
    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = (rank + 1) % size
        if size > 1:
            incoming = comm.recv(source=partner, tag=9)  # every rank waits
            comm.send(rank, dest=partner, tag=9)
            return incoming
        return None

    return mpirun(body, np)
