"""True positive for PDC111: ranks disagree on the collective call order."""

from repro.mpi import mpirun


def misordered(np: int = 2):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            data = comm.bcast("config", root=0)
            sizes = comm.gather(1, root=0)
        else:
            sizes = comm.gather(1, root=0)
            data = comm.bcast(None, root=0)
        return (data, sizes)

    return mpirun(body, np)
