"""True negative for PDC110: request-reply pairs the waits correctly.

Only ranks 0 and 1 take part; every other rank returns immediately, so
the protocol is clean at any world size.
"""

from repro.mpi import mpirun


def request_reply(np: int = 2):
    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            comm.send("query", dest=1, tag=2)
            return comm.recv(source=1, tag=1)
        if rank == 1:
            query = comm.recv(source=0, tag=2)
            comm.send(f"reply to {query}", dest=0, tag=1)
        return None

    return mpirun(body, np)
