/* True negative for PDC202: the accumulation rides a reduction clause. */
#include <stdio.h>
#include <omp.h>

int main() {
    const int N = 1000000;
    long sum = 0;
    #pragma omp parallel for reduction(+:sum)
    for (int i = 1; i <= N; i++) {
        sum += i;
    }
    printf("sum = %ld\n", sum);
    return 0;
}
