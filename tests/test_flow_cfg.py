"""Units for the flow package: CFG shape, dominators, dataflow, MHP, callgraph."""

import ast

import pytest

from repro.analysis.flow import (
    LiveVariables,
    MHPAnalysis,
    ReachingDefinitions,
    build_callgraph,
    build_cfg,
    solve,
)
from repro.analysis.flow.dataflow import facts_at, stmt_defs, stmt_uses


def _func(src: str) -> ast.FunctionDef:
    tree = ast.parse(src)
    return next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )


def _stmt_at(cfg, line: int) -> ast.stmt:
    for _, stmt in cfg.statements():
        if getattr(stmt, "lineno", None) == line:
            return stmt
    raise AssertionError(f"no CFG statement at line {line}")


class TestCFGShape:
    def test_straight_line_single_body_block(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = a\n    return b\n"))
        lines = [getattr(s, "lineno", 0) for _, s in cfg.statements()]
        assert lines == [2, 3, 4]
        assert cfg.exit in cfg.reachable_forward(cfg.entry)

    def test_if_else_branches_and_join(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        then_block = cfg.block_of(_stmt_at(cfg, 3))
        else_block = cfg.block_of(_stmt_at(cfg, 5))
        join_block = cfg.block_of(_stmt_at(cfg, 6))
        assert then_block.id != else_block.id
        assert join_block.id in then_block.succs
        assert join_block.id in else_block.succs

    def test_while_loop_has_back_edge(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    return n\n"
        ))
        body = cfg.block_of(_stmt_at(cfg, 3))
        header = next(b for b in cfg.blocks.values() if b.label == "while")
        assert header.id in body.succs  # back edge
        assert body.id in header.succs

    def test_break_exits_loop(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while True:\n"
            "        break\n"
            "    return n\n"
        ))
        body = cfg.block_of(_stmt_at(cfg, 3))
        after = cfg.block_of(_stmt_at(cfg, 4))
        assert after.id in body.succs

    def test_return_routes_through_finally(self):
        cfg = build_cfg(_func(
            "def f(lock):\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        lock.release()\n"
        ))
        ret_block = cfg.block_of(_stmt_at(cfg, 3))
        fin_block = cfg.block_of(_stmt_at(cfg, 5))
        assert fin_block.id in ret_block.succs
        assert cfg.exit not in ret_block.succs

    def test_dead_code_after_return_stays_queryable(self):
        cfg = build_cfg(_func("def f():\n    return 1\n    x = 2\n"))
        dead = cfg.block_of(_stmt_at(cfg, 3))
        assert dead is not None
        assert dead.id not in cfg.reachable_forward(cfg.entry)

    def test_non_function_raises(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])


class TestCFGEdgeCases:
    """Constructs that used to crash or mis-wire the builder: ``while…else``,
    ``continue`` through nested ``try/finally``, ``match``, comprehensions.
    Each must produce a well-formed graph — never an exception."""

    def test_while_else_runs_on_normal_exit_only(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    else:\n"
            "        n = -1\n"
            "    return n\n"
        ))
        header = next(b for b in cfg.blocks.values() if b.label == "while")
        orelse = cfg.block_of(_stmt_at(cfg, 5))
        after = cfg.block_of(_stmt_at(cfg, 6))
        assert orelse.id in header.succs
        assert after.id in orelse.succs
        # the only way past the loop goes through the else suite
        assert after.id not in header.succs

    def test_break_skips_while_else(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        break\n"
            "    else:\n"
            "        n = -1\n"
            "    return n\n"
        ))
        body = cfg.block_of(_stmt_at(cfg, 3))
        orelse = cfg.block_of(_stmt_at(cfg, 5))
        after = cfg.block_of(_stmt_at(cfg, 6))
        assert after.id in body.succs       # break -> after, directly
        assert orelse.id not in body.succs  # ...never via the else suite

    def test_for_else_mirrors_while_else(self):
        cfg = build_cfg(_func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        pass\n"
            "    else:\n"
            "        x = None\n"
            "    return x\n"
        ))
        header = next(b for b in cfg.blocks.values() if b.label == "for")
        orelse = cfg.block_of(_stmt_at(cfg, 5))
        assert orelse.id in header.succs
        assert cfg.exit in cfg.reachable_forward(cfg.entry)

    def test_continue_routes_through_finally(self):
        cfg = build_cfg(_func(
            "def f(lock, xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            continue\n"
            "        finally:\n"
            "            lock.release()\n"
            "    return 0\n"
        ))
        cont = cfg.block_of(_stmt_at(cfg, 4))
        fin = cfg.block_of(_stmt_at(cfg, 6))
        header = next(b for b in cfg.blocks.values() if b.label == "for")
        assert fin.id in cont.succs         # continue runs the cleanup first
        assert header.id not in cont.succs  # ...not the loop header directly
        assert header.id in fin.succs       # then re-enters the loop

    def test_continue_chains_through_nested_finallys(self):
        cfg = build_cfg(_func(
            "def f(a, b, xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            try:\n"
            "                continue\n"
            "            finally:\n"
            "                a.release()\n"
            "        finally:\n"
            "            b.release()\n"
            "    return 0\n"
        ))
        cont = cfg.block_of(_stmt_at(cfg, 5))
        inner_fin = cfg.block_of(_stmt_at(cfg, 7))
        outer_fin = cfg.block_of(_stmt_at(cfg, 9))
        header = next(b for b in cfg.blocks.values() if b.label == "for")
        assert inner_fin.id in cont.succs
        assert outer_fin.id in inner_fin.succs
        assert header.id in outer_fin.succs

    def test_break_routes_through_finally(self):
        cfg = build_cfg(_func(
            "def f(lock, xs):\n"
            "    for x in xs:\n"
            "        try:\n"
            "            break\n"
            "        finally:\n"
            "            lock.release()\n"
            "    return 0\n"
        ))
        brk = cfg.block_of(_stmt_at(cfg, 4))
        fin = cfg.block_of(_stmt_at(cfg, 6))
        after = cfg.block_of(_stmt_at(cfg, 7))
        assert fin.id in brk.succs
        assert after.id in fin.succs

    def test_match_arms_branch_and_join(self):
        cfg = build_cfg(_func(
            "def f(cmd):\n"
            "    match cmd:\n"
            "        case 'start':\n"
            "            r = 1\n"
            "        case 'stop':\n"
            "            r = 2\n"
            "    return r\n"
        ))
        arm1 = cfg.block_of(_stmt_at(cfg, 4))
        arm2 = cfg.block_of(_stmt_at(cfg, 6))
        after = cfg.block_of(_stmt_at(cfg, 7))
        dispatch = next(b for b in cfg.blocks.values()
                        if arm1.id in b.succs and arm2.id in b.succs)
        assert after.id in arm1.succs and after.id in arm2.succs
        # without a wildcard arm, no-match falls through the dispatch
        assert after.id in dispatch.succs

    def test_match_with_wildcard_is_exhaustive(self):
        cfg = build_cfg(_func(
            "def f(cmd):\n"
            "    match cmd:\n"
            "        case 'start':\n"
            "            return 1\n"
            "        case _:\n"
            "            return 2\n"
        ))
        arm1 = cfg.block_of(_stmt_at(cfg, 4))
        dispatch = next(b for b in cfg.blocks.values()
                        if arm1.id in b.succs)
        # every arm returns and the wildcard always matches: nothing after
        reachable = cfg.reachable_forward(dispatch.id)
        assert cfg.exit in reachable
        assert all(not cfg.blocks[b].stmts or b == cfg.exit
                   for b in dispatch.succs
                   if cfg.blocks[b].label.startswith("after"))

    def test_match_every_arm_returning_ends_flow(self):
        cfg = build_cfg(_func(
            "def f(cmd):\n"
            "    match cmd:\n"
            "        case _:\n"
            "            return 1\n"
        ))
        assert cfg.exit in cfg.reachable_forward(cfg.entry)

    def test_comprehension_statements_build_clean(self):
        cfg = build_cfg(_func(
            "def f(items, n):\n"
            "    squares = [x * x for x in items]\n"
            "    table = {k: v for k, v in items if k < n}\n"
            "    total = sum(y for y in squares)\n"
            "    return total, table\n"
        ))
        lines = [getattr(s, "lineno", 0) for _, s in cfg.statements()]
        assert lines == [2, 3, 4, 5]
        assert cfg.exit in cfg.reachable_forward(cfg.entry)

    def test_comprehension_target_is_not_a_use(self):
        stmt = ast.parse("squares = [x * x for x in items]").body[0]
        assert stmt_uses(stmt) == {"items"}
        assert stmt_defs(stmt) == {"squares"}

    def test_comprehension_scoping_keeps_outer_uses(self):
        # the x outside the comprehension is a real use; the comp-local
        # x and the generator's own iterable both resolve correctly
        stmt = ast.parse("r = x + sum(x * f for x in xs if x > lo)").body[0]
        assert stmt_uses(stmt) == {"x", "f", "xs", "lo", "sum"}

    def test_nested_comprehension_scopes(self):
        stmt = ast.parse(
            "m = [[row[i] for row in grid] for i in range(n)]").body[0]
        assert stmt_uses(stmt) == {"grid", "range", "n"}


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    return x\n"
        ))
        doms = cfg.dominators()
        for bid in cfg.blocks:
            if bid in cfg.reachable_forward(cfg.entry) or bid == cfg.entry:
                assert cfg.entry in doms[bid]

    def test_branch_does_not_dominate_join(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        then_block = cfg.block_of(_stmt_at(cfg, 3))
        join_block = cfg.block_of(_stmt_at(cfg, 6))
        assert not cfg.dominates(then_block.id, join_block.id)
        # but the test block (which holds no stmts here, it's the body
        # block carrying the If test) dominates the join
        test_block = next(
            b for b in cfg.blocks.values() if b.test is not None
        )
        assert cfg.dominates(test_block.id, join_block.id)


class TestDefUse:
    def test_assign_and_augassign(self):
        a, b = ast.parse("x = y\nx += z\n").body
        assert stmt_defs(a) == {"x"} and stmt_uses(a) == {"y"}
        assert stmt_defs(b) == {"x"} and stmt_uses(b) == {"x", "z"}

    def test_with_and_for_targets(self):
        w, f = ast.parse(
            "with open(p) as fh:\n    pass\nfor i in xs:\n    pass\n"
        ).body
        assert stmt_defs(w) == {"fh"} and stmt_uses(w) == {"open", "p"}
        assert stmt_defs(f) == {"i"} and stmt_uses(f) == {"xs"}


class TestWorklistSolver:
    def test_reaching_definitions_merge_at_join(self):
        func = _func(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        problem = ReachingDefinitions()
        in_sets, _ = solve(cfg, problem)
        ret = _stmt_at(cfg, 5)
        block = cfg.block_of(ret)
        reaching = facts_at(problem, cfg, in_sets, block, ret)
        assert ("a", 2) in reaching and ("a", 4) in reaching

    def test_redefinition_kills_older_def(self):
        func = _func("def f():\n    a = 1\n    a = 2\n    return a\n")
        cfg = build_cfg(func)
        problem = ReachingDefinitions()
        in_sets, _ = solve(cfg, problem)
        ret = _stmt_at(cfg, 4)
        reaching = facts_at(problem, cfg, in_sets, cfg.block_of(ret), ret)
        assert ("a", 3) in reaching and ("a", 2) not in reaching

    def test_live_variables_backward(self):
        func = _func("def f():\n    a = 1\n    b = 2\n    return a\n")
        cfg = build_cfg(func)
        problem = LiveVariables()
        in_sets, _ = solve(cfg, problem)
        first = _stmt_at(cfg, 2)
        live_before = facts_at(
            problem, cfg, in_sets, cfg.block_of(first), first, after=True
        )
        assert "a" not in live_before  # defined right here
        second = _stmt_at(cfg, 3)
        live_after_b = facts_at(
            problem, cfg, in_sets, cfg.block_of(second), second
        )
        assert "a" in live_after_b and "b" not in live_after_b


class TestMHP:
    def _analysis(self, src: str) -> tuple[MHPAnalysis, ast.Module]:
        tree = ast.parse(src)
        body = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "body"
        )
        return MHPAnalysis(body, module=tree), tree

    def test_with_lock_guard_is_must_held(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    with mutex:\n"
            "        total = 1\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign)
        )
        assert mhp.facts(write).guarded

    def test_conditional_acquire_is_partial(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body(flag):\n"
            "    if flag:\n"
            "        mutex.acquire()\n"
            "    total = 1\n"
            "    if flag:\n"
            "        mutex.release()\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign) and s.lineno == 6
        )
        facts = mhp.facts(write)
        assert not facts.guarded
        assert facts.partially_guarded

    def test_balanced_acquire_release_is_must_held(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    mutex.acquire()\n"
            "    total = 1\n"
            "    mutex.release()\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign) and s.lineno == 5
        )
        assert mhp.facts(write).guarded

    def test_master_branch_is_one_thread(self):
        mhp, _ = self._analysis(
            "from repro.openmp import master\n"
            "def body():\n"
            "    if master():\n"
            "        total = 1\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign)
        )
        facts = mhp.facts(write)
        assert facts.one_thread and facts.guarded

    def test_may_race_respects_common_lock(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    with mutex:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        a = next(s for _, s in mhp.cfg.statements()
                 if isinstance(s, ast.Assign) and s.lineno == 5)
        b = next(s for _, s in mhp.cfg.statements()
                 if isinstance(s, ast.Assign) and s.lineno == 6)
        assert not mhp.may_race(a, a)  # shares the lock with itself
        assert mhp.may_race(b, b)  # unguarded against another instance


class TestCallGraph:
    def test_helper_shared_write_summary(self):
        tree = ast.parse(
            "def outer():\n"
            "    total = 0\n"
            "    def bump():\n"
            "        nonlocal total\n"
            "        total = total + 1\n"
            "    def body():\n"
            "        bump()\n"
        )
        graph = build_callgraph(tree)
        assert "total" in graph.summary("bump").shared_writes
        body = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "body"
        )
        effective = graph.effective_summary(body, "body")
        # the helper's write surfaces at the call-site line
        assert effective.shared_writes == {"total": 7}

    def test_one_level_only(self):
        tree = ast.parse(
            "def a():\n"
            "    b()\n"
            "def b():\n"
            "    c()\n"
            "def c():\n"
            "    global g\n"
            "    g = 1\n"
        )
        graph = build_callgraph(tree)
        via_b = graph.effective_summary(graph.summary("b").node, "b")
        assert "g" in via_b.shared_writes
        via_a = graph.effective_summary(graph.summary("a").node, "a")
        assert "g" not in via_a.shared_writes  # two hops away: not chased
