"""Units for the flow package: CFG shape, dominators, dataflow, MHP, callgraph."""

import ast

import pytest

from repro.analysis.flow import (
    LiveVariables,
    MHPAnalysis,
    ReachingDefinitions,
    build_callgraph,
    build_cfg,
    solve,
)
from repro.analysis.flow.dataflow import facts_at, stmt_defs, stmt_uses


def _func(src: str) -> ast.FunctionDef:
    tree = ast.parse(src)
    return next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )


def _stmt_at(cfg, line: int) -> ast.stmt:
    for _, stmt in cfg.statements():
        if getattr(stmt, "lineno", None) == line:
            return stmt
    raise AssertionError(f"no CFG statement at line {line}")


class TestCFGShape:
    def test_straight_line_single_body_block(self):
        cfg = build_cfg(_func("def f():\n    a = 1\n    b = a\n    return b\n"))
        lines = [getattr(s, "lineno", 0) for _, s in cfg.statements()]
        assert lines == [2, 3, 4]
        assert cfg.exit in cfg.reachable_forward(cfg.entry)

    def test_if_else_branches_and_join(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        then_block = cfg.block_of(_stmt_at(cfg, 3))
        else_block = cfg.block_of(_stmt_at(cfg, 5))
        join_block = cfg.block_of(_stmt_at(cfg, 6))
        assert then_block.id != else_block.id
        assert join_block.id in then_block.succs
        assert join_block.id in else_block.succs

    def test_while_loop_has_back_edge(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    return n\n"
        ))
        body = cfg.block_of(_stmt_at(cfg, 3))
        header = next(b for b in cfg.blocks.values() if b.label == "while")
        assert header.id in body.succs  # back edge
        assert body.id in header.succs

    def test_break_exits_loop(self):
        cfg = build_cfg(_func(
            "def f(n):\n"
            "    while True:\n"
            "        break\n"
            "    return n\n"
        ))
        body = cfg.block_of(_stmt_at(cfg, 3))
        after = cfg.block_of(_stmt_at(cfg, 4))
        assert after.id in body.succs

    def test_return_routes_through_finally(self):
        cfg = build_cfg(_func(
            "def f(lock):\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        lock.release()\n"
        ))
        ret_block = cfg.block_of(_stmt_at(cfg, 3))
        fin_block = cfg.block_of(_stmt_at(cfg, 5))
        assert fin_block.id in ret_block.succs
        assert cfg.exit not in ret_block.succs

    def test_dead_code_after_return_stays_queryable(self):
        cfg = build_cfg(_func("def f():\n    return 1\n    x = 2\n"))
        dead = cfg.block_of(_stmt_at(cfg, 3))
        assert dead is not None
        assert dead.id not in cfg.reachable_forward(cfg.entry)

    def test_non_function_raises(self):
        with pytest.raises(TypeError):
            build_cfg(ast.parse("x = 1").body[0])


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    return x\n"
        ))
        doms = cfg.dominators()
        for bid in cfg.blocks:
            if bid in cfg.reachable_forward(cfg.entry) or bid == cfg.entry:
                assert cfg.entry in doms[bid]

    def test_branch_does_not_dominate_join(self):
        cfg = build_cfg(_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        then_block = cfg.block_of(_stmt_at(cfg, 3))
        join_block = cfg.block_of(_stmt_at(cfg, 6))
        assert not cfg.dominates(then_block.id, join_block.id)
        # but the test block (which holds no stmts here, it's the body
        # block carrying the If test) dominates the join
        test_block = next(
            b for b in cfg.blocks.values() if b.test is not None
        )
        assert cfg.dominates(test_block.id, join_block.id)


class TestDefUse:
    def test_assign_and_augassign(self):
        a, b = ast.parse("x = y\nx += z\n").body
        assert stmt_defs(a) == {"x"} and stmt_uses(a) == {"y"}
        assert stmt_defs(b) == {"x"} and stmt_uses(b) == {"x", "z"}

    def test_with_and_for_targets(self):
        w, f = ast.parse(
            "with open(p) as fh:\n    pass\nfor i in xs:\n    pass\n"
        ).body
        assert stmt_defs(w) == {"fh"} and stmt_uses(w) == {"open", "p"}
        assert stmt_defs(f) == {"i"} and stmt_uses(f) == {"xs"}


class TestWorklistSolver:
    def test_reaching_definitions_merge_at_join(self):
        func = _func(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        a = 2\n"
            "    return a\n"
        )
        cfg = build_cfg(func)
        problem = ReachingDefinitions()
        in_sets, _ = solve(cfg, problem)
        ret = _stmt_at(cfg, 5)
        block = cfg.block_of(ret)
        reaching = facts_at(problem, cfg, in_sets, block, ret)
        assert ("a", 2) in reaching and ("a", 4) in reaching

    def test_redefinition_kills_older_def(self):
        func = _func("def f():\n    a = 1\n    a = 2\n    return a\n")
        cfg = build_cfg(func)
        problem = ReachingDefinitions()
        in_sets, _ = solve(cfg, problem)
        ret = _stmt_at(cfg, 4)
        reaching = facts_at(problem, cfg, in_sets, cfg.block_of(ret), ret)
        assert ("a", 3) in reaching and ("a", 2) not in reaching

    def test_live_variables_backward(self):
        func = _func("def f():\n    a = 1\n    b = 2\n    return a\n")
        cfg = build_cfg(func)
        problem = LiveVariables()
        in_sets, _ = solve(cfg, problem)
        first = _stmt_at(cfg, 2)
        live_before = facts_at(
            problem, cfg, in_sets, cfg.block_of(first), first, after=True
        )
        assert "a" not in live_before  # defined right here
        second = _stmt_at(cfg, 3)
        live_after_b = facts_at(
            problem, cfg, in_sets, cfg.block_of(second), second
        )
        assert "a" in live_after_b and "b" not in live_after_b


class TestMHP:
    def _analysis(self, src: str) -> tuple[MHPAnalysis, ast.Module]:
        tree = ast.parse(src)
        body = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "body"
        )
        return MHPAnalysis(body, module=tree), tree

    def test_with_lock_guard_is_must_held(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    with mutex:\n"
            "        total = 1\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign)
        )
        assert mhp.facts(write).guarded

    def test_conditional_acquire_is_partial(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body(flag):\n"
            "    if flag:\n"
            "        mutex.acquire()\n"
            "    total = 1\n"
            "    if flag:\n"
            "        mutex.release()\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign) and s.lineno == 6
        )
        facts = mhp.facts(write)
        assert not facts.guarded
        assert facts.partially_guarded

    def test_balanced_acquire_release_is_must_held(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    mutex.acquire()\n"
            "    total = 1\n"
            "    mutex.release()\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign) and s.lineno == 5
        )
        assert mhp.facts(write).guarded

    def test_master_branch_is_one_thread(self):
        mhp, _ = self._analysis(
            "from repro.openmp import master\n"
            "def body():\n"
            "    if master():\n"
            "        total = 1\n"
        )
        write = next(
            s for _, s in mhp.cfg.statements()
            if isinstance(s, ast.Assign)
        )
        facts = mhp.facts(write)
        assert facts.one_thread and facts.guarded

    def test_may_race_respects_common_lock(self):
        mhp, _ = self._analysis(
            "import threading\n"
            "mutex = threading.Lock()\n"
            "def body():\n"
            "    with mutex:\n"
            "        a = 1\n"
            "    b = 2\n"
        )
        a = next(s for _, s in mhp.cfg.statements()
                 if isinstance(s, ast.Assign) and s.lineno == 5)
        b = next(s for _, s in mhp.cfg.statements()
                 if isinstance(s, ast.Assign) and s.lineno == 6)
        assert not mhp.may_race(a, a)  # shares the lock with itself
        assert mhp.may_race(b, b)  # unguarded against another instance


class TestCallGraph:
    def test_helper_shared_write_summary(self):
        tree = ast.parse(
            "def outer():\n"
            "    total = 0\n"
            "    def bump():\n"
            "        nonlocal total\n"
            "        total = total + 1\n"
            "    def body():\n"
            "        bump()\n"
        )
        graph = build_callgraph(tree)
        assert "total" in graph.summary("bump").shared_writes
        body = next(
            n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef) and n.name == "body"
        )
        effective = graph.effective_summary(body, "body")
        # the helper's write surfaces at the call-site line
        assert effective.shared_writes == {"total": 7}

    def test_one_level_only(self):
        tree = ast.parse(
            "def a():\n"
            "    b()\n"
            "def b():\n"
            "    c()\n"
            "def c():\n"
            "    global g\n"
            "    g = 1\n"
        )
        graph = build_callgraph(tree)
        via_b = graph.effective_summary(graph.summary("b").node, "b")
        assert "g" in via_b.shared_writes
        via_a = graph.effective_summary(graph.summary("a").node, "a")
        assert "g" not in via_a.shared_writes  # two hops away: not chased
