"""Loop/vector kernel variants: selection knob and differential agreement.

Every exemplar chunk kernel ships in two forms — the handout's teaching
loop and a NumPy-vectorized variant.  These tests pin the selection
precedence (argument > ``REPRO_KERNEL`` > ndarray auto > loop) and the
contract that both variants compute the same thing: bit-identical for the
integral/seeded kernels, to float tolerance where summation order differs.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.exemplars import (
    DEFAULT_PROTEIN,
    fire_curve_omp,
    fire_curve_seq,
    generate_ligands,
    heat_seq,
    integrate_omp,
    merge_sort_blocks,
    quarter_circle,
    resolve_kernel,
    run_omp,
    run_seq,
    score_chunk,
    score_chunk_vector,
    sort_block_chunk,
    sort_block_chunk_vector,
    stencil_chunk,
    stencil_chunk_loop,
    trapezoid_chunk,
    trapezoid_chunk_vector,
    trial_chunk,
    trial_chunk_vector,
)
from repro.openmp import SharedArray


class TestResolveKernel:
    def test_default_is_loop(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel() == "loop"

    def test_ndarray_data_auto_selects_vector(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel(data=np.zeros(4)) == "vector"
        assert resolve_kernel(data=[0.0] * 4) == "loop"

    def test_env_overrides_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "loop")
        assert resolve_kernel(data=np.zeros(4)) == "loop"
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert resolve_kernel() == "vector"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        assert resolve_kernel("loop") == "loop"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel variant"):
            resolve_kernel("simd")


class TestDifferential:
    """The five loop/vector kernel pairs agree on the same chunk."""

    def test_trapezoid(self):
        a, h = 0.0, 2.0 / 1000
        for lo, hi in [(0, 999), (10, 500), (7, 7)]:
            loop = trapezoid_chunk(a, h, quarter_circle, lo, hi)
            vector = trapezoid_chunk_vector(a, h, quarter_circle, lo, hi)
            assert math.isclose(loop, vector, rel_tol=1e-12, abs_tol=1e-12)

    def test_trapezoid_custom_array_function(self):
        loop = trapezoid_chunk(1.0, 0.01, lambda x: x * x, 3, 50)
        vector = trapezoid_chunk_vector(1.0, 0.01, lambda x: x * x, 3, 50)
        assert math.isclose(loop, vector, rel_tol=1e-12)

    def test_score(self):
        ligands = generate_ligands(40, max_len=9, seed=11)
        assert score_chunk_vector(ligands, DEFAULT_PROTEIN, 0, 40) == score_chunk(
            ligands, DEFAULT_PROTEIN, 0, 40
        )
        assert score_chunk_vector(ligands, DEFAULT_PROTEIN, 5, 12) == score_chunk(
            ligands, DEFAULT_PROTEIN, 5, 12
        )

    def test_score_empty_cases(self):
        assert score_chunk_vector([], DEFAULT_PROTEIN, 0, 0) == []
        assert score_chunk_vector(["", "ab"], "", 0, 2) == [0, 0]
        assert score_chunk_vector(["", ""], DEFAULT_PROTEIN, 0, 2) == [0, 0]

    def test_trial_bit_identical(self):
        # Seeded Monte Carlo: the batched stepper must reproduce each
        # trial's RNG draw order, so rows match exactly, floats included.
        for prob in (0.3, 0.6, 1.0):
            loop = trial_chunk(15, prob, 2, 2020, 0, 6)
            vector = trial_chunk_vector(15, prob, 2, 2020, 0, 6)
            assert vector == loop

    def test_trial_empty_chunk(self):
        assert trial_chunk_vector(15, 0.5, 0, 1, 4, 4) == []

    def test_stencil(self):
        rng = np.random.default_rng(3)
        u = rng.random(64)
        src = SharedArray.from_array(u)
        dst_a = SharedArray.from_array(np.zeros_like(u))
        dst_b = SharedArray.from_array(np.zeros_like(u))
        try:
            stencil_chunk(src, dst_a, 0.25, 0, 62)
            stencil_chunk_loop(src, dst_b, 0.25, 0, 62)
            np.testing.assert_allclose(dst_a.array, dst_b.array, rtol=1e-15)
        finally:
            src.unlink()
            dst_a.unlink()
            dst_b.unlink()

    def test_sort_block(self):
        rng = np.random.default_rng(9)
        values = rng.integers(0, 1000, size=257).tolist()
        assert sort_block_chunk_vector(values, 10, 200) == sort_block_chunk(
            values, 10, 200
        )
        assert sort_block_chunk_vector(values, 5, 5) == []


class TestEntryPointKnob:
    """The ``kernel=`` knob threads through the exemplar drivers."""

    def test_integrate_omp(self):
        loop = integrate_omp(2000, num_threads=2, kernel="loop")
        vector = integrate_omp(2000, num_threads=2, kernel="vector")
        assert math.isclose(loop, vector, rel_tol=1e-12)
        assert math.isclose(vector, math.pi, rel_tol=1e-4)

    def test_run_omp(self):
        ligands = generate_ligands(24, max_len=8, seed=5)
        seq = run_seq(ligands)
        vector = run_omp(ligands, num_threads=3, kernel="vector")
        assert vector.scores == seq.scores

    def test_fire_curve_vector_matches_seq(self):
        probs = (0.4, 0.8)
        seq = fire_curve_seq(probs, trials=4, size=11)
        vec = fire_curve_omp(probs, trials=4, size=11, num_threads=2, kernel="vector")
        assert [(p.prob, p.avg_burned, p.avg_iterations) for p in seq.points] == [
            (p.prob, p.avg_burned, p.avg_iterations) for p in vec.points
        ]

    def test_merge_sort_blocks_ndarray_auto_vector(self):
        rng = np.random.default_rng(21)
        values = rng.integers(0, 500, size=300)
        assert merge_sort_blocks(values, num_workers=4) == sorted(values.tolist())

    def test_merge_sort_blocks_explicit_kernels_agree(self):
        values = [5, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5] * 13
        loop = merge_sort_blocks(values, num_workers=3, kernel="loop")
        vector = merge_sort_blocks(values, num_workers=3, kernel="vector")
        assert loop == vector == sorted(values)

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "vector")
        value = integrate_omp(500, num_threads=2)
        monkeypatch.setenv("REPRO_KERNEL", "loop")
        assert math.isclose(value, integrate_omp(500, num_threads=2), rel_tol=1e-12)


@pytest.mark.multicore
def test_vector_kernel_speedup_on_processes_backend():
    """The headline claim: vectorized chunks beat the loop by >=3x.

    Gated behind the multicore marker: single-CPU runners (like the CI
    smoke box) skip it, multi-core dev machines enforce it.
    """
    n = 400_000
    t0 = time.perf_counter()
    integrate_omp(n, num_threads=2, backend="processes", kernel="loop")
    loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    integrate_omp(n, num_threads=2, backend="processes", kernel="vector")
    vector_s = time.perf_counter() - t0
    assert vector_s * 3 <= loop_s, (
        f"vector kernel not >=3x faster: loop={loop_s:.3f}s vector={vector_s:.3f}s"
    )
