"""Patternlet catalog: registry integrity and per-patternlet behaviour."""

import pytest

from repro.patternlets import (
    PARADIGMS,
    all_patternlets,
    get_patternlet,
    patternlet_names,
)
from repro.patternlets.base import PatternletResult, register


class TestRegistry:
    def test_both_paradigms_populated(self):
        assert len(all_patternlets("openmp")) == 14
        assert len(all_patternlets("mpi")) == 15

    def test_handout_order_is_stable(self):
        orders = [p.order for p in all_patternlets("openmp")]
        assert orders == sorted(orders)

    def test_every_patternlet_has_metadata(self):
        for p in all_patternlets():
            assert p.pattern and p.summary
            assert p.paradigm in PARADIGMS
            assert p.concepts, p.name

    def test_source_listing_available(self):
        src = get_patternlet("mpi", "spmd").source
        assert "def spmd" in src
        assert "Get_rank" in src

    def test_unknown_patternlet_suggests_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            get_patternlet("openmp", "nonexistent")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register("spmd", "openmp", "X", "dup")(lambda: PatternletResult("x"))

    def test_invalid_paradigm_rejected(self):
        with pytest.raises(ValueError):
            register("x", "cuda", "X", "y")(lambda: PatternletResult("x"))

    def test_patternlet_names(self):
        assert patternlet_names("mpi")[0] == "spmd"


class TestOpenMPPatternlets:
    def test_spmd_every_thread_speaks(self):
        r = get_patternlet("openmp", "spmd").run(num_threads=5)
        assert r.values["thread_ids"] == list(range(5))
        assert len(r.trace) == 5

    def test_forkjoin_phase_structure(self):
        r = get_patternlet("openmp", "forkjoin").run(num_threads=3)
        assert r.values["phase_counts"] == {"before": 1, "during": 3, "after": 1}
        assert r.values["joined_before_after"]

    def test_private_values_are_per_thread(self):
        r = get_patternlet("openmp", "private").run(num_threads=4)
        assert r.values["privates_correct"]
        assert r.values["shared_appends"] == 4

    def test_forced_race_always_loses_one_update(self):
        from repro.patternlets.openmp.race import FORCED_SCHEDULE

        for _ in range(5):  # deterministic: must hold on every run
            r = get_patternlet("openmp", "race").run(forced=True)
            diagnostics = r.values.pop("diagnostics")
            assert r.values == {
                "expected": 2, "actual": 1, "lost": 1, "forced": True,
                "schedule": FORCED_SCHEDULE,
            }
            assert len(diagnostics) == 1
            assert diagnostics[0]["kind"] == "data-race"
            assert "AtomicCounter" in diagnostics[0]["message"]

    def test_forced_race_replays_explorer_tokens(self):
        # Any racy schedule the explorer flags must lose updates here too.
        r = get_patternlet("openmp", "race").run(
            num_threads=2, iterations=2, schedule="o1.2.00001"
        )
        assert r.values["lost"] > 0
        assert r.values["forced"] is True

    def test_wild_race_reports_expected_vs_actual(self):
        r = get_patternlet("openmp", "race").run(num_threads=4, iterations=3000)
        assert r.values["expected"] == 12000
        assert 0 < r.values["actual"] <= 12000
        assert r.values["lost"] == r.values["expected"] - r.values["actual"]

    @pytest.mark.parametrize("name", ["critical", "atomic"])
    def test_fixes_are_exact(self, name):
        r = get_patternlet("openmp", name).run(num_threads=4, iterations=3000)
        assert r.values["actual"] == r.values["expected"] == 12000

    def test_reduction_fix(self):
        r = get_patternlet("openmp", "reduction").run(num_threads=4, n=5000)
        assert r.values["actual"] == r.values["expected"] == 5000 * 5001 // 2

    def test_equal_chunks_are_contiguous_cover(self):
        r = get_patternlet("openmp", "forEqualChunks").run(num_threads=4, n=18)
        assert r.values["covered_exactly_once"]
        assert r.values["contiguous"]

    def test_chunks_of_one_are_strided(self):
        r = get_patternlet("openmp", "forChunksOf1").run(num_threads=4, n=18)
        assert r.values["covered_exactly_once"]
        assert r.values["strided"]

    def test_dynamic_covers_exactly_once(self):
        r = get_patternlet("openmp", "forDynamic").run(num_threads=4, n=30, chunk=3)
        assert r.values["covered_exactly_once"]

    def test_barrier_orders_phases(self):
        r = get_patternlet("openmp", "barrier").run(num_threads=6)
        assert r.values["phases_ordered"]
        assert r.values["lines"] == 12

    def test_master_single(self):
        r = get_patternlet("openmp", "masterSingle").run(num_threads=4)
        assert r.values["master_is_zero"]
        assert r.values["single_ran_once"]

    def test_sections(self):
        r = get_patternlet("openmp", "sections").run(num_threads=2)
        assert r.values["each_ran_once"]
        assert r.values["outputs"] == ["A", "B", "C", "D"]


class TestMPIPatternlets:
    def test_spmd_figure2_shape(self):
        r = get_patternlet("mpi", "spmd").run(np=4)
        assert r.values["unique_ranks"]
        assert all("Greetings from process" in line for line in r.trace)
        assert all("of 4 on d6ff4f902ed6" in line for line in r.trace)

    def test_spmd_custom_hostname(self):
        r = get_patternlet("mpi", "spmd").run(np=2, hostname="colab-vm")
        assert all(line.endswith("on colab-vm") for line in r.trace)

    def test_master_worker_split(self):
        r = get_patternlet("mpi", "masterWorkerSplit").run(np=5)
        assert r.values["one_master"]
        assert r.values["workers"] == 4

    def test_sequence_numbers_ordered_via_gather(self):
        r = get_patternlet("mpi", "sequenceNumbers").run(np=6)
        assert r.values["ordered"]

    def test_send_receive(self):
        r = get_patternlet("mpi", "sendReceive").run(np=2)
        assert r.values["received_equals_sent"]

    def test_send_receive_requires_two(self):
        with pytest.raises(ValueError):
            get_patternlet("mpi", "sendReceive").run(np=1)

    def test_ring_visits_every_rank(self):
        r = get_patternlet("mpi", "messagePassingRing").run(np=6)
        assert r.values["visited_all"]
        assert r.values["token"] == list(range(6))

    def test_tags_demultiplex(self):
        r = get_patternlet("mpi", "messageTags").run(np=2)
        assert r.values["out_of_order_ok"]

    def test_deadlock_detected_and_fixed(self):
        broken = get_patternlet("mpi", "deadlock").run(np=2, timeout=5.0)
        assert broken.values["deadlocked"]
        repaired = get_patternlet("mpi", "deadlock").run(np=4, fixed=True)
        assert not repaired.values["deadlocked"]
        assert repaired.values["exchanged"]

    def test_deadlock_requires_even_np(self):
        with pytest.raises(ValueError):
            get_patternlet("mpi", "deadlock").run(np=3)

    def test_broadcast_private_copies(self):
        r = get_patternlet("mpi", "broadcast").run(np=4)
        assert r.values["all_equal"]
        assert r.values["copies_are_private"]

    def test_scatter_gather_reduce(self):
        assert get_patternlet("mpi", "scatter").run(np=4)["each_got_its_chunk"]
        g = get_patternlet("mpi", "gather").run(np=4)
        assert g["root_list_correct"] and g["non_roots_none"]
        red = get_patternlet("mpi", "reduce").run(np=5)
        assert red["root_correct"] and red["non_roots_none"]

    def test_allreduce_arrays(self):
        r = get_patternlet("mpi", "allreduceArrays").run(np_procs=4, n=32)
        assert r.values["all_correct"]

    def test_master_worker_farm(self):
        r = get_patternlet("mpi", "masterWorker").run(np=4, num_tasks=20)
        assert r.values["all_tasks_done"]
        assert r.values["work_was_distributed"]
        assert len(r.values["per_worker_counts"]) == 3

    def test_master_worker_more_workers_than_tasks(self):
        r = get_patternlet("mpi", "masterWorker").run(np=6, num_tasks=2)
        assert r.values["all_tasks_done"]

    def test_parallel_loop_chunks(self):
        r = get_patternlet("mpi", "parallelLoopChunks").run(np=4, n=777)
        assert r.values["total_correct"]
        assert r.values["slices_cover"]
