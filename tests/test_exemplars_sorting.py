"""Parallel-sorting exemplar: merge, task mergesort, odd-even MPI sort."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplars import (
    merge,
    merge_sort_seq,
    merge_sort_tasks,
    odd_even_sort_mpi,
    sorting_workload,
)

FAST = settings(max_examples=30, deadline=None)


class TestMerge:
    def test_basic(self):
        assert merge([1, 3, 5], [2, 4, 6]) == [1, 2, 3, 4, 5, 6]

    def test_empty_sides(self):
        assert merge([], [1, 2]) == [1, 2]
        assert merge([1, 2], []) == [1, 2]
        assert merge([], []) == []

    def test_stability(self):
        """Equal keys keep left-then-right order (stable merge)."""
        left = [(1, "L0"), (2, "L1")]
        right = [(1, "R0"), (2, "R1")]
        merged = merge(left, right)
        assert merged == [(1, "L0"), (1, "R0"), (2, "L1"), (2, "R1")]

    @FAST
    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_property_merge_of_sorted_is_sorted(self, a, b):
        assert merge(sorted(a), sorted(b)) == sorted(a + b)


class TestMergeSortSeq:
    @FAST
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_property_matches_builtin(self, data):
        assert merge_sort_seq(data) == sorted(data)

    def test_does_not_mutate_input(self):
        data = [3, 1, 2]
        merge_sort_seq(data)
        assert data == [3, 1, 2]


class TestMergeSortTasks:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("cutoff", [1, 8, 1000])
    def test_matches_builtin(self, threads, cutoff):
        rng = random.Random(threads * 100 + cutoff)
        data = [rng.randint(-500, 500) for _ in range(237)]
        assert merge_sort_tasks(data, num_threads=threads, cutoff=cutoff) == sorted(data)

    def test_empty_and_singleton(self):
        assert merge_sort_tasks([]) == []
        assert merge_sort_tasks([7]) == [7]

    @FAST
    @given(st.lists(st.floats(allow_nan=False), max_size=120))
    def test_property_matches_builtin(self, data):
        assert merge_sort_tasks(data, num_threads=3, cutoff=16) == sorted(data)


class TestOddEvenSortMPI:
    @pytest.mark.parametrize("procs", [1, 2, 3, 4, 6])
    def test_matches_builtin(self, procs):
        rng = random.Random(procs)
        data = [rng.randint(-99, 99) for _ in range(83)]
        assert odd_even_sort_mpi(data, np_procs=procs) == sorted(data)

    def test_fewer_elements_than_ranks(self):
        assert odd_even_sort_mpi([3, 1], np_procs=5) == [1, 3]

    def test_empty_input(self):
        assert odd_even_sort_mpi([], np_procs=3) == []

    def test_already_sorted_and_reversed(self):
        data = list(range(50))
        assert odd_even_sort_mpi(data, np_procs=4) == data
        assert odd_even_sort_mpi(data[::-1], np_procs=4) == data

    def test_duplicates_preserved(self):
        data = [5, 1, 5, 1, 5]
        assert odd_even_sort_mpi(data, np_procs=3) == [1, 1, 5, 5, 5]

    @FAST
    @given(
        data=st.lists(st.integers(-50, 50), max_size=60),
        procs=st.integers(1, 5),
    )
    def test_property_matches_builtin(self, data, procs):
        assert odd_even_sort_mpi(data, np_procs=procs) == sorted(data)


class TestSortingWorkload:
    def test_superlinear_in_n(self):
        assert sorting_workload(20_000).total_ops > 2 * sorting_workload(10_000).total_ops

    def test_communication_grows_quadratically_in_procs(self):
        w = sorting_workload(1000)
        assert w.messages(8) == 4 * w.messages(4)
