"""Profile math on synthetic event streams: exact, hand-checkable numbers."""

from repro.obs import Event, build_profile, render_text, render_timeline
from repro.obs.profile import _union_length


def ev(ts, name, *args, source="openmp", tid=0, proc=None):
    return Event(ts=ts, source=source, name=name, args=args, tid=tid, proc=proc)


def mpi_ev(ts, name, *args, tid=0, proc=None):
    return Event(ts=ts, source="mpi", name=name, args=args, tid=tid, proc=proc)


class TestSpanPairing:
    def test_region_and_barrier_spans(self):
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(1.0, "barrier_enter", tid=1),
            ev(3.0, "barrier_exit", tid=1),
            ev(10.0, "thread_end", "t", 0, tid=1),
        ]
        profile = build_profile(events)
        assert {s.name for s in profile.spans} == {"parallel region", "barrier wait"}
        barrier = next(s for s in profile.spans if s.cat == "barrier")
        assert barrier.t0 == 1.0 and barrier.t1 == 3.0
        assert profile.unmatched == 0

    def test_acquire_closes_wait_and_opens_critical(self):
        key = ("critical", 1)
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(1.0, "acquire_enter", key, tid=1),
            ev(4.0, "acquire", key, tid=1),
            ev(6.0, "release", key, tid=1),
            ev(10.0, "thread_end", "t", 0, tid=1),
        ]
        profile = build_profile(events)
        wait = next(s for s in profile.spans if s.cat == "lockwait")
        hold = next(s for s in profile.spans if s.cat == "critical")
        assert (wait.t0, wait.t1) == (1.0, 4.0)
        assert (hold.t0, hold.t1) == (4.0, 6.0)
        row = profile.lock_contention["critical#0"]
        assert row["waits"] == 1 and row["wait_s"] == 3.0
        assert row["holds"] == 1 and row["hold_s"] == 2.0

    def test_bare_acquire_release_not_unmatched(self):
        """Atomic fast paths emit acquire/release without acquire_enter."""
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(1.0, "release", ("lock", 9), tid=1),
            ev(2.0, "thread_end", "t", 0, tid=1),
        ]
        assert build_profile(events).unmatched == 0

    def test_end_without_begin_counts_unmatched(self):
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(1.0, "barrier_exit", tid=1),
            ev(2.0, "thread_end", "t", 0, tid=1),
        ]
        assert build_profile(events).unmatched == 1


class TestWaitAttribution:
    def test_busy_is_extent_minus_waits(self):
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(2.0, "barrier_enter", tid=1),
            ev(5.0, "barrier_exit", tid=1),
            ev(10.0, "thread_end", "t", 0, tid=1),
        ]
        (lane,) = build_profile(events).lanes
        assert lane.extent_s == 10.0
        assert lane.waits_s == {"barrier": 3.0}
        assert lane.busy_s == 7.0

    def test_nested_waits_use_interval_union(self):
        """reduce wraps gather: nested collective spans must not double-count."""
        events = [
            mpi_ev(0.0, "coll_enter", 1, 0, "reduce", proc=("rank", 0)),
            mpi_ev(1.0, "coll_enter", 1, 0, "gather", proc=("rank", 0)),
            mpi_ev(7.0, "coll_exit", 1, 0, "gather", proc=("rank", 0)),
            mpi_ev(8.0, "coll_exit", 1, 0, "reduce", proc=("rank", 0)),
        ]
        (lane,) = build_profile(events).lanes
        assert lane.waits_s == {"collective": 8.0}
        assert lane.busy_s == 0.0

    def test_cross_category_overlap_does_not_go_negative(self):
        """ProcComm collectives recv inside the collective span."""
        events = [
            mpi_ev(0.0, "coll_enter", 0, 0, "gather", proc=("rank", 0)),
            mpi_ev(1.0, "recv_enter", 0, 0, 1, 5, proc=("rank", 0)),
            mpi_ev(5.0, "recv_exit", 0, 0, 1, 5, 16, proc=("rank", 0)),
            mpi_ev(6.0, "coll_exit", 0, 0, "gather", proc=("rank", 0)),
        ]
        (lane,) = build_profile(events).lanes
        assert lane.waits_s == {"collective": 6.0, "recv": 4.0}
        assert lane.busy_s == 0.0  # union covers the whole extent

    def test_imbalance_ratio(self):
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(9.0, "thread_end", "t", 0, tid=1),
            ev(0.0, "thread_begin", "t", 1, tid=2),
            ev(3.0, "thread_end", "t", 1, tid=2),
        ]
        profile = build_profile(events)
        # busy = 9 and 3; max/mean = 9/6.
        assert profile.imbalance_ratio == 1.5


class TestEdgesAndLanes:
    def test_p2p_and_collective_edges(self):
        events = [
            mpi_ev(0.0, "send", 1, 0, 1, 7, 32, proc=("rank", 0)),
            mpi_ev(1.0, "send", 1, 0, 1, 7, 32, proc=("rank", 0)),
            mpi_ev(2.0, "coll_msg", 1, 1, 0, 8, proc=("rank", 1)),
        ]
        profile = build_profile(events)
        assert profile.p2p_edges[(0, 1)] == {"messages": 2, "bytes": 64}
        assert profile.coll_edges[(1, 0)] == {"messages": 1, "bytes": 8}
        assert profile.metrics.message_bytes.count == 2

    def test_lane_ordering_ranks_then_threads_then_workers(self):
        events = [
            ev(0.0, "chunk_begin", 0, 5, proc=("worker", 999)),
            ev(1.0, "chunk_end", 0, 5, proc=("worker", 999)),
            ev(0.0, "thread_begin", "t", 0, tid=4),
            ev(1.0, "thread_end", "t", 0, tid=4),
            mpi_ev(0.0, "send", 0, 1, 0, 0, 8, proc=("rank", 1)),
        ]
        profile = build_profile(events)
        assert [lane.kind for lane in profile.lanes] == [
            "mpi-rank", "omp-thread", "omp-worker",
        ]
        assert [lane.label for lane in profile.lanes] == [
            "rank 1", "thread 0", "worker 999",
        ]


class TestUnionLength:
    def test_disjoint(self):
        assert _union_length([(0.0, 1.0), (2.0, 3.0)]) == 2.0

    def test_nested_and_overlapping(self):
        assert _union_length([(0.0, 8.0), (1.0, 7.0), (6.0, 10.0)]) == 10.0

    def test_empty(self):
        assert _union_length([]) == 0.0


class TestRendering:
    def _profile(self):
        events = [
            ev(0.0, "thread_begin", "t", 0, tid=1),
            ev(2.0, "barrier_enter", tid=1),
            ev(5.0, "barrier_exit", tid=1),
            ev(10.0, "thread_end", "t", 0, tid=1),
        ]
        return build_profile(events)

    def test_render_text_has_lane_table(self):
        text = render_text(self._profile())
        assert "thread 0" in text
        assert "load imbalance" in text

    def test_render_timeline_glyphs(self):
        timeline = render_timeline(self._profile(), width=10)
        row = timeline.splitlines()[0]
        assert "b" in row  # barrier wait visible
        assert "#" in row  # busy region visible

    def test_render_timeline_empty(self):
        assert render_timeline(build_profile([])) == "(no spans to draw)"

    def test_to_dict_round_trips_json(self):
        import json

        doc = self._profile().to_dict()
        assert json.loads(json.dumps(doc)) == doc
