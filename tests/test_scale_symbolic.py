"""Symbolic-rank protocol verification (``analysis.scale.symbolic``).

The headline claim: for programs inside the rank-set domain, the
symbolic checker's verdict holds for *every* world size P >= 2 — and it
is exactly what the concrete per-rank simulator reports size by size.
This suite cross-checks the two engines at P = 2..5 over the protocol
fixture corpus, pins the witness-size machinery, the launcher
world-size preconditions, and the reason-coded abstentions.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.flow.protocol import (
    Ambiguous,
    extract_traces,
    simulate,
    spmd_roots,
)
from repro.analysis.scale.rankset import CROSS_CHECK_MAX, P_MIN
from repro.analysis.scale.symbolic import (
    ABSTAIN_REASONS,
    ambiguity_reason,
    check_protocol_symbolic,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: protocol fixtures with a clean/buggy expectation for the all-P claim
PROTOCOL_FIXTURES = [
    ("pdc103_tp.py", ["PDC103"]),
    ("pdc103_tn.py", []),
    ("pdc104_tp.py", ["PDC104"]),
    ("pdc104_tn.py", []),
    ("pdc110_tp.py", ["PDC110"]),
    ("pdc110_tn.py", []),
    ("pdc111_tp.py", ["PDC111"]),
    ("pdc111_tn.py", []),
    ("pdc112_tp.py", ["PDC112"]),
    ("pdc112_tn.py", []),
]


def _verdicts(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    return [(root, check_protocol_symbolic(root, tree), tree)
            for root in spmd_roots(tree)]


class TestCrossCheck:
    """The symbolic verdict must agree with the concrete simulator at
    every size it claims to have checked (P = 2..5 for these fixtures)."""

    @pytest.mark.parametrize("fixture,expected_rules",
                             [(f, r) for f, r in PROTOCOL_FIXTURES])
    def test_symbolic_matches_concrete_per_size(self, fixture,
                                                expected_rules):
        for root, verdict, tree in _verdicts(FIXTURES / fixture):
            for p in verdict.checked:
                concrete = simulate(extract_traces(root, tree, size=p))
                concrete_keys = {(f.rule, f.line) for f in concrete}
                symbolic_keys = {
                    (f.rule, f.line) for f in verdict.findings
                    if p in f.details["sizes"]
                }
                assert symbolic_keys == concrete_keys, (
                    f"{fixture} P={p}: symbolic {symbolic_keys} "
                    f"!= concrete {concrete_keys}")

    @pytest.mark.parametrize("fixture,expected_rules",
                             [(f, r) for f, r in PROTOCOL_FIXTURES])
    def test_fixture_verdict_matches_expectation(self, fixture,
                                                 expected_rules):
        rules = sorted({
            f.rule
            for _, verdict, _ in _verdicts(FIXTURES / fixture)
            for f in verdict.findings
        })
        assert rules == sorted(set(expected_rules))

    @pytest.mark.parametrize(
        "fixture", [f for f, rules in PROTOCOL_FIXTURES if not rules])
    def test_clean_fixture_claim_is_universal(self, fixture):
        verdicts = [v for _, v, _ in _verdicts(FIXTURES / fixture)]
        assert verdicts
        for verdict in verdicts:
            assert verdict.universal, (fixture, verdict.reason)
            assert verdict.reason is None
            assert not verdict.findings

    def test_checked_sizes_span_the_cross_check_range(self):
        [(_, verdict, _)] = _verdicts(FIXTURES / "pdc103_tp.py")
        assert verdict.checked[0] == P_MIN
        assert verdict.checked[-1] >= CROSS_CHECK_MAX


class TestWitness:
    def test_violation_carries_smallest_witness_size(self):
        [(_, verdict, _)] = _verdicts(FIXTURES / "pdc103_tp.py")
        [finding] = [f for f in verdict.findings if f.rule == "PDC103"]
        assert finding.details["witness_p"] == min(finding.details["sizes"])
        assert finding.details["witness_p"] == 2

    def test_all_checked_sizes_exhibit_the_ring_deadlock(self):
        [(_, verdict, _)] = _verdicts(FIXTURES / "pdc103_tp.py")
        [finding] = [f for f in verdict.findings if f.rule == "PDC103"]
        assert finding.details["sizes"] == verdict.checked

    def test_witness_above_two_is_named_in_the_lint_message(self):
        # a split that only misbehaves once P is large enough for the
        # uneven chunks: rank P-1 receives one message per sender, but
        # only P-2 sends happen
        source = (
            "from repro.mpi import mpirun\n"
            "def relay(np=2):\n"
            "    def body(comm):\n"
            "        rank, size = comm.Get_rank(), comm.Get_size()\n"
            "        if rank >= 2:\n"
            "            comm.send(rank, dest=size - 1, tag=7)\n"
            "        if rank == size - 1:\n"
            "            for sender in range(2, size):\n"
            "                got = comm.recv(source=sender, tag=7)\n"
            "            extra = comm.recv(source=0, tag=9)\n"
            "        return None\n"
            "    return mpirun(body, np)\n"
        )
        tree = ast.parse(source)
        [root] = spmd_roots(tree)
        verdict = check_protocol_symbolic(root, tree)
        assert verdict.findings
        # the unmatched recv(source=0) is visible at every size, but the
        # per-size cross-check must stay consistent with the simulator
        for finding in verdict.findings:
            assert finding.details["witness_p"] == min(
                finding.details["sizes"])


class TestLauncherPreconditions:
    def test_even_only_guard_excludes_odd_sizes(self):
        [(_, verdict, _)] = _verdicts(FIXTURES / "pdc103_tn.py")
        assert all(p % 2 == 0 for p in verdict.checked)
        assert all(p % 2 == 1 for p in verdict.excluded)
        assert verdict.universal

    def test_unsatisfiable_guard_abstains_no_valid_world(self):
        source = (
            "from repro.mpi import mpirun\n"
            "def run(np=2):\n"
            "    if np < 100:\n"
            "        raise ValueError('needs a big cluster')\n"
            "    def body(comm):\n"
            "        rank = comm.Get_rank()\n"
            "        part = comm.bcast(rank, root=0)\n"
            "    return mpirun(body, np)\n"
        )
        tree = ast.parse(source)
        [root] = spmd_roots(tree)
        verdict = check_protocol_symbolic(root, tree)
        assert verdict.reason == "no-valid-world"
        assert not verdict.universal
        assert not verdict.checked


class TestAbstention:
    def test_while_around_comm_has_reason_code(self):
        source = (
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    while rank < 4:\n"
            "        comm.send(rank, dest=0, tag=1)\n"
            "        rank = rank + 1\n"
        )
        tree = ast.parse(source)
        [root] = spmd_roots(tree)
        verdict = check_protocol_symbolic(root, tree)
        assert not verdict.universal
        assert verdict.reason in ABSTAIN_REASONS

    def test_nonaffine_guard_abstains_but_still_simulates(self):
        # rank * rank falls outside the affine guard language: the
        # universal claim is dropped, the bounded sizes still run
        source = (
            "def body(comm):\n"
            "    rank, size = comm.Get_rank(), comm.Get_size()\n"
            "    if rank * rank < size:\n"
            "        part = 1\n"
            "    flag = comm.bcast(rank, root=0)\n"
        )
        tree = ast.parse(source)
        [root] = spmd_roots(tree)
        verdict = check_protocol_symbolic(root, tree)
        assert not verdict.universal
        assert verdict.reason in ABSTAIN_REASONS
        assert verdict.checked  # concrete sizes were still simulated
        assert not verdict.findings  # and they are clean

    def test_every_reason_code_is_documented(self):
        for code, meaning in ABSTAIN_REASONS.items():
            assert code and meaning

    def test_ambiguity_reason_maps_known_messages(self):
        assert ambiguity_reason(
            Ambiguous("while loop around communication")
        ) == "while-around-comm"
        assert ambiguity_reason(
            Ambiguous("totally novel failure")) in ABSTAIN_REASONS

    def test_abstention_never_manufactures_findings(self):
        [(_, verdict, _)] = _verdicts(FIXTURES / "pdc110_tn.py")
        if verdict.reason is not None:
            assert not verdict.findings


class TestScheduleDeadlockFreedom:
    """Every registered collective algorithm's schedule, proven deadlock-
    free by replaying its per-rank send/recv traces through the protocol
    simulator for all P = 2..SCHEDULE_P_MAX (schedule shapes are pure
    functions of P's power-of-two/divisor structure, so that range covers
    every shape the algorithms can produce)."""

    def _registry(self):
        from repro.mpi.algorithms import ALGORITHMS

        return [
            (coll, algo)
            for coll, algos in ALGORITHMS.items()
            for algo in algos
        ]

    def test_every_algorithm_schedule_is_deadlock_free(self):
        from repro.analysis.scale.symbolic import (
            SCHEDULE_P_MAX,
            check_schedule_symbolic,
        )

        for coll, algo in self._registry():
            verdict = check_schedule_symbolic(coll, algo)
            assert verdict.universal, (coll, algo)
            assert not verdict.findings, (coll, algo, verdict.findings)
            assert verdict.checked == list(range(2, SCHEDULE_P_MAX + 1)), (
                coll, algo,
            )

    def test_rooted_schedules_clean_for_nonzero_roots(self):
        from repro.analysis.scale.symbolic import check_schedule_symbolic

        for coll in ("bcast", "reduce"):
            from repro.mpi.algorithms import ALGORITHMS

            for algo in ALGORITHMS[coll]:
                for root in (1, 2):
                    verdict = check_schedule_symbolic(
                        coll, algo, max_p=17, root=root
                    )
                    assert not verdict.findings, (coll, algo, root)
                    # worlds smaller than the root are excluded, not checked
                    assert verdict.excluded == [p for p in range(2, 18) if root >= p]

    def test_schedule_traces_are_deterministic_and_cached(self):
        from repro.mpi.algorithms import schedule_traces

        first = schedule_traces("allreduce", "ring", 5)
        again = schedule_traces("allreduce", "ring", 5)
        assert first is again  # lru_cache: replay costs nothing the 2nd time
        assert len(first) == 5
        assert all(
            op[0] in ("send", "recv") and isinstance(op[1], int)
            for trace in first for op in trace
        )

    def test_broken_schedule_is_caught(self):
        """The checker is falsifiable: a schedule with a swallowed message
        (a recv no rank ever sends to) produces findings."""
        from repro.analysis.flow.protocol import simulate
        from repro.analysis.scale.symbolic import _schedule_rank_traces

        # rank 0 sends once; rank 1 expects two messages -> stuck forever
        broken = (
            (("send", 1, 0),),
            (("recv", 0, 0), ("recv", 0, 1)),
        )
        findings = simulate(_schedule_rank_traces(broken))
        assert findings
