"""Property tests for communicator management: Split partitions, Cartesian
coordinate bijections, group algebra."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import SUM, Group, UNDEFINED
from repro.mpi.cartesian import compute_dims
from tests.conftest import spmd

FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST
@given(data=st.data())
def test_split_partitions_the_communicator(data):
    size = data.draw(st.integers(1, 6))
    colors = data.draw(
        st.lists(st.integers(0, 2), min_size=size, max_size=size)
    )
    keys = data.draw(
        st.lists(st.integers(-5, 5), min_size=size, max_size=size)
    )

    def body(comm):
        rank = comm.Get_rank()
        sub = comm.Split(color=colors[rank], key=keys[rank])
        return (sub.Get_rank(), sub.Get_size(), sub.allgather(rank))

    outs = spmd(body, size)
    for color in set(colors):
        members = [r for r in range(size) if colors[r] == color]
        # every member of a color agrees on size and membership
        for r in members:
            sub_rank, sub_size, gathered = outs[r]
            assert sub_size == len(members)
            assert sorted(gathered) == members
        # ranks within the subcommunicator are ordered by (key, parent rank)
        expected_order = sorted(members, key=lambda r: (keys[r], r))
        for new_rank, parent in enumerate(expected_order):
            assert outs[parent][0] == new_rank


@FAST
@given(data=st.data())
def test_split_undefined_ranks_get_none_and_rest_still_work(data):
    size = data.draw(st.integers(2, 6))
    dropped = data.draw(
        st.sets(st.integers(0, size - 1), max_size=size - 1)
    )

    def body(comm):
        rank = comm.Get_rank()
        color = UNDEFINED if rank in dropped else 0
        sub = comm.Split(color=color, key=rank)
        if sub is None:
            return None
        return sub.allreduce(rank, op=SUM)

    outs = spmd(body, size)
    kept = [r for r in range(size) if r not in dropped]
    for r in range(size):
        if r in dropped:
            assert outs[r] is None
        else:
            assert outs[r] == sum(kept)


@FAST
@given(
    dims=st.lists(st.integers(1, 4), min_size=1, max_size=3),
    periods_seed=st.integers(0, 7),
)
def test_cartesian_coords_are_a_bijection(dims, periods_seed):
    nnodes = 1
    for d in dims:
        nnodes *= d
    if nnodes > 8:
        return  # keep worlds small
    periods = [(periods_seed >> i) & 1 == 1 for i in range(len(dims))]

    def body(comm):
        cart = comm.Create_cart(dims, periods=periods)
        coords = cart.Get_coords(cart.Get_rank())
        assert cart.Get_cart_rank(coords) == cart.Get_rank()
        return coords

    outs = spmd(body, nnodes)
    assert len(set(outs)) == nnodes  # distinct coordinates per rank
    for coords in outs:
        assert all(0 <= c < d for c, d in zip(coords, dims))


@FAST
@given(
    nnodes=st.integers(1, 256),
    ndims=st.integers(1, 4),
)
def test_compute_dims_properties(nnodes, ndims):
    dims = compute_dims(nnodes, ndims)
    assert len(dims) == ndims
    product = 1
    for d in dims:
        product *= d
    assert product == nnodes
    assert dims == sorted(dims, reverse=True)  # non-increasing, per MPI


@FAST
@given(
    universe=st.sets(st.integers(0, 20), min_size=1, max_size=10),
    other=st.sets(st.integers(0, 20), max_size=10),
)
def test_group_algebra_laws(universe, other):
    a = Group(sorted(universe))
    b = Group(sorted(other))
    union = Group.Union(a, b)
    inter = Group.Intersection(a, b)
    diff = Group.Difference(a, b)
    assert set(union.ranks) == universe | other
    assert set(inter.ranks) == universe & other
    assert set(diff.ranks) == universe - other
    # inclusion-exclusion on sizes
    assert len(union) == len(a) + len(b) - len(inter)
    # translate every rank of the intersection consistently
    for world_rank in inter.ranks:
        pos_a = a.Get_rank(world_rank)
        translated = Group.Translate_ranks(a, [pos_a], b)[0]
        assert b.ranks[translated] == world_rank
