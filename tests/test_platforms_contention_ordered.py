"""Shared-machine contention model and the OpenMP ordered construct."""

import threading

import pytest

from repro.exemplars import forestfire_workload
from repro.openmp import OrderedGate, parallel_for
from repro.platforms import (
    COLAB_VM,
    ST_OLAF_VM,
    SharedMachineModel,
    Workload,
    chameleon_cluster,
)


class TestSharedMachineModel:
    @pytest.fixture
    def workload(self):
        return forestfire_workload(size=60, trials=40)

    def test_one_learner_matches_solo_time(self, workload):
        model = SharedMachineModel(ST_OLAF_VM)
        point = model.job_time(workload, procs=8, concurrent_learners=1)
        assert point.slowdown == 1.0

    def test_slowdown_kicks_in_past_core_count(self, workload):
        model = SharedMachineModel(ST_OLAF_VM)  # 64 cores
        fine = model.job_time(workload, procs=8, concurrent_learners=8)
        over = model.job_time(workload, procs=8, concurrent_learners=16)
        assert fine.slowdown == 1.0  # 64 demanded on 64 cores
        assert over.slowdown == 2.0  # 128 demanded on 64 cores
        assert over.job_time_s > fine.job_time_s

    def test_whole_workshop_fits_the_stolaf_vm_at_small_jobs(self, workload):
        """The paper's sizing: 22 self-paced participants on 64 cores.

        At 2 processes per learner even fully synchronous use stays within
        1.5x of solo time — the configuration the workshop ran."""
        model = SharedMachineModel(ST_OLAF_VM)
        assert model.capacity(workload, procs=2, max_slowdown=1.5) >= 22

    def test_colab_is_single_user_by_design(self, workload):
        """Each Colab learner gets their own VM; on any *shared* unicore
        machine a second concurrent job already halves throughput."""
        model = SharedMachineModel(COLAB_VM)
        point = model.job_time(workload, procs=1, concurrent_learners=2)
        assert point.slowdown == 2.0

    def test_cluster_capacity_scales_with_nodes(self, workload):
        small = SharedMachineModel(chameleon_cluster(2))
        large = SharedMachineModel(chameleon_cluster(8))
        assert large.capacity(workload, procs=8) > small.capacity(workload, procs=8)

    def test_capacity_validation(self, workload):
        model = SharedMachineModel(ST_OLAF_VM)
        with pytest.raises(ValueError):
            model.capacity(workload, procs=4, max_slowdown=0.5)
        with pytest.raises(ValueError):
            model.job_time(workload, procs=4, concurrent_learners=0)

    def test_format_table(self, workload):
        model = SharedMachineModel(ST_OLAF_VM)
        text = model.format_table(workload, procs=8, learner_counts=[1, 8, 22])
        assert "learners" in text and "slowdown" in text
        assert len(text.splitlines()) == 5


class TestOrderedGate:
    def test_sections_run_in_iteration_order(self):
        n = 40
        gate = OrderedGate(n)
        log = []

        def body(i):
            # concurrent part: nothing to do
            with gate.turn(i):
                log.append(i)

        parallel_for(n, body, num_threads=4, schedule="dynamic", chunk=3)
        assert log == list(range(n))
        assert gate.finished()

    def test_order_holds_under_reverse_friendly_schedules(self):
        n = 25
        gate = OrderedGate(n)
        log = []

        def body(i):
            with gate.turn(i):
                log.append(i)

        parallel_for(n, body, num_threads=3, schedule="static", chunk=1)
        assert log == list(range(n))

    def test_out_of_range_rejected(self):
        gate = OrderedGate(3)
        with pytest.raises(ValueError):
            with gate.turn(3):
                pass

    def test_repeat_turn_rejected(self):
        gate = OrderedGate(2)
        with gate.turn(0):
            pass
        with pytest.raises(RuntimeError, match="already ran"):
            with gate.turn(0):
                pass

    def test_exception_inside_section_still_releases(self):
        gate = OrderedGate(2)
        with pytest.raises(KeyError):
            with gate.turn(0):
                raise KeyError("boom")
        # iteration 1 must still be admitted
        with gate.turn(1):
            pass
        assert gate.finished()

    def test_completed_counter(self):
        gate = OrderedGate(5)
        assert gate.completed == 0
        with gate.turn(0):
            pass
        assert gate.completed == 1

    def test_concurrent_workers_blocked_until_turn(self):
        # Iteration 1 arrives first and must be *provably parked* before
        # iteration 0 proceeds — wait_for_waiters makes the handshake
        # race-free (an Event only said "eager_one started", not "blocked").
        gate = OrderedGate(2)
        order = []

        def late_zero():
            assert gate.wait_for_waiters(1, timeout=5), (
                "iteration 1 never parked at the gate"
            )
            with gate.turn(0):
                order.append(0)

        def eager_one():
            with gate.turn(1):  # must wait for 0 even though it arrives first
                order.append(1)

        t1 = threading.Thread(target=eager_one)
        t0 = threading.Thread(target=late_zero)
        t1.start()
        t0.start()
        t0.join()
        t1.join()
        assert order == [0, 1]
        assert gate.waiting == 0

    def test_wait_for_waiters_times_out_when_nobody_parks(self):
        gate = OrderedGate(2)
        assert not gate.wait_for_waiters(1, timeout=0.05)
