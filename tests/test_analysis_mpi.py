"""MPI correctness checker: deadlocks, mismatches, leaks."""

import numpy as np
import pytest

from repro.analysis import analyze, check_run
from repro.mpi import Win


TIMEOUT = 6.0


class TestDeadlockDetection:
    def test_recv_recv_deadlock_names_both_ranks(self):
        def broken(comm):
            peer = comm.Get_rank() ^ 1
            incoming = comm.recv(source=peer, tag=7)
            comm.send("never sent", dest=peer, tag=7)
            return incoming

        results, report = check_run(broken, 2, deadlock_timeout=TIMEOUT)
        assert results is None
        assert not report.clean
        diag = report.errors[0]
        assert diag.kind == "deadlock"
        assert "rank 0" in diag.message and "rank 1" in diag.message
        assert "wait-for cycle" in diag.message
        blocked = diag.details["blocked ranks"]
        assert any("rank 0: blocked in recv" in line for line in blocked)
        assert any("rank 1: blocked in recv" in line for line in blocked)

    def test_ssend_ssend_deadlock(self):
        # Plain send is eager-buffered and cannot deadlock here; the
        # synchronous mode blocks until matched — head-to-head it hangs.
        def broken(comm):
            peer = comm.Get_rank() ^ 1
            comm.ssend("hello", dest=peer, tag=1)
            return comm.recv(source=peer, tag=1)

        results, report = check_run(broken, 2, deadlock_timeout=TIMEOUT)
        assert results is None
        diag = report.errors[0]
        assert diag.kind == "deadlock"
        assert "wait-for cycle" in diag.message
        assert any(
            "blocked in ssend" in line for line in diag.details["blocked ranks"]
        )

    def test_analyze_deadlock_patternlet(self):
        report = analyze("deadlock")
        assert not report.clean
        diag = report.errors[0]
        assert diag.kind == "deadlock"
        assert "rank 0" in diag.message and "rank 1" in diag.message

    def test_fixed_ordering_is_clean(self):
        def repaired(comm):
            rank = comm.Get_rank()
            peer = rank ^ 1
            if rank % 2 == 0:
                comm.send(f"from {rank}", dest=peer, tag=7)
                return comm.recv(source=peer, tag=7)
            incoming = comm.recv(source=peer, tag=7)
            comm.send(f"from {rank}", dest=peer, tag=7)
            return incoming

        results, report = check_run(repaired, 2, deadlock_timeout=TIMEOUT)
        assert results == ["from 1", "from 0"]
        assert report.clean
        assert not report.warnings


class TestCollectiveOrdering:
    def test_mismatched_collectives_across_ranks(self):
        def broken(comm):
            if comm.Get_rank() == 0:
                comm.bcast("payload", root=0)
            else:
                comm.gather(comm.Get_rank(), root=0)

        _results, report = check_run(broken, 2, deadlock_timeout=TIMEOUT)
        assert not report.clean
        diag = next(d for d in report.errors if d.kind == "collective-mismatch")
        assert "bcast" in diag.message and "gather" in diag.message

    def test_missing_collective_on_one_rank(self):
        def broken(comm):
            comm.barrier()
            if comm.Get_rank() == 0:
                comm.bcast("only rank 0 broadcasts", root=0)

        _results, report = check_run(broken, 2, deadlock_timeout=TIMEOUT)
        mism = [d for d in report.diagnostics if d.kind == "collective-mismatch"]
        assert mism and "never did" in mism[0].message

    def test_mismatched_root_is_flagged(self):
        def broken(comm):
            comm.bcast("x", root=comm.Get_rank())

        _results, report = check_run(broken, 2, deadlock_timeout=TIMEOUT)
        assert any(d.kind == "collective-mismatch" for d in report.errors)

    def test_matching_collectives_are_clean(self):
        def good(comm):
            comm.barrier()
            data = comm.bcast(comm.Get_rank(), root=0)
            return comm.allreduce(data)

        results, report = check_run(good, 3, deadlock_timeout=TIMEOUT)
        assert results == [0, 0, 0]
        assert report.clean


class TestMessageMismatches:
    def test_dtype_mismatch_warns(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(4, dtype=np.float64), dest=1, tag=3)
            else:
                buf = np.empty(4, dtype=np.int32)
                comm.Recv(buf, source=0, tag=3)

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert report.clean  # converted, not corrupted -> warning severity
        diag = next(d for d in report.warnings if d.kind == "type-mismatch")
        assert "float64" in diag.message and "int32" in diag.message

    def test_count_mismatch_warns(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(2, dtype=np.int64), dest=1, tag=3)
            else:
                buf = np.zeros(8, dtype=np.int64)
                comm.Recv(buf, source=0, tag=3)

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        diag = next(d for d in report.warnings if d.kind == "count-mismatch")
        assert "2 element(s)" in diag.message

    def test_truncation_is_an_error(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.Send(np.arange(8, dtype=np.int64), dest=1, tag=3)
            else:
                comm.Recv(np.zeros(4, dtype=np.int64), source=0, tag=3)

        results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert results is None
        assert any(d.kind == "count-mismatch" for d in report.errors)

    def test_object_send_into_typed_recv_is_an_error(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send({"a": 1}, dest=1, tag=4)
            else:
                comm.Recv(np.zeros(1, dtype=np.int64), source=0, tag=4)

        results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert results is None
        assert any(d.kind == "type-mismatch" for d in report.errors)


class TestFinalizeLeakChecks:
    def test_unconsumed_message_suggests_tag_mismatch(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("lost", dest=1, tag=5)  # receiver listens on tag 6
            # rank 1 never receives

        results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert results is not None
        diag = next(d for d in report.warnings if d.kind == "unconsumed-message")
        assert "tag 5" in diag.message

    def test_leaked_issend_request(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.issend("orphan", dest=1, tag=9)  # never waited, never matched

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        kinds = {d.kind for d in report.warnings}
        assert "leaked-request" in kinds
        assert "unconsumed-message" in kinds

    def test_leaked_irecv_request(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("data", dest=1, tag=1)
            else:
                comm.irecv(source=0, tag=1)  # never waited

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert any(d.kind == "leaked-request" for d in report.warnings)

    def test_completed_requests_are_not_flagged(self):
        def prog(comm):
            rank = comm.Get_rank()
            if rank == 0:
                req = comm.isend("data", dest=1, tag=1)
                req.wait()
            else:
                req = comm.irecv(source=0, tag=1)
                return req.wait()

        results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert results[1] == "data"
        assert report.clean
        assert not report.warnings

    def test_unfreed_window_is_flagged(self):
        def prog(comm):
            mem = np.zeros(4, dtype=np.int64)
            Win.Create(mem, comm)  # no Free

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert any(d.kind == "unfreed-window" for d in report.warnings)

    def test_freed_window_is_clean(self):
        def prog(comm):
            mem = np.zeros(4, dtype=np.int64)
            win = Win.Create(mem, comm)
            win.Fence()
            win.Free()

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert report.clean and not report.warnings


class TestCheckerTransparency:
    def test_results_flow_through_unchanged(self):
        def ring(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            comm.send(rank, dest=(rank + 1) % size, tag=2)
            return comm.recv(source=(rank - 1) % size, tag=2)

        results, report = check_run(ring, 4, deadlock_timeout=TIMEOUT)
        assert results == [3, 0, 1, 2]
        assert report.clean

    def test_clean_report_summarizes_audit(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("x", dest=1, tag=1)
            elif comm.Get_rank() == 1:
                comm.recv(source=0, tag=1)

        _results, report = check_run(prog, 2, deadlock_timeout=TIMEOUT)
        assert report.diagnostics[0].kind == "summary"
        assert "1 matched message(s)" in report.diagnostics[0].message

    def test_patternlets_run_clean_under_checker(self):
        for name in ("sendReceive", "broadcast"):
            report = analyze(name, paradigm="mpi")
            assert report.clean, f"{name}: {report.render()}"
