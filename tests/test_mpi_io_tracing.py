"""MPI-IO (collective file access) and communication tracing."""

import numpy as np
import pytest

from repro.mpi import MPI, RankFailedError, mpirun, trace_run
from repro.mpi.errors import MPIError
from tests.conftest import spmd


class TestFileIO:
    def test_tutorial_collective_write_then_read(self, tmp_path):
        """The mpi4py tutorial's collective I/O example, end to end."""
        path = str(tmp_path / "datafile.contig")

        def writer(comm):
            amode = MPI.MODE_WRONLY | MPI.MODE_CREATE
            fh = MPI.File.Open(comm, path, amode)
            buffer = np.full(10, comm.Get_rank(), dtype="i")
            offset = comm.Get_rank() * buffer.nbytes
            fh.Write_at_all(offset, buffer)
            fh.Close()

        spmd(writer, 4)

        def reader(comm):
            fh = MPI.File.Open(comm, path, MPI.MODE_RDONLY)
            buf = np.empty(10, dtype="i")
            fh.Read_at_all(comm.Get_rank() * buf.nbytes, buf)
            fh.Close()
            return buf.tolist()

        outs = spmd(reader, 4)
        assert outs == [[rank] * 10 for rank in range(4)]

    def test_rank_regions_do_not_overlap(self, tmp_path):
        path = str(tmp_path / "regions.bin")

        def writer(comm):
            fh = MPI.File.Open(comm, path, MPI.MODE_WRONLY | MPI.MODE_CREATE)
            data = np.arange(5, dtype="d") + 100 * comm.Get_rank()
            fh.Write_at_all(comm.Get_rank() * data.nbytes, data)
            size = fh.Get_size()
            fh.Close()
            return size

        sizes = spmd(writer, 3)
        raw = np.fromfile(path, dtype="d")
        expected = np.concatenate([np.arange(5) + 100 * r for r in range(3)])
        np.testing.assert_array_equal(raw, expected)
        assert max(sizes) == 3 * 5 * 8

    def test_independent_write_at(self, tmp_path):
        path = str(tmp_path / "solo.bin")

        def body(comm):
            fh = MPI.File.Open(comm, path, MPI.MODE_RDWR | MPI.MODE_CREATE)
            if comm.Get_rank() == 0:
                fh.Write_at(0, np.array([7, 8, 9], dtype="i"))
            comm.barrier()
            buf = np.empty(3, dtype="i")
            fh.Read_at(0, buf)
            fh.Close()
            return buf.tolist()

        assert spmd(body, 2) == [[7, 8, 9]] * 2

    def test_open_missing_without_create_raises(self, tmp_path):
        path = str(tmp_path / "missing.bin")

        def body(comm):
            MPI.File.Open(comm, path, MPI.MODE_WRONLY)

        with pytest.raises(RankFailedError):
            spmd(body, 2)

    def test_excl_on_existing_raises(self, tmp_path):
        path = tmp_path / "exists.bin"
        path.write_bytes(b"x")

        def body(comm):
            MPI.File.Open(
                comm, str(path), MPI.MODE_WRONLY | MPI.MODE_CREATE | MPI.MODE_EXCL
            )

        with pytest.raises(RankFailedError):
            spmd(body, 1)

    def test_short_read_raises(self, tmp_path):
        path = str(tmp_path / "short.bin")

        def body(comm):
            fh = MPI.File.Open(comm, path, MPI.MODE_RDWR | MPI.MODE_CREATE)
            if comm.Get_rank() == 0:
                fh.Write_at(0, np.zeros(2, dtype="i"))
            comm.barrier()
            buf = np.empty(100, dtype="i")
            try:
                fh.Read_at(0, buf)
                return "no-error"
            except MPIError:
                return "short-read"
            finally:
                fh.Close()

        assert spmd(body, 2) == ["short-read"] * 2

    def test_delete_on_close(self, tmp_path):
        import os

        path = str(tmp_path / "temp.bin")

        def body(comm):
            fh = MPI.File.Open(
                comm, path,
                MPI.MODE_WRONLY | MPI.MODE_CREATE | MPI.MODE_DELETE_ON_CLOSE,
            )
            fh.Write_at_all(0, np.zeros(comm.Get_rank() + 1, dtype="i"))
            fh.Close()

        spmd(body, 2)
        assert not os.path.exists(path)

    def test_two_opens_get_distinct_handles(self, tmp_path):
        a, b = str(tmp_path / "a.bin"), str(tmp_path / "b.bin")

        def body(comm):
            fa = MPI.File.Open(comm, a, MPI.MODE_WRONLY | MPI.MODE_CREATE)
            fb = MPI.File.Open(comm, b, MPI.MODE_WRONLY | MPI.MODE_CREATE)
            fa.Write_at_all(0, np.full(2, 1, dtype="i"))
            fb.Write_at_all(0, np.full(2, 2, dtype="i"))
            fa.Close()
            fb.Close()

        spmd(body, 2)
        assert np.fromfile(a, dtype="i").tolist() == [1, 1]
        assert np.fromfile(b, dtype="i").tolist() == [2, 2]


class TestTracing:
    def test_ring_traffic_matrix(self):
        def ring(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            comm.send(rank, dest=(rank + 1) % size, tag=1)
            return comm.recv(source=(rank - 1) % size, tag=1)

        results, report = trace_run(ring, 4)
        assert results == [3, 0, 1, 2]
        assert report.total_messages == 4
        matrix = report.traffic_matrix()
        for src in range(4):
            assert matrix[src][(src + 1) % 4] == 1
            assert sum(matrix[src]) == 1

    def test_master_worker_traffic_is_star_shaped(self):
        def star(comm):
            rank, size = comm.Get_rank(), comm.Get_size()
            if rank == 0:
                for worker in range(1, size):
                    comm.send("task", dest=worker, tag=1)
                return [comm.recv(tag=2) for _ in range(size - 1)]
            comm.recv(source=0, tag=1)
            comm.send("done", dest=0, tag=2)
            return None

        _results, report = trace_run(star, 4)
        assert report.sent_by(0) == 3
        assert report.received_by(0) == 3
        for worker in (1, 2, 3):
            assert report.sent_by(worker) == 1
            assert report.received_by(worker) == 1

    def test_collectives_do_not_pollute_user_trace(self):
        """bcast/reduce traffic lives in the collective context; the trace
        shows only explicit user sends (what learners should count)."""

        def body(comm):
            comm.bcast("data" if comm.Get_rank() == 0 else None, root=0)
            comm.allreduce(1)
            return None

        _results, report = trace_run(body, 4)
        assert report.total_messages == 0

    def test_bytes_accounted(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send("x" * 100, dest=1)
            elif comm.Get_rank() == 1:
                comm.recv(source=0)

        _results, report = trace_run(body, 2)
        assert report.total_messages == 1
        assert report.total_bytes > 100  # pickled payload

    def test_format_matrix(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send(1, dest=1)
            elif comm.Get_rank() == 1:
                comm.recv(source=0)

        _results, report = trace_run(body, 2)
        text = report.format_matrix()
        assert "src\\dst" in text and "total: 1 messages" in text

    def test_tracer_detaches_cleanly(self):
        """After trace_run, a fresh run on a new world records nothing odd."""
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send(1, dest=1)
            elif comm.Get_rank() == 1:
                comm.recv(source=0)

        trace_run(body, 2)
        assert mpirun(body, 2) == [None, None]  # plain run still works

    def test_collective_traffic_counted_separately(self):
        """Collective transport is tallied apart from the user trace."""

        def body(comm):
            comm.bcast("data" if comm.Get_rank() == 0 else None, root=0)
            comm.allreduce(1)
            return None

        _results, report = trace_run(body, 4)
        assert report.total_messages == 0
        assert report.collective_messages > 0
        assert report.collective_bytes > 0
        assert all(r.tag == -1 for r in report.collective_records)
        assert "collective:" in report.format_matrix()

    def test_p2p_only_run_has_no_collective_records(self):
        def body(comm):
            if comm.Get_rank() == 0:
                comm.send(1, dest=1)
            elif comm.Get_rank() == 1:
                comm.recv(source=0)

        _results, report = trace_run(body, 2)
        assert report.collective_messages == 0
        assert "collective:" not in report.format_matrix()
