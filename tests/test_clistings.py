"""C/OpenMP listings: coverage and structural fidelity to the pragmas."""

import pytest

from repro.patternlets import C_LISTINGS, all_patternlets, c_listing


class TestCoverage:
    def test_every_openmp_patternlet_has_a_c_listing(self):
        names = {p.name for p in all_patternlets("openmp")}
        assert names == set(C_LISTINGS)

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            c_listing("nonexistent")


class TestStructure:
    def test_all_listings_are_complete_c_programs(self):
        for name, source in C_LISTINGS.items():
            assert "#include <omp.h>" in source, name
            assert "int main()" in source, name
            assert source.count("{") == source.count("}"), name

    @pytest.mark.parametrize(
        "name,pragma",
        [
            ("spmd", "#pragma omp parallel"),
            ("critical", "#pragma omp critical"),
            ("atomic", "#pragma omp atomic"),
            ("reduction", "reduction(+:sum)"),
            ("forEqualChunks", "schedule(static)"),
            ("forChunksOf1", "schedule(static,1)"),
            ("forDynamic", "schedule(dynamic,2)"),
            ("barrier", "#pragma omp barrier"),
            ("masterSingle", "#pragma omp master"),
            ("masterSingle", "#pragma omp single"),
            ("sections", "#pragma omp section"),
            ("tasks", "#pragma omp task"),
            ("tasks", "#pragma omp taskwait"),
        ],
    )
    def test_listing_teaches_its_pragma(self, name, pragma):
        assert pragma in c_listing(name)

    def test_race_listing_has_no_protection(self):
        source = c_listing("race")
        assert "critical" not in source
        assert "atomic" not in source
        assert "reduction" not in source

    def test_python_and_c_teach_the_same_concepts(self):
        """The Python patternlet's concepts should surface in the C text."""
        probes = {
            "race": "read-modify-write",
            "reduction": "partials",
            "private": "private",
        }
        for name, phrase in probes.items():
            assert phrase in c_listing(name), name
