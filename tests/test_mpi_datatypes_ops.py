"""Unit tests: MPI datatypes, reduction operations, and Status."""

import numpy as np
import pytest

from repro.mpi import MPI
from repro.mpi.datatypes import from_numpy_dtype
from repro.mpi.ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    Op,
)
from repro.mpi.status import Status


class TestDatatypes:
    def test_extent_matches_numpy_itemsize(self):
        assert MPI.INT.extent == 4
        assert MPI.DOUBLE.extent == 8
        assert MPI.BYTE.extent == 1
        assert MPI.DOUBLE_COMPLEX.extent == 16

    def test_get_extent_returns_lb_and_extent(self):
        assert MPI.DOUBLE.Get_extent() == (0, 8)

    def test_get_size(self):
        assert MPI.FLOAT.Get_size() == 4

    @pytest.mark.parametrize(
        "np_dtype,expected",
        [
            ("int32", MPI.INT),
            ("int64", MPI.LONG),
            ("float32", MPI.FLOAT),
            ("float64", MPI.DOUBLE),
            ("uint8", MPI.BYTE),
            ("bool", MPI.BOOL),
            ("complex128", MPI.DOUBLE_COMPLEX),
        ],
    )
    def test_automatic_discovery(self, np_dtype, expected):
        assert from_numpy_dtype(np.dtype(np_dtype)) == expected

    def test_discovery_rejects_object_dtype(self):
        with pytest.raises(TypeError, match="automatic MPI datatype discovery"):
            from_numpy_dtype(np.dtype(object))

    def test_discovery_rejects_structured_dtype(self):
        with pytest.raises(TypeError):
            from_numpy_dtype(np.dtype([("a", "i4"), ("b", "f8")]))


class TestScalarOps:
    def test_sum_prod_max_min(self):
        assert SUM(3, 4) == 7
        assert PROD(3, 4) == 12
        assert MAX(3, 4) == 4
        assert MIN(3, 4) == 3

    def test_logical_ops(self):
        assert LAND(1, 1) is True and LAND(1, 0) is False
        assert LOR(0, 1) is True and LOR(0, 0) is False
        assert LXOR(1, 0) is True and LXOR(1, 1) is False

    def test_bitwise_ops(self):
        assert BAND(0b1100, 0b1010) == 0b1000
        assert BOR(0b1100, 0b1010) == 0b1110
        assert BXOR(0b1100, 0b1010) == 0b0110

    def test_reduce_sequence_folds_in_order(self):
        assert SUM.reduce_sequence([1, 2, 3, 4]) == 10
        assert PROD.reduce_sequence([1, 2, 3, 4]) == 24

    def test_reduce_sequence_empty_raises(self):
        with pytest.raises(ValueError, match="nothing to reduce"):
            SUM.reduce_sequence([])


class TestVectorOps:
    def test_elementwise_on_lists(self):
        assert SUM([1, 2], [3, 4]) == [4, 6]
        assert MAX([1, 9], [5, 2]) == [5, 9]

    def test_elementwise_preserves_tuple_type(self):
        assert SUM((1, 2), (3, 4)) == (4, 6)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="mismatched"):
            SUM([1, 2], [1, 2, 3])

    def test_scalar_vs_vector_raises(self):
        with pytest.raises(ValueError):
            SUM(1, [1, 2])

    def test_numpy_vectorized(self):
        a = np.arange(5.0)
        b = np.ones(5)
        np.testing.assert_array_equal(SUM(a, b), a + 1)
        np.testing.assert_array_equal(MAX(a, b), np.maximum(a, b))

    def test_numpy_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            SUM(np.ones(3), np.ones(4))


class TestLocOps:
    def test_maxloc_picks_larger_value(self):
        assert MAXLOC((5, 0), (9, 3)) == (9, 3)

    def test_maxloc_ties_break_to_lower_rank(self):
        assert MAXLOC((7, 4), (7, 1)) == (7, 1)

    def test_minloc(self):
        assert MINLOC((5, 0), (2, 3)) == (2, 3)
        assert MINLOC((2, 5), (2, 1)) == (2, 1)


class TestUserOps:
    def test_create_user_op(self):
        concat = Op.Create(lambda a, b: a + b, commute=False)
        assert concat("ab", "cd") == "abcd"
        assert concat.commute is False

    def test_user_op_sees_full_values(self):
        pairwise_max_first = Op.Create(lambda a, b: a if a[0] >= b[0] else b)
        assert pairwise_max_first((3, "x"), (5, "y")) == (5, "y")


class TestStatus:
    def test_fresh_status_has_sentinels(self):
        s = Status()
        assert s.Get_source() == -1
        assert s.Get_tag() == -1
        assert s.Get_count() == 0

    def test_count_in_elements(self):
        s = Status()
        s._set(2, 7, 40)
        assert s.Get_count(MPI.DOUBLE) == 5
        assert s.Get_count(MPI.INT) == 10
        assert s.count == 40

    def test_non_whole_element_count_raises(self):
        s = Status()
        s._set(0, 0, 10)
        with pytest.raises(ValueError, match="whole number"):
            s.Get_count(MPI.DOUBLE)

    def test_properties_mirror_accessors(self):
        s = Status()
        s._set(3, 11, 8)
        assert (s.source, s.tag) == (3, 11)
        assert not s.Is_cancelled()
