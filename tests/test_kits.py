"""Kit model: Table I reproduction, bulk pricing, image compatibility, logistics."""

import pytest

from repro.kits import (
    CATALOG,
    CSIP_IMAGE,
    SUPPORTED_MODELS,
    TABLE1_PART_SKUS,
    UNSUPPORTED_MODELS,
    KitInventory,
    KitSpec,
    KitStatus,
    MicroSDCard,
    Part,
    PiModel,
    SystemImage,
    flash,
    render_table1,
    standard_pi_kit,
)


class TestTable1:
    def test_total_matches_paper_exactly(self):
        assert standard_pi_kit().cost() == 100.66

    def test_part_prices_match_paper(self):
        expected = {
            "canakit-pi4-2g": 62.99,
            "eth-usb-a": 15.95,
            "usb-a-c": 3.99,
            "eth-cable": 1.55,
            "microsd-16g": 5.41,
            "kit-case": 10.77,
        }
        for sku, price in expected.items():
            assert CATALOG[sku].unit_price == price

    def test_kit_has_six_parts_in_table_order(self):
        kit = standard_pi_kit()
        assert kit.part_count() == 6
        assert [name for name, _c in kit.rows()] == [
            CATALOG[sku].name for sku in TABLE1_PART_SKUS
        ]

    def test_render_matches_table_layout(self):
        text = render_table1()
        assert "TABLE I" in text
        assert "CanaKit with 2G Raspberry Pi" in text
        assert "$ 100.66" in text
        assert len(text.splitlines()) == 9  # header x2 + 6 parts + total


class TestBulkPricing:
    def test_bulk_breaks_engage_at_quantity(self):
        dongle = CATALOG["eth-usb-a"]
        assert dongle.price_at(1) == 18.99
        assert dongle.price_at(10) == 15.95
        assert dongle.price_at(22) == 15.95

    def test_list_cost_exceeds_bulk_cost(self):
        kit = standard_pi_kit()
        assert kit.cost(bulk=False) > kit.cost(bulk=True)

    def test_part_validation(self):
        with pytest.raises(ValueError):
            Part("x", "X", unit_price=-1.0)
        with pytest.raises(ValueError):
            Part("x", "X", unit_price=1.0, bulk_breaks={0: 0.5})
        with pytest.raises(ValueError):
            CATALOG["kit-case"].price_at(0)

    def test_custom_kit_composition(self):
        kit = KitSpec("double").add(CATALOG["microsd-16g"], 2)
        assert kit.cost() == pytest.approx(10.82)
        with pytest.raises(ValueError):
            kit.add(CATALOG["kit-case"], 0)


class TestSystemImage:
    def test_supports_3b_onward(self):
        for model in SUPPORTED_MODELS:
            assert CSIP_IMAGE.supports(model), model.name

    def test_rejects_pre_3b(self):
        for model in UNSUPPORTED_MODELS:
            assert not CSIP_IMAGE.supports(model), model.name

    def test_image_ships_the_openmp_materials(self):
        assert CSIP_IMAGE.includes("openmp-patternlets")
        assert CSIP_IMAGE.includes("drug-design-exemplar")
        assert CSIP_IMAGE.version == "3.0.2"

    def test_flash_fits_16gb_card(self):
        card = flash(MicroSDCard(16_000), CSIP_IMAGE)
        assert card.image is CSIP_IMAGE
        assert card.boots_on(SUPPORTED_MODELS[0])

    def test_flash_rejects_small_card(self):
        with pytest.raises(ValueError, match="does not fit"):
            flash(MicroSDCard(1_000), CSIP_IMAGE)

    def test_invalid_card(self):
        with pytest.raises(ValueError):
            MicroSDCard(0)

    def test_custom_image_compat(self):
        legacy = SystemImage("old", "1.0", 2000, min_generation=1.0, url="")
        assert legacy.supports(PiModel("Pi 1B", 1.0, 1, 512))


class TestInventory:
    def test_plan_for_workshop_quantity(self):
        plan = KitInventory().plan(22)
        assert plan.per_kit_bulk == 100.66
        assert plan.total_bulk == pytest.approx(22 * 100.66)
        assert plan.bulk_savings > 0

    def test_single_kit_pays_list_prices(self):
        plan = KitInventory().plan(1)
        assert plan.per_kit_bulk == plan.per_kit_list
        assert plan.per_kit_bulk > 100.66

    def test_assemble_and_mail_lifecycle(self):
        inv = KitInventory()
        kits = inv.assemble(3)
        assert [k.serial for k in kits] == [1, 2, 3]
        inv.mail_all(["amy", "bo"])
        counts = inv.status_counts()
        assert counts[KitStatus.MAILED] == 2
        assert counts[KitStatus.ASSEMBLED] == 1
        kits[0].mark_delivered()
        assert inv.status_counts()[KitStatus.DELIVERED] == 1

    def test_cannot_mail_more_than_assembled(self):
        inv = KitInventory()
        inv.assemble(1)
        with pytest.raises(ValueError, match="only 1 kits"):
            inv.mail_all(["a", "b"])

    def test_cannot_remail_a_mailed_kit(self):
        inv = KitInventory()
        (kit,) = inv.assemble(1)
        kit.mail_to("someone")
        with pytest.raises(ValueError):
            kit.mail_to("someone else")

    def test_delivery_requires_mailing_first(self):
        inv = KitInventory()
        (kit,) = inv.assemble(1)
        with pytest.raises(ValueError):
            kit.mark_delivered()

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            KitInventory().plan(0)

    def test_assembled_kits_carry_current_image(self):
        inv = KitInventory()
        (kit,) = inv.assemble(1)
        assert kit.card.image.version == "3.0.2"
