"""The distributed-memory module content and its workshop integration."""

import pytest

from repro.core import SessionConfig, run_lab_session, simulate_workshop
from repro.patternlets import get_patternlet
from repro.runestone import build_distributed_module, render_text


@pytest.fixture(scope="module")
def module():
    return build_distributed_module()


class TestStructure:
    def test_two_hour_session_pacing(self, module):
        """30 min concepts + 30 min Colab patternlets + 60 min exemplars."""
        assert module.session_minutes == 120
        assert module.fits_lab_period()
        session = [c for c in module.chapters if not c.pre_work]
        assert [c.minutes for c in session] == [30, 30, 60]

    def test_prework_covers_accounts_and_platform_choice(self, module):
        prework = [c for c in module.chapters if c.pre_work]
        assert len(prework) == 1
        text = render_text(module)
        assert "Google account" in text
        assert "Chameleon" in text

    def test_vnc_warning_present(self, module):
        """The operational lesson is baked into the materials."""
        text = render_text(module)
        assert "firewall" in text
        assert "ssh keeps working" in text

    def test_activities_reference_real_mpi_patternlets(self, module):
        for activity in module.all_activities():
            assert activity.paradigm == "mpi"
            patternlet = get_patternlet("mpi", activity.patternlet)
            result = patternlet.run()
            for key in activity.expected:
                assert key in result.values, (activity.title, key)

    def test_covers_the_pattern_progression(self, module):
        names = [a.patternlet for a in module.all_activities()]
        for required in (
            "spmd",
            "sendReceive",
            "messagePassingRing",
            "deadlock",
            "broadcast",
            "scatter",
            "reduce",
            "masterWorker",
        ):
            assert required in names

    def test_exemplar_hour_offers_a_choice(self, module):
        chapter4 = module.chapters[-1]
        titles = [s.title for s in chapter4.sections]
        assert any("Forest fire" in t or "fire" in t.lower() for t in titles)
        assert any("Drug design" in t or "drug" in t.lower() for t in titles)

    def test_question_ids_unique_across_both_modules(self, module):
        from repro.runestone import build_raspberry_pi_module

        ids = [q.activity_id for q in module.all_questions()]
        ids += [q.activity_id for q in build_raspberry_pi_module().all_questions()]
        assert len(ids) == len(set(ids))


class TestSession:
    def test_full_cohort_completes(self, module):
        outcome = run_lab_session(
            module, [f"p{i}" for i in range(8)],
            SessionConfig(seed=4, issue_kinds=()),
        )
        assert outcome.completion_rate == 1.0
        assert outcome.learners_with_issues == 0

    def test_workshop_runs_both_mornings(self):
        report = simulate_workshop()
        assert report.shared_memory_session.module_slug == "raspberry-pi-handout"
        assert report.distributed_session.module_slug == "mpi-distributed-handout"
        assert report.distributed_session.completion_rate == 1.0
        assert report.distributed_session.learners_with_issues == 0
