"""Numerical-integration exemplar: correctness and cross-variant agreement."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplars import (
    integrate_mpi,
    integrate_numpy,
    integrate_omp,
    integrate_seq,
    integration_workload,
    quarter_circle,
)

FAST = settings(max_examples=30, deadline=None)


class TestQuarterCircle:
    def test_endpoints(self):
        assert quarter_circle(0.0) == 2.0
        assert quarter_circle(2.0) == 0.0

    def test_never_negative_even_past_domain(self):
        assert quarter_circle(2.1) == 0.0

    def test_symmetry_value(self):
        assert quarter_circle(math.sqrt(2)) == pytest.approx(math.sqrt(2))


class TestSequential:
    def test_converges_to_pi(self):
        assert integrate_seq(quarter_circle, 0, 2, 100_000) == pytest.approx(
            math.pi, abs=1e-4
        )

    def test_linear_function_is_exact(self):
        # trapezoid is exact for linear integrands at any n
        assert integrate_seq(lambda x: 2 * x + 1, 0, 3, 7) == pytest.approx(12.0)

    def test_single_trapezoid(self):
        assert integrate_seq(lambda x: x, 0, 1, 1) == pytest.approx(0.5)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            integrate_seq(quarter_circle, 0, 2, 0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            integrate_seq(quarter_circle, 2, 0, 10)

    def test_refinement_improves_accuracy(self):
        err = [
            abs(integrate_seq(quarter_circle, 0, 2, n) - math.pi)
            for n in (100, 1000, 10_000)
        ]
        assert err[0] > err[1] > err[2]


class TestVariantAgreement:
    def test_numpy_matches_seq(self):
        assert integrate_numpy(None, 0, 2, 5000) == pytest.approx(
            integrate_seq(quarter_circle, 0, 2, 5000), abs=1e-12
        )

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_omp_matches_seq_exactly(self, threads, schedule):
        seq = integrate_seq(quarter_circle, 0, 2, 10_000)
        par = integrate_omp(10_000, num_threads=threads, schedule=schedule)
        # static partial sums happen to combine in index order here;
        # tolerate last-ulp noise from regrouping
        assert par == pytest.approx(seq, rel=1e-12)

    @pytest.mark.parametrize("procs", [1, 2, 3, 5])
    def test_mpi_matches_seq(self, procs):
        seq = integrate_seq(quarter_circle, 0, 2, 10_000)
        assert integrate_mpi(10_000, np_procs=procs) == pytest.approx(seq, rel=1e-12)

    @FAST
    @given(
        n=st.integers(2, 2000),
        threads=st.integers(1, 4),
    )
    def test_property_omp_equals_seq(self, n, threads):
        assert integrate_omp(n, num_threads=threads) == pytest.approx(
            integrate_seq(quarter_circle, 0, 2, n), rel=1e-9
        )

    def test_custom_integrand_custom_interval(self):
        seq = integrate_seq(math.exp, -1, 1, 4000)
        omp = integrate_omp(4000, num_threads=3, a=-1, b=1, f=math.exp)
        mpi = integrate_mpi(4000, np_procs=3, a=-1, b=1, f=math.exp)
        expected = math.e - 1 / math.e
        for v in (seq, omp, mpi):
            assert v == pytest.approx(expected, abs=1e-4)


class TestWorkloadDescriptor:
    def test_ops_scale_with_n(self):
        assert integration_workload(2000).total_ops == 2 * integration_workload(1000).total_ops

    def test_nearly_perfectly_parallel(self):
        w = integration_workload(10_000)
        assert w.serial_fraction < 0.01
        assert w.imbalance == 0.0

    def test_message_count_grows_with_procs(self):
        w = integration_workload(1000)
        assert w.messages(8) > w.messages(2)
        assert w.messages(1) == 0.0
