"""Load harness + socket adapter: closed-loop learners, real HTTP smoke."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.runestone import build_raspberry_pi_module
from repro.serve import CourseApp, answer_pool, run_load
from repro.serve.httpd import start_background
from repro.serve.load import _Collector, _timed


class TestAnswerPool:
    def test_covers_every_question(self):
        module = build_raspberry_pi_module()
        pool = answer_pool(module)
        assert {aid for aid, _c, _w in pool} == {
            q.activity_id for q in module.all_questions()
        }

    def test_correct_answers_actually_grade_correct(self):
        module = build_raspberry_pi_module()
        for activity_id, correct, wrong in answer_pool(module):
            question = module.find_question(activity_id)
            if correct is not None:  # pattern blanks only ship a wrong answer
                assert question.grade(correct).correct is True
            assert question.grade(wrong).correct is False


class TestRunLoad:
    def test_small_run_is_clean(self):
        app = CourseApp(metrics_name=None)
        try:
            report = run_load(
                app, learners=20, workers=4, reads=2, submit_questions=2,
                gradebook_every=10, seed=3,
            )
        finally:
            app.close()
        assert report.errors == 0
        assert report.requests > 20 * 3  # join + reads + submits each
        assert report.latency_us.count == report.requests
        assert report.throughput_rps > 0
        assert set(report.route_latency_us) >= {
            "POST /join/<code>", "GET /m/<id>", "POST /m/<id>/submit",
        }
        # Multi-tenant by construction: both demo cohorts saw learners.
        assert app.registry.cohort("pi-2020").store.learners()
        assert app.registry.cohort("mpi-2020").store.learners()

    def test_owns_its_app_when_not_given_one(self):
        report = run_load(learners=4, workers=2, reads=1, submit_questions=1,
                          gradebook_every=0, seed=0)
        assert report.errors == 0 and report.requests >= 8

    def test_report_to_dict_is_json_serializable(self):
        report = run_load(learners=4, workers=2, reads=1, submit_questions=1,
                          gradebook_every=2, seed=0)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["learners"] == 4
        assert "p99_ms" in doc["latency"]
        assert doc["server"]["cache"]["hits"] > 0

    def test_render_mentions_the_vitals(self):
        report = run_load(learners=4, workers=2, reads=1, submit_questions=1,
                          gradebook_every=0, seed=0)
        text = report.render()
        assert "throughput" in text and "p99" in text and "cache" in text

    def test_rejects_empty_registry(self):
        from repro.serve.registry import CohortRegistry

        app = CourseApp(CohortRegistry(), metrics_name=None, warm=False)
        try:
            with pytest.raises(ValueError, match="no cohorts"):
                run_load(app, learners=1, workers=1)
        finally:
            app.close()


class TestRetryOn503:
    def test_timed_obeys_retry_after(self):
        calls = {"n": 0}

        class FlakyClient:
            def request(self, method, target, **kwargs):
                calls["n"] += 1
                status = 503 if calls["n"] == 1 else 200

                class R:
                    pass

                r = R()
                r.status = status
                r.headers = {"retry-after": "0"} if status == 503 else {}
                return r

        collector = _Collector()
        response = _timed(collector, FlakyClient(), "GET /x", "GET", "/x")
        assert response.status == 200 and calls["n"] == 2
        assert collector.retries == 1 and collector.rejected == 1
        assert collector.errors == 0  # 503s are shed load, not errors
        assert collector.status_counts == {503: 1, 200: 1}


class TestSocketServer:
    def test_http_round_trip_over_a_real_socket(self):
        app = CourseApp(metrics_name=None)
        server, thread = start_background(app)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
                assert resp.status == 200
                assert json.loads(resp.read())["status"] == "ok"
            with urllib.request.urlopen(f"{base}/readyz", timeout=5) as resp:
                assert json.loads(resp.read())["cohorts"] == 2

            req = urllib.request.Request(
                f"{base}/join/PI2020",
                data=json.dumps({"learner": "socket-learner"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=5) as resp:
                assert resp.status == 201

            bad = urllib.request.Request(f"{base}/m/ghost", method="GET")
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(bad, timeout=5)
            doc = json.loads(exc.value.read())
            assert exc.value.code == 404
            assert doc["error"]["code"] == "unknown_module"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            app.close()


class TestServeLoadCli:
    def test_cli_smoke_with_artifact(self, tmp_path, capsys):
        out = tmp_path / "load.json"
        rc = main([
            "serve-load", "--learners", "6", "--workers", "2", "--reads", "1",
            "--submit-questions", "1", "--out", str(out),
        ])
        assert rc == 0
        assert "throughput" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["learners"] == 6 and doc["errors"] == 0

    def test_cli_json_output(self, capsys):
        rc = main([
            "serve-load", "--learners", "4", "--workers", "2", "--reads", "1",
            "--submit-questions", "1", "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["requests"] > 0


@pytest.mark.slow
class TestLoadAtScale:
    def test_thousand_learners_sustained(self):
        """The acceptance bar: ≥1k simulated learners, clean, in-process."""
        report = run_load(learners=1000, workers=8, reads=2,
                          submit_questions=3, gradebook_every=50, seed=0)
        assert report.errors == 0
        assert report.requests >= 1000 * 4
        assert report.throughput_rps > 100
        assert report.latency_us.percentile(99) > 0
