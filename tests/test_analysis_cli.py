"""The ``repro analyze`` CLI and the report format (golden files)."""

import json
import re
from pathlib import Path

from repro.analysis import analyze
from repro.cli import main

GOLDENS = Path(__file__).parent / "goldens"


def _normalize(text: str) -> str:
    """Mask volatile file:line sites so goldens survive refactors."""
    return re.sub(r"\S+\.py:\d+", "<site>", text)


class TestAnalyzeCommand:
    def test_analyze_race_exits_nonzero_and_reports(self, capsys):
        rc = main(["analyze", "race"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "== repro analyze: openmp:race [race-detector] ==" in out
        assert "[data-race]" in out
        assert "verdict: 1 error(s)" in out

    def test_analyze_clean_patternlet_exits_zero(self, capsys):
        rc = main(["analyze", "atomic"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: clean" in out

    def test_analyze_json_is_machine_readable(self, capsys):
        rc = main(["analyze", "race", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["engine"] == "race-detector"
        assert payload["clean"] is False
        assert payload["diagnostics"][0]["kind"] == "data-race"

    def test_analyze_mpi_deadlock(self, capsys):
        rc = main(["analyze", "deadlock", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["engine"] == "mpi-checker"
        assert "rank 0" in payload["diagnostics"][0]["message"]

    def test_paradigm_flag_disambiguates(self, capsys):
        rc = main(["analyze", "broadcast", "--paradigm", "mpi"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mpi:broadcast" in out

    def test_unknown_patternlet_exits_two(self, capsys):
        rc = main(["analyze", "nosuchthing"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "nosuchthing" in err


class TestGoldenReportFormat:
    def test_forced_race_report_matches_golden(self):
        report = analyze("race", forced=True)
        got = json.loads(_normalize(report.to_json()))
        want = json.loads((GOLDENS / "analyze_race.json").read_text())
        assert got == want

    def test_deadlock_report_matches_golden(self):
        report = analyze("deadlock")
        got = json.loads(_normalize(report.to_json()))
        want = json.loads((GOLDENS / "analyze_deadlock.json").read_text())
        assert got == want

    def test_text_render_structure(self):
        report = analyze("race", forced=True)
        lines = report.render().splitlines()
        assert lines[0] == "== repro analyze: openmp:race [race-detector] =="
        assert lines[-1] == "verdict: 1 error(s), 0 warning(s)"
        assert any(line.startswith("ERROR") for line in lines)
