"""``repro bench``: runner, schema, baseline comparison, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    DEFAULT_THRESHOLD,
    baseline_delta,
    SCHEMA_VERSION,
    bench_names,
    compare_results,
    format_comparison,
    run_benchmarks,
    serialization_report,
)
from repro.cli import main


class TestRunner:
    def test_document_shape(self):
        doc = run_benchmarks(["heat_seq"], quick=True, warmup=0, repeat=1)
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["quick"] is True
        assert doc["calibration_s"] > 0
        row = doc["benchmarks"]["heat_seq"]
        assert row["group"] == "heat"
        assert row["time_s"] > 0
        assert row["normalized"] == pytest.approx(
            row["time_s"] / doc["calibration_s"]
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="nosuch"):
            run_benchmarks(["nosuch"], quick=True)

    def test_registry_names_are_unique(self):
        names = bench_names()
        assert len(names) == len(set(names))
        assert "integration_omp" in names and "drugdesign_omp" in names

    def test_data_path_kernels_registered(self):
        names = bench_names()
        for name in (
            "forestfire_omp",
            "sorting_blocks_vector",
            "mpi_pingpong_obj",
            "mpi_pingpong_buf",
            "allreduce_buf",
        ):
            assert name in names

    def test_rows_carry_serialization_counters(self):
        doc = run_benchmarks(["heat_seq"], quick=True, warmup=0, repeat=1)
        row = doc["benchmarks"]["heat_seq"]
        assert row["pickle_calls"] == 0 and row["pickled_bytes"] == 0

    def test_object_pingpong_pickles_buffer_pingpong_does_not(self):
        doc = run_benchmarks(
            ["mpi_pingpong_obj", "mpi_pingpong_buf", "allreduce_buf"],
            quick=True,
            warmup=0,
            repeat=1,
        )
        rows = doc["benchmarks"]
        assert rows["mpi_pingpong_obj"]["pickled_bytes"] > 0
        # The zero-copy claim, pinned: typed-buffer traffic serializes nothing.
        assert rows["mpi_pingpong_buf"]["pickled_bytes"] == 0
        assert rows["mpi_pingpong_buf"]["pickle_calls"] == 0
        assert rows["allreduce_buf"]["pickled_bytes"] == 0

    def test_serialization_report_shape(self):
        doc = run_benchmarks(
            ["mpi_pingpong_obj", "mpi_pingpong_buf"], quick=True, warmup=0, repeat=1
        )
        report = serialization_report(doc)
        assert report["schema"] == SCHEMA_VERSION
        assert report["benchmarks"]["mpi_pingpong_buf"]["zero_copy"] is True
        assert report["benchmarks"]["mpi_pingpong_obj"]["zero_copy"] is False
        assert report["total_pickled_bytes"] == (
            doc["benchmarks"]["mpi_pingpong_obj"]["pickled_bytes"]
        )


def _doc(normals: dict[str, float], schema: int = SCHEMA_VERSION) -> dict:
    return {
        "schema": schema,
        "calibration_s": 0.01,
        "benchmarks": {
            name: {"group": "g", "time_s": 0.01 * norm, "normalized": norm}
            for name, norm in normals.items()
        },
    }


class TestComparison:
    def test_within_threshold_is_ok(self):
        rows, regression = compare_results(
            _doc({"a": 1.2}), _doc({"a": 1.0}), threshold=0.30
        )
        assert not regression
        assert rows[0]["status"] == "ok"
        assert rows[0]["ratio"] == pytest.approx(1.2)

    def test_regression_detected(self):
        rows, regression = compare_results(
            _doc({"a": 1.4}), _doc({"a": 1.0}), threshold=0.30
        )
        assert regression
        assert rows[0]["status"] == "regression"

    def test_improvement_flagged(self):
        rows, regression = compare_results(
            _doc({"a": 0.5}), _doc({"a": 1.0}), threshold=0.30
        )
        assert not regression
        assert rows[0]["status"] == "improved"

    def test_new_and_missing_never_gate(self):
        rows, regression = compare_results(
            _doc({"new_one": 9.0}), _doc({"old_one": 0.001}), threshold=0.30
        )
        assert not regression
        assert {r["name"]: r["status"] for r in rows} == {
            "new_one": "new",
            "old_one": "missing",
        }

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            compare_results(_doc({"a": 1.0}), _doc({"a": 1.0}, schema=99))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_results(_doc({"a": 1.0}), _doc({"a": 1.0}), threshold=-0.1)

    def test_sub_floor_timings_never_gate(self):
        # 200x slower but both sides under the noise floor: jitter, not
        # a regression (fabricated docs use time_s = 0.01 * normalized).
        rows, regression = compare_results(
            _doc({"a": 0.02}), _doc({"a": 0.0001}), threshold=0.30
        )
        assert not regression
        assert rows[0]["status"] == "negligible"
        # One side above the floor: the gate applies as usual.
        rows, regression = compare_results(
            _doc({"a": 2.0}), _doc({"a": 0.0001}), threshold=0.30
        )
        assert regression and rows[0]["status"] == "regression"

    def test_format_comparison_mentions_gate(self):
        rows, _ = compare_results(
            _doc({"a": 1.4}), _doc({"a": 1.0}), threshold=0.30
        )
        text = format_comparison(rows, DEFAULT_THRESHOLD)
        assert "30%" in text and "regression" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "integration_seq" in out

    def test_unknown_bench_exits_2(self, capsys):
        assert main(["bench", "nosuch", "--quick"]) == 2

    def test_run_gate_and_regression_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        baseline = tmp_path / "baseline.json"
        argv = [
            "bench", "heat_seq", "--quick", "--warmup", "0", "--repeat", "1",
            "--out", str(out), "--baseline", str(baseline),
        ]
        # No baseline yet: results written, gate skipped.
        assert main(argv) == 0
        assert json.loads(out.read_text())["schema"] == SCHEMA_VERSION
        # A --quick run refuses to become the baseline unless forced.
        assert main(argv + ["--update-baseline"]) == 2
        assert not baseline.exists()
        assert main(argv + ["--update-baseline", "--allow-quick-baseline"]) == 0
        assert baseline.exists()
        assert main(argv + ["--threshold", "10.0"]) == 0
        # Doctor the baseline to be impossibly fast: the gate must trip.
        # (time_s is pushed above the noise floor so the negligible rule
        # does not absorb the fabricated ratio.)
        doc = json.loads(baseline.read_text())
        for row in doc["benchmarks"].values():
            row["normalized"] /= 1e6
            row["time_s"] = 1.0
        baseline.write_text(json.dumps(doc))
        assert main(argv) == 3
        assert "regression" in capsys.readouterr().err.lower() or True

    def test_quick_baseline_refusal_message(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        rc = main([
            "bench", "heat_seq", "--quick", "--warmup", "0", "--repeat", "1",
            "--out", str(out), "--baseline", str(tmp_path / "b.json"),
            "--update-baseline",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "refusing" in err and "--allow-quick-baseline" in err
        assert not out.exists()  # refused before running anything

    def test_full_run_may_update_baseline_without_flag(self, tmp_path):
        baseline = tmp_path / "b.json"
        rc = main([
            "bench", "hooks_off", "--warmup", "0", "--repeat", "1",
            "--out", str(tmp_path / "run.json"), "--baseline", str(baseline),
            "--update-baseline",
        ])
        assert rc == 0 and baseline.exists()

    def test_serialization_report_flag(self, tmp_path):
        report = tmp_path / "serialization.json"
        rc = main([
            "bench", "mpi_pingpong_buf", "--quick", "--warmup", "0",
            "--repeat", "1", "--out", str(tmp_path / "run.json"),
            "--baseline", str(tmp_path / "none.json"),
            "--serialization-report", str(report),
        ])
        assert rc == 0
        doc = json.loads(report.read_text())
        assert doc["benchmarks"]["mpi_pingpong_buf"]["zero_copy"] is True


class TestBaselineDelta:
    def test_same_kernel_set(self):
        assert baseline_delta(_doc({"a": 1.0}), _doc({"a": 2.0})) == (
            " (same kernel set)"
        )

    def test_new_kernels_listed_sorted(self):
        delta = baseline_delta(
            _doc({"a": 1.0, "course_serve_read": 1.0, "course_serve_load": 1.0}),
            _doc({"a": 1.0}),
        )
        assert delta == " (+2 new: course_serve_load, course_serve_read)"

    def test_removed_kernels_listed(self):
        delta = baseline_delta(_doc({"a": 1.0}), _doc({"a": 1.0, "gone": 1.0}))
        assert delta == " (-1 removed: gone)"

    def test_added_and_removed_combined(self):
        delta = baseline_delta(_doc({"b": 1.0}), _doc({"a": 1.0}))
        assert delta == " (+1 new: b; -1 removed: a)"

    def test_empty_previous_doc(self):
        assert "+1 new: a" in baseline_delta(_doc({"a": 1.0}), {})

    def test_cli_prints_delta_on_update(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        common = ["--quick", "--warmup", "0", "--repeat", "1",
                  "--out", str(tmp_path / "run.json"),
                  "--baseline", str(baseline),
                  "--update-baseline", "--allow-quick-baseline"]
        assert main(["bench", "hooks_off", *common]) == 0
        capsys.readouterr()
        assert main(["bench", "course_serve_read", *common]) == 0
        out = capsys.readouterr().out
        assert "+1 new: course_serve_read" in out
        assert "-1 removed: hooks_off" in out


class TestServeKernels:
    def test_registered_and_listed(self, capsys):
        for name in ("course_serve_read", "course_serve_submit",
                     "course_serve_load"):
            assert name in bench_names()
        assert main(["bench", "--list"]) == 0
        assert "course_serve_load" in capsys.readouterr().out

    def test_quick_serve_kernels_run_clean(self):
        doc = run_benchmarks(
            ["course_serve_read", "course_serve_submit"],
            quick=True, warmup=0, repeat=1,
        )
        for name in ("course_serve_read", "course_serve_submit"):
            row = doc["benchmarks"][name]
            assert row["group"] == "serve" and row["time_s"] > 0

    def test_serve_load_kernel_counts_requests(self):
        doc = run_benchmarks(["course_serve_load"], quick=True, warmup=0,
                             repeat=1)
        assert doc["benchmarks"]["course_serve_load"]["time_s"] > 0

    def test_sub_floor_serve_rows_never_gate(self):
        # Quick serve rows can dip under the 5 ms noise floor on fast
        # machines; jitter there must read "negligible", not "regression".
        rows, regression = compare_results(
            _doc({"course_serve_read": 0.3}),
            _doc({"course_serve_read": 0.0001}),
            threshold=0.30,
        )
        assert not regression and rows[0]["status"] == "negligible"
