"""Unit tests: mpi4py-style buffer-specification parsing."""

import numpy as np
import pytest

from repro.mpi import MPI
from repro.mpi.buffers import parse_buffer, parse_vector_buffer
from repro.mpi.errors import InvalidCountError


class TestParseBuffer:
    def test_bare_array(self):
        arr = np.arange(10, dtype="i")
        spec = parse_buffer(arr)
        assert spec.count == 10
        assert spec.datatype == MPI.INT
        assert spec.nbytes == 40

    def test_list_with_datatype(self):
        arr = np.arange(10, dtype="d")
        spec = parse_buffer([arr, MPI.DOUBLE])
        assert spec.count == 10
        assert spec.datatype == MPI.DOUBLE

    def test_count_inferred_from_byte_size(self):
        # [data, TYPE]: count = nbytes / extent, per the mpi4py tutorial.
        arr = np.zeros(4, dtype="i8")  # 32 bytes
        spec = parse_buffer([arr, MPI.INT])  # 4-byte elements
        assert spec.count == 8

    def test_explicit_count(self):
        arr = np.arange(10, dtype="i")
        spec = parse_buffer([arr, 6, MPI.INT])
        assert spec.count == 6
        np.testing.assert_array_equal(spec.data(), np.arange(6))

    def test_count_and_type_any_order(self):
        arr = np.arange(10, dtype="i")
        assert parse_buffer([arr, MPI.INT, 6]).count == 6

    def test_count_exceeding_capacity_raises(self):
        arr = np.arange(4, dtype="i")
        with pytest.raises(InvalidCountError):
            parse_buffer([arr, 5, MPI.INT])

    def test_duplicate_datatype_raises(self):
        arr = np.arange(4, dtype="i")
        with pytest.raises(ValueError, match="duplicate datatype"):
            parse_buffer([arr, MPI.INT, MPI.INT])

    def test_duplicate_count_raises(self):
        arr = np.arange(4, dtype="i")
        with pytest.raises(ValueError, match="duplicate count"):
            parse_buffer([arr, 2, 3])

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError, match="dtype=object"):
            parse_buffer(np.array([{"a": 1}]))

    def test_multidimensional_array_flattened(self):
        arr = np.zeros((4, 5), dtype="d")
        spec = parse_buffer(arr)
        assert spec.count == 20

    def test_noncontiguous_rejected(self):
        arr = np.zeros((6, 6), dtype="d")[::2, ::2]
        with pytest.raises(ValueError, match="contiguous"):
            parse_buffer(arr)

    def test_fill_writes_through_to_caller(self):
        arr = np.zeros(5, dtype="d")
        spec = parse_buffer(arr)
        spec.fill(np.arange(5.0))
        np.testing.assert_array_equal(arr, np.arange(5.0))

    def test_fill_overflow_raises(self):
        spec = parse_buffer(np.zeros(3, dtype="d"))
        with pytest.raises(InvalidCountError):
            spec.fill(np.arange(4.0))

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_buffer([])


class TestParseVectorBuffer:
    def test_counts_and_displs(self):
        arr = np.arange(10, dtype="i")
        spec = parse_vector_buffer([arr, [2, 3], [0, 5], MPI.INT], size=2)
        assert spec.counts == (2, 3)
        assert spec.displs == (0, 5)

    def test_default_packed_displacements(self):
        arr = np.arange(10, dtype="i")
        spec = parse_vector_buffer([arr, [4, 6]], size=2)
        assert spec.displs == (0, 4)

    def test_wrong_counts_length_raises(self):
        arr = np.arange(10, dtype="i")
        with pytest.raises(InvalidCountError, match="counts has"):
            parse_vector_buffer([arr, [5, 5, 5]], size=2)

    def test_negative_count_raises(self):
        arr = np.arange(10, dtype="i")
        with pytest.raises(InvalidCountError, match="non-negative"):
            parse_vector_buffer([arr, [-1, 3]], size=2)

    def test_segment_overflow_raises(self):
        arr = np.arange(4, dtype="i")
        with pytest.raises(InvalidCountError, match="exceeds buffer"):
            parse_vector_buffer([arr, [2, 3], [0, 2]], size=2)

    def test_zero_counts_allowed(self):
        arr = np.arange(4, dtype="i")
        spec = parse_vector_buffer([arr, [0, 4]], size=2)
        assert spec.counts == (0, 4)
