"""Synchronization constructs: critical, atomic, barrier, single, master, locks."""

import threading

import pytest

from repro.openmp import (
    AtomicAccumulator,
    AtomicCounter,
    Lock,
    barrier,
    critical,
    get_thread_num,
    master,
    parallel_region,
    parallel_sections,
    sections,
    single,
)


class TestCritical:
    def test_critical_protects_unsafe_update(self):
        counter = AtomicCounter()

        def body():
            for _ in range(2000):
                with critical("c"):
                    counter.unsafe_read_modify_write(1)

        parallel_region(body, num_threads=4)
        assert counter.value == 8000

    def test_named_sections_are_independent_locks(self):
        """Two differently named criticals can be held simultaneously."""
        order = []
        gate = threading.Event()

        def body():
            tid = get_thread_num()
            if tid == 0:
                with critical("a"):
                    # If "b" wrongly shared "a"'s lock, thread 1 could never
                    # set the gate — the assert turns that deadlock-shaped
                    # flake into an immediate, named failure.
                    assert gate.wait(timeout=5), (
                        "critical('b') holder never signaled: named "
                        "sections are sharing a lock"
                    )
                    order.append("a-done")
            else:
                with critical("b"):  # must not block on critical("a")
                    order.append("b-done")
                gate.set()

        parallel_region(body, num_threads=2)
        assert order == ["b-done", "a-done"]

    def test_unnamed_criticals_share_one_lock(self):
        counter = AtomicCounter()

        def body():
            for _ in range(1000):
                with critical():
                    counter.unsafe_read_modify_write(1)

        parallel_region(body, num_threads=4)
        assert counter.value == 4000

    def test_noop_outside_region(self):
        with critical("anything"):
            pass  # must not raise or deadlock


class TestAtomic:
    def test_atomic_add_is_exact(self):
        counter = AtomicCounter()
        parallel_region(
            lambda: [counter.add(1) for _ in range(5000)] and None, num_threads=4
        )
        assert counter.value == 20_000

    def test_fetch_and_add_returns_old(self):
        counter = AtomicCounter(10)
        assert counter.fetch_and_add(5) == 10
        assert counter.value == 15

    def test_increment_decrement(self):
        counter = AtomicCounter()
        assert counter.increment() == 1
        assert counter.decrement() == 0

    def test_float_accumulator(self):
        acc = AtomicAccumulator()
        parallel_region(
            lambda: [acc.add(0.5) for _ in range(1000)] and None, num_threads=4
        )
        assert acc.value == pytest.approx(2000.0)


class TestBarrier:
    def test_barrier_separates_phases(self):
        log = []
        lock = threading.Lock()

        def body():
            with lock:
                log.append("one")
            barrier()
            with lock:
                log.append("two")

        parallel_region(body, num_threads=5)
        assert log[:5] == ["one"] * 5
        assert log[5:] == ["two"] * 5

    def test_multiple_barriers(self):
        positions = []
        lock = threading.Lock()

        def body():
            for phase in range(4):
                barrier()
                with lock:
                    positions.append(phase)

        parallel_region(body, num_threads=3)
        assert positions == sorted(positions)

    def test_noop_outside_region(self):
        barrier()  # must not hang


class TestMasterSingle:
    def test_master_predicate(self):
        outs = parallel_region(lambda: master(), num_threads=4)
        assert outs == [True, False, False, False]

    def test_master_callable_form(self):
        outs = parallel_region(lambda: master(lambda: "ran"), num_threads=3)
        assert outs == ["ran", None, None]

    def test_single_elects_exactly_one_winner(self):
        winners = parallel_region(lambda: single(), num_threads=6)
        assert sum(winners) == 1

    def test_consecutive_singles_each_elect_once(self):
        def body():
            return (single(), single(), single())

        outs = parallel_region(body, num_threads=4)
        for occurrence in range(3):
            assert sum(o[occurrence] for o in outs) == 1

    def test_single_callable_with_implied_barrier(self):
        ran = []

        def body():
            single(lambda: ran.append(get_thread_num()))
            # after the implied barrier the side effect must be visible
            return len(ran)

        outs = parallel_region(body, num_threads=4)
        assert len(ran) == 1
        assert outs == [1, 1, 1, 1]

    def test_single_outside_region_is_true(self):
        assert single() is True


class TestLock:
    def test_set_unset(self):
        lock = Lock()
        lock.set()
        assert lock.test() is False  # already held
        lock.unset()
        assert lock.test() is True
        lock.unset()

    def test_context_manager(self):
        lock = Lock()
        with lock:
            assert lock.test() is False
        assert lock.test() is True
        lock.unset()

    def test_mutual_exclusion_under_contention(self):
        lock = Lock()
        counter = AtomicCounter()

        def body():
            for _ in range(1000):
                with lock:
                    counter.unsafe_read_modify_write(1)

        parallel_region(body, num_threads=4)
        assert counter.value == 4000


class TestSections:
    def test_each_section_runs_exactly_once(self):
        calls = {label: 0 for label in "abcde"}
        lock = threading.Lock()

        def make(label):
            def task():
                with lock:
                    calls[label] += 1
                return label

            return task

        results = parallel_sections([make(l) for l in "abcde"], num_threads=3)
        assert results == list("abcde")
        assert all(v == 1 for v in calls.values())

    def test_more_threads_than_sections(self):
        results = parallel_sections([lambda: 1, lambda: 2], num_threads=4)
        assert results == [1, 2]

    def test_empty_sections(self):
        assert parallel_sections([]) == []

    def test_sections_outside_region_run_serially(self):
        assert sections([lambda: "x", lambda: "y"]) == ["x", "y"]


class TestScheduledDeterminism:
    """Timing-free variants of the sync guarantees, via the testkit.

    The probabilistic tests above rely on preemption to *surface* bugs;
    these replay adversarial interleavings deterministically, so a
    regression fails on every run instead of on an unlucky one.
    """

    def test_critical_correct_under_adversarial_schedules(self):
        from repro.testkit import RandomScheduler, run_scheduled

        def workload():
            counter = AtomicCounter()

            def body():
                for _ in range(2):
                    with critical("c"):
                        counter.unsafe_read_modify_write(1)

            parallel_region(body, num_threads=2)
            return counter.value

        for seed in range(10):
            run = run_scheduled(workload, RandomScheduler(seed))
            assert run.error is None, f"seed {seed}: {run.error}"
            assert not run.stalled, f"seed {seed} stalled ({run.token})"
            assert run.result == 4, (
                f"seed {seed} lost an update under {run.token}"
            )

    def test_atomic_correct_under_adversarial_schedules(self):
        from repro.testkit import RandomScheduler, run_scheduled

        def workload():
            counter = AtomicCounter()

            def body():
                for _ in range(2):
                    counter.add(1)

            parallel_region(body, num_threads=2)
            return counter.value

        for seed in range(10):
            run = run_scheduled(workload, RandomScheduler(seed))
            assert run.error is None and not run.stalled
            assert run.result == 4, (
                f"seed {seed} lost an update under {run.token}"
            )

    def test_barrier_separates_phases_under_all_schedules(self):
        from repro.testkit import RandomScheduler, run_scheduled

        def workload():
            log = []

            def body():
                log.append("a")
                barrier()
                log.append("b")

            parallel_region(body, num_threads=3)
            return "".join(log)

        for seed in range(10):
            run = run_scheduled(workload, RandomScheduler(seed))
            assert run.error is None and not run.stalled
            assert run.result == "aaabbb", (
                f"seed {seed}: barrier leaked a phase under {run.token}: "
                f"{run.result}"
            )
