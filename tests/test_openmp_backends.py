"""Execution-backend layer: chunking, process pool, shared memory, config.

Process-backend kernels must pickle, so every kernel these tests ship to
the pool is a module-level function (or ``functools.partial`` over one) —
which is itself one of the behaviours under test.
"""

from __future__ import annotations

import functools
import os

import numpy as np
import pytest

from repro.openmp import (
    BACKENDS,
    BackendUnavailable,
    SharedArray,
    chunk_ranges,
    for_loop,
    get_backend,
    parallel_for,
    parallel_for_chunks,
    parallel_region,
    resolve_backend,
    run_chunks,
    scoped,
    set_backend,
)
from repro.openmp import hooks
from repro.openmp.env import _reset_for_testing

BOTH_BACKENDS = pytest.mark.parametrize("backend", ["threads", "processes"])


# --- module-level kernels (picklable across the process boundary) ----------

def chunk_sum(lo: int, hi: int) -> int:
    return sum(range(lo, hi))


def chunk_len(lo: int, hi: int) -> int:
    return hi - lo


def square(i: int) -> int:
    return i * i


def write_chunk(shared: SharedArray, lo: int, hi: int) -> None:
    shared.array[lo:hi] = np.arange(lo, hi, dtype=shared.dtype)


# --- chunk decomposition ---------------------------------------------------

class TestChunkRanges:
    def test_static_blocks_cover_range(self):
        ranges = chunk_ranges(10, 3, "static")
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_n_zero_yields_no_batches(self):
        for schedule in ("static", "dynamic", "guided"):
            assert chunk_ranges(0, 4, schedule) == []

    def test_chunk_larger_than_n_is_one_batch(self):
        for schedule in ("static", "dynamic", "guided"):
            assert chunk_ranges(5, 4, schedule, chunk=10) == [(0, 5)]

    def test_guided_single_worker_still_terminates(self):
        ranges = chunk_ranges(10, 1, "guided")
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_guided_batches_decay(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(100, 4, "guided")]
        assert sizes[0] == 25
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_dynamic_honours_chunk(self):
        assert chunk_ranges(7, 2, "dynamic", chunk=3) == [(0, 3), (3, 6), (6, 7)]

    def test_more_workers_than_iterations(self):
        ranges = chunk_ranges(2, 8, "static")
        covered = [i for lo, hi in ranges for i in range(lo, hi)]
        assert covered == [0, 1]
        assert all(hi > lo for lo, hi in ranges)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            chunk_ranges(4, 0)
        with pytest.raises(ValueError):
            chunk_ranges(4, 2, chunk=0)
        with pytest.raises(ValueError):
            chunk_ranges(4, 2, "bogus")


# --- run_chunks / parallel_for_chunks --------------------------------------

class TestRunChunks:
    @BOTH_BACKENDS
    def test_results_in_batch_order(self, backend):
        ranges = chunk_ranges(20, 3, "dynamic", chunk=4)
        results = run_chunks(chunk_sum, ranges, workers=3, backend=backend)
        assert results == [sum(range(lo, hi)) for lo, hi in ranges]

    @BOTH_BACKENDS
    def test_empty_ranges(self, backend):
        assert run_chunks(chunk_sum, [], workers=2, backend=backend) == []

    @BOTH_BACKENDS
    def test_parallel_for_chunks_reduction(self, backend):
        total = parallel_for_chunks(
            100, chunk_sum, num_workers=3, reduction="+", backend=backend
        )
        assert total == sum(range(100))

    @BOTH_BACKENDS
    def test_parallel_for_chunks_n_zero(self, backend):
        assert parallel_for_chunks(0, chunk_sum, num_workers=2, backend=backend) == []
        assert (
            parallel_for_chunks(
                0, chunk_sum, num_workers=2, reduction="+", backend=backend
            )
            == 0
        )

    @BOTH_BACKENDS
    def test_parallel_for_chunks_chunk_bigger_than_n(self, backend):
        got = parallel_for_chunks(
            3, chunk_len, num_workers=2, schedule="dynamic", chunk=99,
            backend=backend,
        )
        assert got == [3]

    @BOTH_BACKENDS
    def test_runtime_schedule_resolves_from_config(self, backend):
        with scoped(schedule="dynamic", chunk=2):
            got = parallel_for_chunks(
                6, chunk_len, num_workers=2, schedule="runtime", backend=backend
            )
        assert got == [2, 2, 2]

    def test_unpicklable_kernel_raises_backend_unavailable(self):
        captured = []
        with pytest.raises(BackendUnavailable, match="module-level"):
            run_chunks(
                lambda lo, hi: captured.append((lo, hi)),
                [(0, 2)],
                workers=2,
                backend="processes",
            )


# --- parallel_for on the process backend -----------------------------------

class TestProcessParallelFor:
    def test_reduction_parity_with_threads(self):
        expected = parallel_for(200, square, num_threads=3, reduction="+")
        got = parallel_for(
            200, square, num_threads=3, reduction="+", backend="processes"
        )
        assert got == expected == sum(i * i for i in range(200))

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_all_schedules(self, schedule):
        got = parallel_for(
            50, square, num_threads=2, schedule=schedule, reduction="+",
            backend="processes",
        )
        assert got == sum(i * i for i in range(50))

    def test_n_zero(self):
        assert (
            parallel_for(0, square, num_threads=2, reduction="+",
                         backend="processes")
            == 0
        )

    def test_max_reduction(self):
        got = parallel_for(
            30, square, num_threads=2, reduction="max", backend="processes"
        )
        assert got == 29 * 29


# --- shared-memory arrays --------------------------------------------------

class TestSharedArray:
    def test_from_array_roundtrip(self):
        src = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArray.from_array(src) as shared:
            assert shared.shape == (3, 4)
            assert np.array_equal(shared.array, src)

    def test_worker_writes_visible_to_parent(self):
        with SharedArray(32, np.float64) as shared:
            shared.array[:] = -1.0
            ranges = chunk_ranges(32, 4, "static")
            run_chunks(
                functools.partial(write_chunk, shared),
                ranges,
                workers=4,
                backend="processes",
            )
            assert np.array_equal(shared.array, np.arange(32, dtype=np.float64))


# --- backend configuration -------------------------------------------------

class TestBackendConfig:
    def test_registry(self):
        assert BACKENDS == ("threads", "processes")

    def test_set_get_backend(self):
        assert get_backend() == "threads"
        set_backend("processes")
        try:
            assert get_backend() == "processes"
            assert resolve_backend(None) == "processes"
        finally:
            set_backend("threads")

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_scoped_restores_all_settings(self):
        from repro.openmp import get_config

        cfg = get_config()
        before = (cfg.num_threads, cfg.schedule, cfg.chunk, cfg.backend)
        with scoped(num_threads=7, schedule="guided", chunk=5, backend="processes"):
            assert (cfg.num_threads, cfg.schedule) == (7, "guided")
            assert (cfg.chunk, cfg.backend) == (5, "processes")
        assert (cfg.num_threads, cfg.schedule, cfg.chunk, cfg.backend) == before

    def test_omp_backend_env_var(self, monkeypatch):
        monkeypatch.setenv("OMP_BACKEND", "processes")
        _reset_for_testing()
        try:
            assert get_backend() == "processes"
        finally:
            monkeypatch.delenv("OMP_BACKEND")
            _reset_for_testing()

    def test_omp_backend_env_var_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("OMP_BACKEND", "quantum")
        _reset_for_testing()
        try:
            assert get_backend() == "threads"
        finally:
            monkeypatch.delenv("OMP_BACKEND")
            _reset_for_testing()


# --- for_loop scheduler-key regression -------------------------------------

class TestForLoopSchedulerKeys:
    def test_same_body_two_dynamic_loops_both_complete(self):
        """Regression: the shared-scheduler key used to be id(body)-based, so
        the *same* body object reaching a second identically-shaped loop
        reused the first loop's exhausted scheduler and iterated nothing."""
        one = lambda i: 1  # noqa: E731 - identity matters: same object twice

        def body():
            first = for_loop(one, 8, schedule="dynamic", reduction="+")
            second = for_loop(one, 8, schedule="dynamic", reduction="+")
            return first, second

        results = parallel_region(body, num_threads=2)
        assert results == [(8, 8), (8, 8)]

    def test_same_body_in_region_loop_guided(self):
        one = lambda i: 1  # noqa: E731

        def body():
            totals = []
            for _ in range(3):
                totals.append(for_loop(one, 10, schedule="guided", reduction="+"))
            return totals

        results = parallel_region(body, num_threads=2)
        assert results == [[10, 10, 10], [10, 10, 10]]


# --- instrumentation hooks fast path ---------------------------------------

class TestHooksFastPath:
    def test_emit_disabled_is_noop(self):
        seen = []
        assert not hooks.enabled
        hooks.emit("fork", "team")  # must not raise, must not deliver
        assert seen == []

    def test_attach_enables_and_delivers(self):
        seen = []

        def observer(event, *args):
            seen.append((event, args))

        hooks.attach(observer)
        try:
            assert hooks.enabled
            hooks.emit("barrier_enter")
            hooks.emit("acquire", "k")
            assert seen == [("barrier_enter", ()), ("acquire", ("k",))]
        finally:
            hooks.detach(observer)
        assert not hooks.enabled

    def test_detach_during_delivery_is_safe(self):
        events = []

        def observer(event, *args):
            events.append(event)
            hooks.detach(observer)

        hooks.attach(observer)
        try:
            hooks.emit("acquire", "k")
            hooks.emit("release", "k")  # observer already detached
        finally:
            hooks.detach(observer)
        assert events == ["acquire"]


# --- wall-clock speedup (the acceptance criterion) -------------------------

@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs >= 2 cores; this host has fewer",
)
class TestRealSpeedup:
    def test_process_backend_beats_sequential(self):
        from repro.exemplars.drugdesign import generate_ligands, run_omp, run_seq
        from repro.exemplars.integration import integrate_omp, integrate_seq, quarter_circle
        from repro.platforms import measure_wall_time

        n = 400_000
        seq_s = measure_wall_time(
            lambda: integrate_seq(quarter_circle, 0.0, 2.0, n), warmup=1, repeat=3
        )
        par_s = measure_wall_time(
            lambda: integrate_omp(n, num_threads=4, backend="processes"),
            warmup=1,
            repeat=3,
        )
        assert seq_s / par_s > 1.3

        ligands = generate_ligands(600, max_len=48, seed=11)
        seq_s = measure_wall_time(lambda: run_seq(ligands), warmup=1, repeat=3)
        par_s = measure_wall_time(
            lambda: run_omp(ligands, num_threads=4, chunk=16, backend="processes"),
            warmup=1,
            repeat=3,
        )
        assert seq_s / par_s > 1.3
