"""Integration: every shipped example runs end to end.

Each example is executed in-process (runpy) with scaled-down arguments so
the whole file stays fast; stdout is captured and spot-checked for the
landmark lines a reader would look for.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(capsys, monkeypatch, name: str, *argv: str) -> str:
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "quickstart.py")
    assert "Greetings from process" in out
    assert "TABLE I" in out
    assert "pre_m = 2.82" in out


def test_run_colab_notebook(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "run_colab_notebook.py", "3")
    assert out.count("Greetings from process") == 3
    assert "All cells executed." in out


def test_raspberry_pi_lab(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "raspberry_pi_lab.py")
    assert "2.3 Race Conditions" in out
    assert "module complete: 100%" in out
    assert "question score 100%" in out


def test_forest_fire_study(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "forest_fire_study.py", "13", "4")
    assert "bit-for-bit" in out
    assert "no speedup" in out  # the Colab takeaway


def test_drug_design_study(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "drug_design_study.py", "20", "6")
    assert "master-worker agree exactly" in out
    assert "faster" in out


def test_workshop_report(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "workshop_report.py")
    assert "$ 100.66" in out
    assert "TABLE II" in out
    assert "VNC lockouts: 3" in out
    assert "Headline findings:" in out


def test_parallel_sorting(capsys, monkeypatch):
    out = run_example(capsys, monkeypatch, "parallel_sorting.py", "400")
    assert "task-parallel mergesort" in out
    assert "crossover" in out
