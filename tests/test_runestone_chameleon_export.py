"""Chameleon Jupyter notebook and .ipynb export."""

import json

import pytest

from repro.runestone import build_chameleon_notebook, build_mpi_colab_notebook


class TestChameleonNotebook:
    @pytest.fixture(scope="class")
    def executed(self):
        nb = build_chameleon_notebook(np=3, trials=6, size=13)
        return nb, nb.run_all()

    def test_all_cells_succeed(self, executed):
        _nb, results = executed
        failures = [(r.cell_index, r.error) for r in results if not r.ok]
        assert not failures

    def test_fire_sweep_covers_all_probabilities(self, executed):
        _nb, results = executed
        fire = [r for r in results if r.kind == "mpirun"][0]
        assert fire.stdout.count("% burned") == 10
        assert "prob 1.0: 100.0% burned" in fire.stdout

    def test_fire_matches_direct_sequential_run(self, executed):
        from repro.exemplars import fire_curve_seq

        _nb, results = executed
        fire = [r for r in results if r.kind == "mpirun"][0]
        reference = fire_curve_seq(trials=6, size=13, seed=2020)
        first_line = fire.stdout.splitlines()[0]
        assert f"{100 * reference.points[0].avg_burned:5.1f}% burned" in first_line

    def test_speedup_cell_prints_cluster_study(self, executed):
        _nb, results = executed
        python_cells = [r for r in results if r.kind == "python"]
        study_out = python_cells[0].stdout
        assert "Chameleon cluster" in study_out
        assert "speedup" in study_out

    def test_drug_design_cell(self, executed):
        _nb, results = executed
        drug = [r for r in results if r.kind == "mpirun"][1]
        assert "max score" in drug.stdout


class TestIpynbExport:
    @pytest.fixture(scope="class")
    def doc(self):
        nb = build_mpi_colab_notebook(np=4)
        results = nb.run_all()
        return nb.to_ipynb(results)

    def test_nbformat_envelope(self, doc):
        assert doc["nbformat"] == 4
        assert doc["metadata"]["kernelspec"]["language"] == "python"

    def test_cell_types_preserved(self, doc):
        kinds = {c["cell_type"] for c in doc["cells"]}
        assert kinds == {"markdown", "code"}

    def test_outputs_attached_to_executed_cells(self, doc):
        greet = [
            c
            for c in doc["cells"]
            if c["cell_type"] == "code"
            and any(
                "Greetings" in "".join(o.get("text", []))
                for o in c.get("outputs", [])
            )
        ]
        assert len(greet) == 1
        text = "".join(greet[0]["outputs"][0]["text"])
        assert text.count("Greetings from process") == 4

    def test_export_without_results_has_no_outputs(self):
        nb = build_mpi_colab_notebook(np=2)
        doc = nb.to_ipynb()
        assert all(not c.get("outputs") for c in doc["cells"] if c["cell_type"] == "code")

    def test_round_trips_through_json(self, doc, tmp_path):
        nb = build_mpi_colab_notebook(np=4)
        path = nb.save_ipynb(tmp_path / "out.ipynb", nb.run_all())
        loaded = json.loads(path.read_text())
        assert loaded["nbformat"] == 4
        assert len(loaded["cells"]) == len(nb.cells)

    def test_source_lines_keep_newlines(self, doc):
        for cell in doc["cells"]:
            source = cell["source"]
            if len(source) > 1:
                assert all(line.endswith("\n") for line in source[:-1])
