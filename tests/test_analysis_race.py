"""Happens-before race detector: true positives, true negatives, API."""

import threading

import pytest

from repro.analysis import (
    TrackedVar,
    analyze,
    instrument,
    race_detector,
)
from repro.openmp import AtomicCounter, Lock, parallel_region
from repro.openmp.sync import barrier, critical


class TestTruePositives:
    def test_unprotected_increment_races_every_run(self):
        # Deterministic: the verdict depends on synchronization structure,
        # not on the schedule — so it must hold on every single run.
        for _ in range(3):
            with race_detector() as det:
                x = TrackedVar(0, name="x")
                parallel_region(lambda: x.add(1), num_threads=2)
            report = det.report()
            assert not report.clean
            assert report.errors[0].kind == "data-race"
            assert "'x'" in report.errors[0].message

    def test_diagnostic_names_both_accesses_and_site(self):
        with race_detector() as det:
            x = TrackedVar(0, name="shared")
            parallel_region(lambda: x.add(1), num_threads=2)
        diag = det.report().errors[0]
        assert "test_analysis_race.py" in diag.location
        assert "thread" in diag.details["first access"]
        assert "thread" in diag.details["second access"]
        assert diag.details["candidate lockset"] == "(empty)"

    def test_unsafe_counter_rmw_is_diagnosed(self):
        with race_detector() as det:
            counter = AtomicCounter(0)
            parallel_region(
                lambda: counter.unsafe_read_modify_write(1), num_threads=2
            )
        assert any(d.kind == "data-race" for d in det.report().errors)

    def test_analyze_race_patternlet_deterministic(self):
        for _ in range(3):
            report = analyze("race")
            assert not report.clean
            assert report.errors[0].kind == "data-race"
            assert "AtomicCounter" in report.errors[0].message

    def test_one_report_per_location(self):
        with race_detector() as det:
            x = TrackedVar(0, name="x")

            def body():
                for _ in range(50):
                    x.add(1)

            parallel_region(body, num_threads=4)
        races = [d for d in det.report().diagnostics if d.kind == "data-race"]
        assert len(races) == 1


class TestTrueNegatives:
    @pytest.mark.parametrize("name", ["critical", "atomic", "reduction"])
    def test_fixed_patternlets_analyze_clean(self, name):
        report = analyze(name)
        assert report.clean
        assert not report.warnings
        assert report.diagnostics[0].kind == "summary"

    def test_critical_section_orders_accesses(self):
        with race_detector() as det:
            x = TrackedVar(0, name="x")

            def body():
                with critical("guard"):
                    x.add(1)

            parallel_region(body, num_threads=4)
        assert det.report().clean

    def test_explicit_lock_orders_accesses(self):
        with race_detector() as det:
            lock = Lock()
            x = TrackedVar(0, name="x")

            def body():
                with lock:
                    x.add(1)

            parallel_region(body, num_threads=4)
        assert det.report().clean

    def test_fork_join_ordering_is_understood(self):
        with race_detector() as det:
            x = TrackedVar(0, name="x")
            x.add(1)  # before the fork
            parallel_region(lambda: x.read(), num_threads=2)
            x.add(1)  # after the join
        assert det.report().clean

    def test_barrier_separated_phases_do_not_race(self):
        from repro.openmp.team import get_thread_num

        with race_detector() as det:
            x = TrackedVar(0, name="x")

            def body():
                if get_thread_num() == 0:
                    x.write(1)
                barrier()
                x.read()  # every thread reads after the barrier

            parallel_region(body, num_threads=3)
        assert det.report().clean

    def test_reduction_note_explains_why_clean(self):
        report = analyze("reduction")
        assert any("reduction" in note for note in report.notes)


class TestLocksetFallback:
    def test_ordered_but_unlocked_writes_warn(self):
        # Thread 0 writes, barrier, thread 1 writes: happens-before clean,
        # but no common lock — Eraser flags the fragile discipline.
        from repro.openmp.team import get_thread_num

        with race_detector() as det:
            x = TrackedVar(0, name="x")

            def body():
                if get_thread_num() == 0:
                    x.write(1)
                barrier()
                if get_thread_num() == 1:
                    x.write(2)

            parallel_region(body, num_threads=2)
        report = det.report()
        assert report.clean
        assert any(d.kind == "lockset-empty" for d in report.warnings)


class TestTrackedVarApi:
    def test_read_write_add_value(self):
        x = TrackedVar(10, name="x")
        assert x.read() == 10
        x.write(11)
        assert x.value == 11
        x.value = 12
        assert x.add(3) == 15
        assert x.peek() == 15

    def test_instrument_wraps_plain_values(self):
        x = instrument(5, name="x")
        assert isinstance(x, TrackedVar)
        assert x.peek() == 5

    def test_instrument_passes_through_instrumented_types(self):
        counter = AtomicCounter(0)
        assert instrument(counter) is counter
        x = TrackedVar(0)
        assert instrument(x) is x

    def test_forced_race_under_raw_threads_is_diagnosed(self):
        # No fork/join events at all: threads register lazily.
        with race_detector() as det:
            x = TrackedVar(0, name="x")
            go = threading.Event()

            def writer():
                go.wait()
                x.add(1)

            t = threading.Thread(target=writer)
            t.start()
            x.add(1)
            go.set()
            t.join()
        assert any(d.kind == "data-race" for d in det.report().diagnostics)


class TestDetectorOverheadIsolation:
    def test_hooks_disabled_outside_context(self):
        from repro.openmp import hooks

        assert not hooks.enabled
        with race_detector():
            assert hooks.enabled
        assert not hooks.enabled

    def test_runtime_results_unaffected_under_analysis(self):
        from repro.openmp import parallel_for

        with race_detector() as det:
            total = parallel_for(
                1000, lambda i: i, num_threads=4, reduction="+"
            )
        assert total == 499500
        assert det.report().clean
