"""Regression: worker-process events must reach the parent recorder.

Before the forwarding paths existed, anything emitted inside a
``processes``-backend worker (OpenMP chunk tasks, MPI proc ranks) was
captured into a fork-copied buffer and silently discarded.  These tests
pin the fix for both transports.
"""

import pytest

from repro.obs import build_profile, record
from repro.obs.recorder import ForwardedEvents, ingest_forwarded
from repro.obs.events import Event
from repro.openmp.backends import run_chunks, shutdown_pool


def _sum_chunk(lo, hi):
    return sum(range(lo, hi))


@pytest.fixture(autouse=True)
def _fresh_pool():
    yield
    shutdown_pool()


class TestOpenMPChunkForwarding:
    def test_worker_chunk_events_reach_parent(self):
        ranges = [(0, 50), (50, 100), (100, 150)]
        with record() as rec:
            out = run_chunks(_sum_chunk, ranges, workers=2, backend="processes")
        assert out == [sum(range(lo, hi)) for lo, hi in ranges]
        chunk_spans = [ev for ev in rec.events() if ev.name == "chunk_begin"]
        assert len(chunk_spans) == len(ranges)
        assert {ev.args for ev in chunk_spans} == set(ranges)
        # Events are tagged with the worker process, not the parent.
        assert all(ev.proc and ev.proc[0] == "worker" for ev in chunk_spans)

    def test_worker_lanes_in_profile(self):
        with record() as rec:
            run_chunks(_sum_chunk, [(0, 10), (10, 20)], workers=2,
                       backend="processes")
        profile = build_profile(rec.events())
        kinds = {lane.kind for lane in profile.lanes}
        assert "omp-worker" in kinds
        assert any(s.cat == "chunk" for s in profile.spans)

    def test_untraced_run_unchanged(self):
        out = run_chunks(_sum_chunk, [(0, 10)], workers=1, backend="processes")
        assert out == [45]


class TestMPIProcForwarding:
    def test_proc_rank_events_reach_parent(self):
        from repro.mpi.procs import run_procs

        def body(comm):
            token = comm.bcast(comm.Get_rank(), root=0)
            return token

        with record() as rec:
            results = run_procs(body, 3)
        assert results == [0, 0, 0]
        ranks = {ev.proc for ev in rec.events() if ev.proc}
        assert ranks >= {("rank", 0), ("rank", 1), ("rank", 2)}
        names = {ev.name for ev in rec.events()}
        assert "coll_enter" in names and "coll_exit" in names

    def test_proc_rank_profile_lanes(self):
        from repro.mpi.procs import run_procs

        def body(comm):
            return comm.allreduce(comm.Get_rank())

        with record() as rec:
            results = run_procs(body, 3)
        assert results == [3, 3, 3]
        profile = build_profile(rec.events())
        rank_lanes = [lane for lane in profile.lanes if lane.kind == "mpi-rank"]
        assert [lane.index for lane in rank_lanes] == [0, 1, 2]

    def test_untraced_run_unchanged(self):
        from repro.mpi.procs import run_procs

        def body(comm):
            return comm.Get_rank() * 2

        assert run_procs(body, 3) == [0, 2, 4]


class TestIngestForwarded:
    def _fwd(self, ts_list, t0):
        events = [
            Event(ts=ts, source="openmp", name="read", proc=("worker", 1))
            for ts in ts_list
        ]
        return ForwardedEvents(events=events, t0=t0, pid=1)

    def test_shared_clock_offset_zero(self):
        with record() as rec:
            ingest_forwarded(self._fwd([5.0, 6.0], t0=4.0), submit_ts=3.0)
        assert [ev.ts for ev in rec.events()] == [5.0, 6.0]

    def test_clock_behind_submit_rebased(self):
        """A worker clock earlier than the submit point gets re-based."""
        with record() as rec:
            ingest_forwarded(self._fwd([1.0, 2.0], t0=0.5), submit_ts=100.0)
        assert [ev.ts for ev in rec.events()] == [100.5, 101.5]

    def test_dropped_counter_propagates(self):
        fwd = self._fwd([1.0], t0=0.0)
        fwd.dropped = 7
        with record() as rec:
            ingest_forwarded(fwd, submit_ts=0.0)
        assert rec.dropped == 7
