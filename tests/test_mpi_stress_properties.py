"""Randomized stress properties for the MPI runtime.

Two generators probe the runtime where hand-written tests can't:

* random *message soups* — arbitrary (sender, receiver, tag, payload)
  multisets posted with nonblocking sends and drained with wildcard
  receives: every message must arrive exactly once, FIFO per channel;
* random *collective programs* — arbitrary sequences of collectives with
  random roots executed back-to-back, checking that internal sequence
  numbering keeps concurrent collectives from cross-matching.
"""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG, MAX, SUM, Status
from tests.conftest import spmd

FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@FAST
@given(data=st.data())
def test_random_message_soup_delivers_exactly_once(data):
    size = data.draw(st.integers(2, 5))
    messages = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, size - 1),  # sender
                st.integers(0, size - 1),  # receiver
                st.integers(0, 7),  # tag
                st.integers(-1000, 1000),  # payload
            ),
            max_size=30,
        )
    )
    incoming_count = [0] * size
    for _s, receiver, _t, _p in messages:
        incoming_count[receiver] += 1

    def body(comm):
        rank = comm.Get_rank()
        for sender, receiver, tag, payload in messages:
            if sender == rank:
                comm.isend((sender, tag, payload), dest=receiver, tag=tag)
        received = []
        status = Status()
        for _ in range(incoming_count[rank]):
            value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            # envelope metadata must agree with the payload's self-description
            assert value[0] == status.Get_source()
            assert value[1] == status.Get_tag()
            received.append(value)
        return received

    outs = spmd(body, size)
    delivered = sorted(v for out in outs for v in out)
    expected = sorted((s, t, p) for s, _r, t, p in messages)
    assert delivered == expected


@FAST
@given(data=st.data())
def test_random_message_soup_is_fifo_per_channel(data):
    size = data.draw(st.integers(2, 4))
    # many messages on one (sender, receiver, tag) channel, interleaved with
    # noise on other tags
    channel_count = data.draw(st.integers(1, 15))
    noise_tags = data.draw(st.lists(st.integers(1, 5), max_size=10))

    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            for i in range(channel_count):
                comm.isend(i, dest=1, tag=0)
            for tag in noise_tags:
                comm.isend(-tag, dest=1, tag=tag)
            return None
        if rank == 1:
            ordered = [comm.recv(source=0, tag=0) for _ in range(channel_count)]
            for tag in noise_tags:
                comm.recv(source=0, tag=tag)
            return ordered
        return None

    outs = spmd(body, size)
    assert outs[1] == list(range(channel_count))


_COLLECTIVES = ("bcast", "allreduce_sum", "allreduce_max", "barrier", "allgather", "scatter_gather")


@FAST
@given(data=st.data())
def test_random_collective_programs(data):
    size = data.draw(st.integers(1, 5))
    program = data.draw(
        st.lists(
            st.tuples(
                st.sampled_from(_COLLECTIVES),
                st.integers(0, size - 1),  # root where applicable
                st.integers(-100, 100),  # value seed
            ),
            max_size=12,
        )
    )

    def body(comm):
        rank = comm.Get_rank()
        log = []
        for kind, root, seed in program:
            if kind == "bcast":
                value = (seed, "payload") if rank == root else None
                log.append(comm.bcast(value, root=root))
            elif kind == "allreduce_sum":
                log.append(comm.allreduce(rank + seed, op=SUM))
            elif kind == "allreduce_max":
                log.append(comm.allreduce(rank * seed, op=MAX))
            elif kind == "barrier":
                comm.barrier()
                log.append("b")
            elif kind == "allgather":
                log.append(tuple(comm.allgather((rank, seed))))
            elif kind == "scatter_gather":
                chunks = [seed + i for i in range(comm.Get_size())] if rank == root else None
                mine = comm.scatter(chunks, root=root)
                gathered = comm.gather(mine, root=root)
                log.append(tuple(gathered) if rank == root else None)
        return log

    outs = spmd(body, size)
    # Verify against the sequential model of each collective.
    for step, (kind, root, seed) in enumerate(program):
        if kind == "bcast":
            for out in outs:
                assert out[step] == (seed, "payload")
        elif kind == "allreduce_sum":
            expected = sum(range(size)) + size * seed
            assert all(out[step] == expected for out in outs)
        elif kind == "allreduce_max":
            expected = max(r * seed for r in range(size))
            assert all(out[step] == expected for out in outs)
        elif kind == "allgather":
            expected = tuple((r, seed) for r in range(size))
            assert all(out[step] == expected for out in outs)
        elif kind == "scatter_gather":
            expected = tuple(seed + i for i in range(size))
            assert outs[root][step] == expected


@FAST
@given(
    size=st.integers(2, 5),
    rounds=st.integers(1, 6),
)
def test_mixed_p2p_and_collectives_do_not_interfere(size, rounds):
    """User p2p traffic around collectives must never be stolen by them."""

    def body(comm):
        rank = comm.Get_rank()
        right = (rank + 1) % size
        left = (rank - 1) % size
        tokens = []
        for round_no in range(rounds):
            comm.isend(("token", rank, round_no), dest=right, tag=round_no)
            total = comm.allreduce(1, op=SUM)
            assert total == size
            token = comm.recv(source=left, tag=round_no)
            tokens.append(token)
            comm.barrier()
        return tokens

    outs = spmd(body, size)
    for rank, tokens in enumerate(outs):
        left = (rank - 1) % size
        assert tokens == [("token", left, r) for r in range(rounds)]
