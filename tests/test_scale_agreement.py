"""Static cost predictions vs the instrumented runtime (ISSUE 7 gate).

The cost analyzer claims it can predict an exemplar's communication
volume without running it.  This suite runs the three MPI exemplars with
an observer on the :mod:`repro.mpi.hooks` seam, counts every user-level
``send`` and collective-transport ``coll_msg`` event (and their bytes),
and requires the static model's sample at the same ``(N, P)`` to agree
within 10% — the acceptance bar from the issue; in practice the model is
exact on all three.
"""

import pytest

from repro.analysis.scale.cost import analyze_module_cost
from repro.mpi import hooks


class _CommMeter:
    """Counts transport messages and bytes off the MPI hook bus."""

    def __init__(self) -> None:
        self.msgs = 0
        self.bytes = 0

    def __call__(self, event: str, *args) -> None:
        if event == "send":  # cid, src, dest, tag, nbytes
            self.msgs += 1
            self.bytes += args[4]
        elif event == "coll_msg":  # cid, src, dest, nbytes
            self.msgs += 1
            self.bytes += args[3]


def _measure(run) -> _CommMeter:
    meter = _CommMeter()
    hooks.attach(meter)
    try:
        run()
    finally:
        hooks.detach(meter)
    return meter


def _assert_close(predicted, measured, what: str) -> None:
    assert predicted is not None, f"{what}: static model abstained"
    assert measured > 0, f"{what}: nothing measured"
    rel = abs(predicted - measured) / measured
    assert rel <= 0.10, (
        f"{what}: static {predicted} vs dynamic {measured} "
        f"({rel:.1%} off, bar is 10%)")


class TestIntegrationAgreement:
    N, P = 400, 4

    @pytest.fixture(scope="class")
    def static_sample(self):
        model = analyze_module_cost(
            "repro.exemplars.integration", "integrate_mpi",
            n_param="n", n_values=(self.N,), p_values=(self.P,))
        return model.sample_at(p=self.P, n=self.N)

    @pytest.fixture(scope="class")
    def measured(self):
        from repro.exemplars.integration import integrate_mpi

        return _measure(lambda: integrate_mpi(self.N, np_procs=self.P))

    def test_message_count(self, static_sample, measured):
        _assert_close(static_sample.msgs, measured.msgs,
                      "integration msgs")

    def test_communication_bytes(self, static_sample, measured):
        _assert_close(static_sample.bytes, measured.bytes,
                      "integration bytes")


class TestHeatAgreement:
    N, STEPS, P = 64, 4, 4

    @pytest.fixture(scope="class")
    def static_sample(self):
        model = analyze_module_cost(
            "repro.exemplars.heat", "heat_mpi",
            bindings={"steps": self.STEPS},
            n_param="n", n_values=(self.N,), p_values=(self.P,))
        return model.sample_at(p=self.P, n=self.N)

    @pytest.fixture(scope="class")
    def measured(self):
        from repro.exemplars.heat import heat_mpi

        return _measure(
            lambda: heat_mpi(self.N, self.STEPS, np_procs=self.P))

    def test_message_count(self, static_sample, measured):
        _assert_close(static_sample.msgs, measured.msgs, "heat msgs")

    def test_communication_bytes(self, static_sample, measured):
        _assert_close(static_sample.bytes, measured.bytes, "heat bytes")

    def test_model_sees_every_comm_site(self, static_sample):
        kinds = {(s.kind, s.name) for s in static_sample.sites}
        # cart setup, the halo sendrecv pair, and the result gather
        assert ("coll", "cart_setup") in kinds
        assert ("coll", "gather") in kinds
        assert any(kind == "p2p" for kind, _ in kinds)


class TestForestFireAgreement:
    PROBS, TRIALS, SIZE, P = (0.4, 0.6), 4, 15, 4

    @pytest.fixture(scope="class")
    def static_sample(self):
        model = analyze_module_cost(
            "repro.exemplars.forestfire", "fire_curve_mpi",
            bindings={"probs": self.PROBS, "trials": self.TRIALS,
                      "size": self.SIZE},
            p_values=(self.P,))
        return model.sample_at(p=self.P)

    @pytest.fixture(scope="class")
    def measured(self):
        from repro.exemplars.forestfire import fire_curve_mpi

        return _measure(lambda: fire_curve_mpi(
            probs=self.PROBS, trials=self.TRIALS, size=self.SIZE,
            np_procs=self.P))

    def test_message_count(self, static_sample, measured):
        _assert_close(static_sample.msgs, measured.msgs,
                      "forestfire msgs")

    def test_communication_bytes(self, static_sample, measured):
        _assert_close(static_sample.bytes, measured.bytes,
                      "forestfire bytes")


class TestPredictionAcrossSizes:
    """The fitted polynomial must predict sizes it never sampled."""

    def test_integration_poly_extrapolates_to_unsampled_p(self):
        model = analyze_module_cost(
            "repro.exemplars.integration", "integrate_mpi",
            n_param="n", n_values=(100, 200, 400), p_values=(1, 2, 3, 4, 5))
        assert model.msgs_poly is not None

        from repro.exemplars.integration import integrate_mpi

        meter = _measure(lambda: integrate_mpi(400, np_procs=6))
        predicted = model.msgs_poly(400.0, 6.0)
        _assert_close(round(predicted), meter.msgs,
                      "integration msgs at unsampled P=6")
