"""The zero-copy data path: shm transport lifecycle and buffer equivalence.

Covers the transport pieces behind the uppercase verbs on the processes
backend — attach-side segment caching, unlink-on-exit hygiene, inline vs
shared-segment payload shapes — plus the two regression guards on the
contiguity contract (``parse_buffer`` rejects strided views with a
recipe; ``SharedArray.from_array`` copies them), and the headline
invariant: typed-buffer traffic serializes nothing.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mpi import fork_available, run_procs
from repro.mpi.buffers import parse_buffer
from repro.mpi.serial import reset_serialized, serialized_totals
from repro.mpi.shm import SegmentCache, SendSlot, create_segment, ship, fetch
from repro.obs import serialization_totals
from repro.openmp import SharedArray

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process backend needs os.fork"
)


def _shm_entries() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestContiguityContract:
    def test_parse_buffer_rejects_sliced_view_with_recipe(self):
        a = np.arange(16, dtype=np.float64)
        with pytest.raises(ValueError, match="ascontiguousarray"):
            parse_buffer(a[::2])

    def test_parse_buffer_rejects_transposed_view(self):
        a = np.zeros((4, 6))
        with pytest.raises(ValueError, match="contiguous"):
            parse_buffer(a[:, ::2])

    def test_shared_array_from_sliced_view_copies_values(self):
        a = np.arange(10, dtype=np.int64)
        with SharedArray.from_array(a[::2]) as shared:
            np.testing.assert_array_equal(shared.array, [0, 2, 4, 6, 8])
            # Values, not storage: writing the copy leaves the source alone.
            shared.array[0] = 99
            assert a[0] == 0

    def test_shared_array_rejects_object_dtype(self):
        with pytest.raises(TypeError, match="object"):
            SharedArray.from_array(np.array([object()]))


class TestSegmentLifecycle:
    def test_ship_fetch_inline_roundtrip(self):
        cache = SegmentCache()
        values = np.arange(8, dtype=np.float64)
        handle = ship(values)
        assert handle.shm_name is None  # below threshold: inline bytes
        out, ack = fetch(handle, cache)
        assert ack is None
        np.testing.assert_array_equal(out, values)

    def test_ship_fetch_owned_segment_unlinks(self):
        before = _shm_entries()
        cache = SegmentCache()
        values = np.arange(4096, dtype=np.float64)
        handle = ship(values)
        assert handle.shm_name is not None and handle.mode == "owned"
        out, ack = fetch(handle, cache)
        assert ack is None
        np.testing.assert_array_equal(out, values)
        assert _shm_entries() == before  # receiver unlinked the segment

    def test_slot_reuse_hits_receiver_cache(self):
        cache = SegmentCache()
        slot = SendSlot()
        try:
            for i in range(4):
                values = np.full(4096, float(i))
                handle = ship(values, slot=slot)
                assert handle.mode == "acked"
                out, ack = fetch(handle, cache)
                assert ack == handle.shm_name
                slot.awaiting_ack = False  # ack collected (same-process stand-in)
                np.testing.assert_array_equal(out, values)
        finally:
            slot.release()
            cache.close()
        # One real attach, then by-name reuse.
        assert cache.misses == 1 and cache.hits == 3

    def test_slot_release_unlinks(self):
        before = _shm_entries()
        slot = SendSlot()
        ship(np.zeros(4096), slot=slot)
        assert _shm_entries() != before
        slot.awaiting_ack = False
        slot.release()
        assert _shm_entries() == before

    def test_cache_eviction_closes_segments(self):
        cache = SegmentCache(capacity=2)
        segs = [create_segment(64) for _ in range(3)]
        try:
            for seg in segs:
                cache.attach(seg.name)
            assert len(cache) == 2  # LRU evicted the first
        finally:
            cache.close()
            for seg in segs:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass


def _exchange_body(comm, payload):
    rank = comm.Get_rank()
    if rank == 0:
        comm.Send(payload, dest=1, tag=7)
        return None
    out = np.zeros_like(payload)
    comm.Recv(out, source=0, tag=7)
    return out


@needs_fork
class TestTwoRankEquivalence:
    @pytest.mark.parametrize("dtype", [np.float64, np.int32, np.uint8])
    def test_dtypes_large_and_small(self, dtype):
        for count in (16, 8192):  # inline and shared-segment payloads
            payload = (np.arange(count) % 251).astype(dtype)
            results = run_procs(_exchange_body, 2, payload)
            np.testing.assert_array_equal(results[1], payload)
            assert results[1].dtype == payload.dtype

    def test_zero_d_array(self):
        results = run_procs(_exchange_body, 2, np.array(42.5))
        assert float(results[1]) == 42.5

    def test_empty_array(self):
        results = run_procs(_exchange_body, 2, np.zeros(0, dtype=np.int32))
        assert results[1].size == 0

    def test_two_dimensional_array(self):
        payload = np.arange(96, dtype=np.float64).reshape(8, 12)
        results = run_procs(_exchange_body, 2, payload)
        np.testing.assert_array_equal(results[1], payload)
        assert results[1].shape == payload.shape

    def test_no_segments_leak_across_run(self):
        before = _shm_entries()
        run_procs(_exchange_body, 2, np.arange(16384, dtype=np.float64))
        assert _shm_entries() == before

    def test_buffer_traffic_serializes_nothing(self):
        reset_serialized()
        run_procs(_exchange_body, 2, np.arange(32768, dtype=np.float64))
        totals = serialized_totals()
        assert totals == {"pickle_calls": 0, "pickled_bytes": 0}
        # The same counters surface through the obs metrics facade.
        assert serialization_totals() == totals


def _attach_cache_body(comm):
    rank = comm.Get_rank()
    buf = np.zeros(8192, dtype=np.float64)
    if rank == 0:
        for i in range(5):
            buf[:] = float(i)
            comm.Send(buf, dest=1, tag=0)
        return None
    for _ in range(5):
        comm.Recv(buf, source=0, tag=0)
    return (comm._cache.hits, comm._cache.misses)


@needs_fork
def test_repeated_sends_reuse_attached_segment():
    results = run_procs(_attach_cache_body, 2)
    hits, misses = results[1]
    # The sender reuses one acked slot, so the receiver attaches once and
    # serves every later message from its cache.
    assert misses == 1 and hits == 4
