"""Drug-design exemplar: LCS correctness and variant agreement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplars import (
    DEFAULT_PROTEIN,
    generate_ligands,
    lcs_length,
    run_mpi_master_worker,
    run_omp,
    run_seq,
    score_ligand,
)
from repro.exemplars.drugdesign import drugdesign_workload

FAST = settings(max_examples=60, deadline=None)


def lcs_reference(a: str, b: str) -> int:
    """Textbook O(mn) dynamic program, the oracle for the vectorized LCS."""
    m, n = len(a), len(b)
    dp = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m):
        for j in range(n):
            dp[i + 1][j + 1] = (
                dp[i][j] + 1 if a[i] == b[j] else max(dp[i][j + 1], dp[i + 1][j])
            )
    return dp[m][n]


class TestLCS:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("abcde", "ace", 3),
            ("abc", "abc", 3),
            ("abc", "def", 0),
            ("", "abc", 0),
            ("abc", "", 0),
            ("aaaa", "aa", 2),
            ("xaxbxcx", "abc", 3),
            ("the cat", "that", 4),
        ],
    )
    def test_known_cases(self, a, b, expected):
        assert lcs_length(a, b) == expected

    @FAST
    @given(st.text("abcdef", max_size=12), st.text("abcdef", max_size=12))
    def test_property_matches_reference(self, a, b):
        assert lcs_length(a, b) == lcs_reference(a, b)

    @FAST
    @given(st.text("abcd", max_size=10), st.text("abcd", max_size=10))
    def test_property_symmetry(self, a, b):
        assert lcs_length(a, b) == lcs_length(b, a)

    @FAST
    @given(st.text("abcd", min_size=1, max_size=10))
    def test_property_self_lcs_is_length(self, s):
        assert lcs_length(s, s) == len(s)

    @FAST
    @given(st.text("abcd", max_size=8), st.text("abcd", max_size=8))
    def test_property_bounded_by_shorter(self, a, b):
        assert lcs_length(a, b) <= min(len(a), len(b))

    @FAST
    @given(st.text("ab", max_size=8), st.text("ab", max_size=8), st.sampled_from("ab"))
    def test_property_appending_same_char_increments(self, a, b, ch):
        assert lcs_length(a + ch, b + ch) == lcs_length(a, b) + 1


class TestLigandGeneration:
    def test_reproducible_for_seed(self):
        assert generate_ligands(20, seed=3) == generate_ligands(20, seed=3)

    def test_different_seeds_differ(self):
        assert generate_ligands(20, seed=3) != generate_ligands(20, seed=4)

    def test_length_bounds_respected(self):
        for lig in generate_ligands(200, max_len=5, min_len=2, seed=1):
            assert 2 <= len(lig) <= 5
            assert lig.islower() and lig.isalpha()

    def test_count(self):
        assert len(generate_ligands(7)) == 7
        assert generate_ligands(0) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_ligands(-1)
        with pytest.raises(ValueError):
            generate_ligands(5, max_len=2, min_len=3)


class TestCampaigns:
    @pytest.fixture(scope="class")
    def ligands(self):
        return generate_ligands(24, max_len=7, seed=11)

    def test_seq_summary_fields(self, ligands):
        r = run_seq(ligands)
        assert len(r.scores) == 24
        assert r.max_score == max(r.scores)
        assert all(score_ligand(l) == s for l, s in zip(r.ligands, r.scores))

    def test_best_ligands_sorted_and_maximal(self, ligands):
        r = run_seq(ligands)
        assert r.best_ligands == sorted(r.best_ligands)
        for lig in r.best_ligands:
            assert score_ligand(lig) == r.max_score

    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_omp_matches_seq(self, ligands, threads, schedule):
        assert run_omp(
            ligands, num_threads=threads, schedule=schedule
        ).scores == run_seq(ligands).scores

    @pytest.mark.parametrize("procs", [2, 3, 5])
    def test_mpi_master_worker_matches_seq(self, ligands, procs):
        assert run_mpi_master_worker(ligands, np_procs=procs).scores == run_seq(
            ligands
        ).scores

    def test_mpi_needs_two_procs(self, ligands):
        with pytest.raises(ValueError):
            run_mpi_master_worker(ligands, np_procs=1)

    def test_more_workers_than_ligands(self):
        ligands = generate_ligands(2, seed=5)
        assert run_mpi_master_worker(ligands, np_procs=6).scores == run_seq(
            ligands
        ).scores

    def test_empty_campaign(self):
        r = run_seq([])
        assert r.max_score == 0
        assert r.best_ligands == []

    def test_custom_protein(self):
        r = run_seq(["abc"], protein="xxabcxx")
        assert r.scores == [3]

    def test_summary_text(self, ligands):
        text = run_seq(ligands).summary()
        assert "[seq]" in text and "24 ligands" in text


class TestWorkloadDescriptor:
    def test_static_more_imbalanced_than_dynamic_variant(self):
        static = drugdesign_workload(1000)
        dynamic = drugdesign_workload(1000, imbalance=0.02)
        assert static.imbalance > dynamic.imbalance

    def test_batching_caps_messages(self):
        w = drugdesign_workload(6400, batch=64)
        assert w.messages(4) < 6400  # far fewer messages than ligands
