"""Differential property suite: every exemplar variant matches its baseline.

The property under test is the one the paper's materials demonstrate
implicitly on every platform: the sequential, shared-memory, and
distributed decompositions of an exemplar all compute the same answer.
Each case is seeded and the seed is part of the test id and the failure
message, so a mismatch is reproducible with
``diff_exemplar("<name>", seed=<seed>)``.
"""

import pytest

from repro.testkit import DIFF_TARGETS, diff_exemplar

SEEDS = range(20)


@pytest.mark.parametrize("name", DIFF_TARGETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_variants_match_baseline(name, seed):
    outcome = diff_exemplar(name, seed)
    assert outcome.ok, f"seed {seed}: {outcome.describe()}"


@pytest.mark.multicore
@pytest.mark.parametrize("name", DIFF_TARGETS)
@pytest.mark.parametrize("seed", (0, 7))
def test_variants_match_baseline_on_process_backend(name, seed):
    outcome = diff_exemplar(name, seed, backend="processes")
    assert outcome.ok, f"seed {seed} [processes]: {outcome.describe()}"


@pytest.mark.slow
@pytest.mark.parametrize("name", DIFF_TARGETS)
def test_deep_seed_sweep(name):
    for seed in range(20, 60):
        outcome = diff_exemplar(name, seed)
        assert outcome.ok, f"seed {seed}: {outcome.describe()}"


def test_unknown_exemplar_rejected():
    with pytest.raises(KeyError):
        diff_exemplar("quicksort")


def test_outcome_describe_carries_seed_and_workload():
    outcome = diff_exemplar("sorting", 3)
    text = outcome.describe()
    assert "seed=3" in text and "sorting" in text
