"""Chrome trace export: golden shapes, validation, pid/tid mapping.

The goldens pin the *shape* of the export — (name, cat, ph, pid, tid)
rows, sorted — with timestamps, durations, and args stripped, since
those vary run to run.  Each golden must hold under both execution
backends: the profile describes the same program either way.
"""

import json
from pathlib import Path

import pytest

from repro.obs import (
    Event,
    build_profile,
    to_chrome_trace,
    trace_target,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.openmp.backends import shutdown_pool

GOLDENS = Path(__file__).parent / "goldens"


def _shape(doc):
    return sorted(
        [e["name"], e["cat"], e["ph"], e["pid"], e["tid"]]
        for e in doc["traceEvents"]
    )


def _golden(name):
    return json.loads((GOLDENS / name).read_text())


@pytest.fixture(autouse=True)
def _fresh_pool():
    yield
    shutdown_pool()


class TestGoldenShapes:
    @pytest.mark.parametrize("backend", [None, "processes"])
    def test_openmp_patternlet_shape(self, backend):
        profile, _ = trace_target(
            "barrier", paradigm="openmp", nprocs=3, backend=backend
        )
        doc = to_chrome_trace(profile)
        assert validate_chrome_trace(doc) == []
        assert _shape(doc) == _golden("chrome_trace_barrier_openmp.json")

    @pytest.mark.parametrize("backend", [None, "processes"])
    def test_mpi_patternlet_shape(self, backend):
        profile, _ = trace_target(
            "broadcast", paradigm="mpi", nprocs=3, backend=backend
        )
        doc = to_chrome_trace(profile)
        assert validate_chrome_trace(doc) == []
        assert _shape(doc) == _golden("chrome_trace_broadcast_mpi.json")


class TestPidTidMapping:
    def test_mapping_table(self):
        events = [
            Event(ts=0.0, source="mpi", name="coll_enter", args=(0, 2, "bcast"),
                  tid=1, proc=("rank", 2)),
            Event(ts=1.0, source="mpi", name="coll_exit", args=(0, 2, "bcast"),
                  tid=1, proc=("rank", 2)),
            Event(ts=0.0, source="openmp", name="thread_begin", args=("t", 1),
                  tid=5),
            Event(ts=1.0, source="openmp", name="thread_end", args=("t", 1),
                  tid=5),
            Event(ts=0.0, source="openmp", name="chunk_begin", args=(0, 4),
                  tid=9, proc=("worker", 4242)),
            Event(ts=1.0, source="openmp", name="chunk_end", args=(0, 4),
                  tid=9, proc=("worker", 4242)),
        ]
        doc = to_chrome_trace(build_profile(events))
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        # mpi-rank r -> pid 1+r, tid 0
        assert (spans["collective:bcast"]["pid"],
                spans["collective:bcast"]["tid"]) == (3, 0)
        # omp-thread t -> pid 0, tid 1+t
        assert (spans["parallel region"]["pid"],
                spans["parallel region"]["tid"]) == (0, 2)
        # omp-worker ordinal o -> pid 101+o, tid 0
        assert (spans["chunk"]["pid"], spans["chunk"]["tid"]) == (101, 0)

    def test_metadata_names_every_lane(self):
        events = [
            Event(ts=0.0, source="mpi", name="coll_enter", args=(0, 0, "bcast"),
                  proc=("rank", 0)),
            Event(ts=1.0, source="mpi", name="coll_exit", args=(0, 0, "bcast"),
                  proc=("rank", 0)),
        ]
        doc = to_chrome_trace(build_profile(events))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "MPI rank 0") in names
        assert ("thread_name", "rank 0") in names

    def test_send_instants_land_on_source_rank(self):
        events = [
            Event(ts=0.0, source="mpi", name="send", args=(1, 2, 0, 7, 64),
                  proc=("rank", 2)),
            Event(ts=1.0, source="mpi", name="recv_enter", args=(1, 2, 0, 7),
                  proc=("rank", 2)),
            Event(ts=2.0, source="mpi", name="recv_exit", args=(1, 2, 0, 7, 64),
                  proc=("rank", 2)),
        ]
        doc = to_chrome_trace(build_profile(events))
        (send,) = [e for e in doc["traceEvents"] if e["name"] == "send"]
        assert send["ph"] == "i"
        assert send["pid"] == 3  # 1 + rank 2
        assert send["args"] == {"src": 2, "dest": 0, "tag": 7, "bytes": 64}


class TestValidation:
    def test_valid_document_passes(self):
        profile, _ = trace_target("barrier", paradigm="openmp", nprocs=2)
        assert validate_chrome_trace(to_chrome_trace(profile)) == []

    def test_missing_trace_events_rejected(self):
        assert validate_chrome_trace({}) != []

    def test_bad_phase_reported(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("phase" in p for p in problems)

    def test_negative_ts_reported(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "i", "ts": -1, "pid": 0, "tid": 0},
        ]}
        assert any("ts" in p for p in validate_chrome_trace(doc))


class TestWriteChromeTrace:
    def test_written_file_is_valid_json(self, tmp_path):
        profile, _ = trace_target("barrier", paradigm="openmp", nprocs=2)
        out = write_chrome_trace(tmp_path / "sub" / "trace.json", profile)
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_events_sorted_by_time_after_metadata(self):
        profile, _ = trace_target("barrier", paradigm="openmp", nprocs=2)
        doc = to_chrome_trace(profile)
        phases = [e["ph"] for e in doc["traceEvents"]]
        first_non_meta = phases.index(next(p for p in phases if p != "M"))
        assert all(p == "M" for p in phases[:first_non_meta])
        rest = doc["traceEvents"][first_non_meta:]
        assert [e["ts"] for e in rest] == sorted(e["ts"] for e in rest)
