"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.mpi import mpirun as _mpirun


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``multicore`` tests on single-CPU runners."""
    if (os.cpu_count() or 1) >= 2:
        return
    skip = pytest.mark.skip(reason="needs >1 CPU for the processes backend")
    for item in items:
        if "multicore" in item.keywords:
            item.add_marker(skip)

#: Keep worst-case hangs short in tests: a genuinely stuck world should fail
#: the test in a couple of seconds, not the default 30.
TEST_DEADLOCK_TIMEOUT = 8.0


def spmd(fn, np, *args, **kwargs):
    """mpirun with a test-friendly watchdog."""
    kwargs.setdefault("deadlock_timeout", TEST_DEADLOCK_TIMEOUT)
    return _mpirun(fn, np, *args, **kwargs)


@pytest.fixture
def run_spmd():
    return spmd
