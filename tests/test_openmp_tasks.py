"""OpenMP tasking: task/taskwait/taskgroup semantics."""

import pytest

from repro.openmp import (
    parallel_region,
    single,
    task,
    taskgroup,
    taskwait,
)


def in_region(body, num_threads=4):
    """Run body on the single-winning thread; others help via taskwait."""
    out = [None]

    def member():
        if single():
            out[0] = body()
        taskwait()

    parallel_region(member, num_threads=num_threads)
    return out[0]


class TestTask:
    def test_task_result(self):
        assert in_region(lambda: task(lambda: 21 * 2).result()) == 42

    def test_each_task_runs_exactly_once(self):
        import threading

        counter = {"n": 0}
        lock = threading.Lock()

        def work():
            with lock:
                counter["n"] += 1

        def body():
            handles = [task(work) for _ in range(50)]
            for h in handles:
                h.result()

        in_region(body)
        assert counter["n"] == 50

    def test_recursive_fib(self):
        def fib(n):
            if n < 2:
                return n
            left = task(fib, n - 1)
            return left.result() + fib(n - 2)

        assert in_region(lambda: fib(15)) == 610

    def test_tasks_with_kwargs(self):
        assert in_region(
            lambda: task(lambda a, b=0: a + b, 10, b=5).result()
        ) == 15

    def test_orphaned_task_runs_inline(self):
        handle = task(lambda: "inline")
        assert handle.done
        assert handle.result() == "inline"

    def test_orphaned_task_error_raises_immediately(self):
        with pytest.raises(ZeroDivisionError):
            task(lambda: 1 // 0)

    def test_task_error_raised_at_result(self):
        def body():
            handle = task(lambda: 1 // 0)
            with pytest.raises(ZeroDivisionError):
                handle.result()
            return "survived"

        assert in_region(body) == "survived"

    def test_done_flag(self):
        def body():
            handle = task(lambda: 1)
            handle.result()
            return handle.done

        assert in_region(body) is True


class TestTaskwait:
    def test_taskwait_drains_pool(self):
        import threading

        ran = []
        lock = threading.Lock()

        def work(i):
            with lock:
                ran.append(i)

        def member():
            if single():
                for i in range(20):
                    task(work, i)
            taskwait()
            return len(ran)

        outs = parallel_region(member, num_threads=4)
        # after taskwait on every thread, all tasks are complete
        assert sorted(ran) == list(range(20))
        assert all(isinstance(o, int) for o in outs)

    def test_taskwait_outside_region_is_noop(self):
        taskwait()  # must not raise or hang


class TestTaskgroup:
    def test_taskgroup_waits_for_scope(self):
        def body():
            with taskgroup() as tg:
                handles = [tg.task(lambda i=i: i * 3) for i in range(8)]
            return [h.result() for h in handles]

        assert in_region(body) == [i * 3 for i in range(8)]

    def test_taskgroup_propagates_task_error(self):
        def body():
            try:
                with taskgroup() as tg:
                    tg.task(lambda: 1 // 0)
                return "no-raise"
            except ZeroDivisionError:
                return "raised"

        assert in_region(body) == "raised"

    def test_taskgroup_outside_region(self):
        with taskgroup() as tg:
            h = tg.task(lambda: "serial")
        assert h.result() == "serial"

    def test_nested_taskgroups(self):
        def body():
            with taskgroup() as outer:
                a = outer.task(lambda: 1)
                with taskgroup() as inner:
                    b = inner.task(lambda: 2)
                assert b.done
            return a.result() + b.result()

        assert in_region(body) == 3


class TestTaskParallelMergeSort:
    """The tasking construct's flagship application (sorting exemplar)."""

    def test_sorts_correctly(self):
        import random

        from repro.exemplars import merge_sort_tasks

        rng = random.Random(5)
        data = [rng.random() for _ in range(300)]
        assert merge_sort_tasks(data, num_threads=4, cutoff=32) == sorted(data)

    def test_cutoff_validation(self):
        from repro.exemplars import merge_sort_tasks

        with pytest.raises(ValueError):
            merge_sort_tasks([3, 1, 2], cutoff=0)
