"""The actual handout content: structure, pacing, and the Fig. 1 question."""

import pytest

from repro.patternlets import get_patternlet
from repro.runestone import (
    RACE_CONDITION_QUESTION,
    build_raspberry_pi_module,
    render_section_text,
    render_text,
)
from repro.runestone.content import Video
from repro.runestone.module import HandsOnActivity


@pytest.fixture(scope="module")
def module():
    return build_raspberry_pi_module()


class TestFig1RaceConditionPage:
    def test_question_id_matches_figure(self):
        assert RACE_CONDITION_QUESTION.activity_id == "sp_mc_2"

    def test_correct_answer_is_c(self):
        assert RACE_CONDITION_QUESTION.correct_label == "C"
        assert RACE_CONDITION_QUESTION.grade("C").correct

    def test_distractors_have_targeted_feedback(self):
        a = RACE_CONDITION_QUESTION.grade("A")
        b = RACE_CONDITION_QUESTION.grade("B")
        assert "critical section" in a.feedback
        assert "lock" in b.feedback

    def test_section_23_structure_matches_figure(self, module):
        section = module.find_section("2.3")
        assert section.title == "Race Conditions"
        videos = [b for b in section.blocks if isinstance(b, Video)]
        assert len(videos) == 1
        assert videos[0].duration_label == "2:02"  # visible in the screenshot
        assert RACE_CONDITION_QUESTION in section.blocks

    def test_rendered_view_contains_figure_text(self, module):
        out = render_section_text(module.find_section("2.3"))
        assert "The following video will help you understand" in out
        assert "Q-2: What is a race condition?" in out
        assert "Activity: sp_mc_2" in out


class TestHandoutStructure:
    def test_four_chapters(self, module):
        titles = [c.title for c in module.chapters]
        assert len(titles) == 4
        assert titles[0].startswith("Setting Up")

    def test_pacing_matches_paper_design(self, module):
        """30 min concepts + 60 min hands-on + 30 min exemplars = 2 hours."""
        chapters = {c.title: c.minutes for c in module.chapters}
        assert chapters["Processes, Threads, and Multicore Systems"] == 30
        assert chapters["Exploring the Patternlets"] == 60
        assert chapters["Exemplars and a Benchmarking Study"] == 30
        assert module.session_minutes == 120
        assert module.fits_lab_period()

    def test_setup_is_prework_with_videos(self, module):
        setup = module.chapters[0]
        assert setup.pre_work
        videos = [
            b
            for s in setup.sections
            for b in s.blocks
            if isinstance(b, Video)
        ]
        assert len(videos) == 3  # the three walkthrough videos
        covered = {issue for v in videos for issue in v.covers_issues}
        assert "vnc-setup" in covered and "no-boot" in covered

    def test_every_activity_references_a_real_patternlet(self, module):
        for activity in module.all_activities():
            patternlet = get_patternlet(activity.paradigm, activity.patternlet)
            result = patternlet.run(
                **({"iterations": 500} if activity.patternlet == "race" else {})
            )
            for key in activity.expected:
                assert key in result.values, (activity.title, key)

    def test_hands_on_hour_walks_the_race_arc(self, module):
        names = [
            a.patternlet
            for s in module.chapters[2].sections
            for a in s.activities
        ]
        for required in ("race", "critical", "atomic", "reduction"):
            assert required in names

    def test_questions_all_gradeable_and_unique(self, module):
        ids = [q.activity_id for q in module.all_questions()]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 7

    def test_full_render_is_complete(self, module):
        out = render_text(module)
        for section in module.all_sections():
            assert f"{section.number} {section.title}" in out
