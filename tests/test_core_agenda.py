"""Workshop agenda and the Section IV-C discussion-facilitation lessons."""

import pytest

from repro.core import (
    Facilitation,
    SessionKind,
    build_2020_agenda,
    simulate_discussion,
)


class TestAgenda:
    @pytest.fixture(scope="class")
    def agenda(self):
        return build_2020_agenda()

    def test_two_and_a_half_days(self, agenda):
        assert agenda.days() == [1, 2, 3]
        # day 3 is the half day
        assert sum(i.minutes for i in agenda.day(3)) < sum(
            i.minutes for i in agenda.day(1)
        )

    def test_module_sessions_are_the_mornings(self, agenda):
        hands_on = [i for i in agenda.items if i.kind == SessionKind.HANDS_ON]
        assert len(hands_on) == 2
        assert all(i.minutes == 120 for i in hands_on)
        assert {i.day for i in hands_on} == {1, 2}

    def test_afternoons_hold_demos_and_discussions(self, agenda):
        for day in (1, 2):
            kinds = {i.kind for i in agenda.day(day)}
            assert SessionKind.DEMO in kinds
            assert SessionKind.DISCUSSION in kinds

    def test_kind_accounting(self, agenda):
        assert agenda.minutes_of(SessionKind.HANDS_ON) == 240
        assert agenda.minutes_of(SessionKind.BREAK) == 120
        assert agenda.total_minutes() == sum(i.minutes for i in agenda.items)

    def test_hands_on_emphasis(self, agenda):
        """The workshop's design principle: substantial hands-on time."""
        assert agenda.hands_on_fraction() >= 0.3


class TestDiscussionModel:
    PARTICIPANTS = [f"p{i:02d}" for i in range(12)]

    def test_open_floor_lets_extroverts_dominate(self):
        """The paper: 'more extroverted participants had a tendency to
        dominate conversations'."""
        outcome = simulate_discussion(
            self.PARTICIPANTS, policy=Facilitation.NONE, seed=7
        )
        assert outcome.dominance > 2.0 / len(self.PARTICIPANTS)

    def test_open_floor_leaves_shy_members_silent(self):
        """'it took a special effort to get some learners to actively
        participate' — with no facilitation, somebody never speaks."""
        silent_runs = sum(
            simulate_discussion(
                self.PARTICIPANTS, policy=Facilitation.NONE, seed=s
            ).silent_participants
            > 0
            for s in range(10)
        )
        assert silent_runs >= 5

    def test_round_robin_is_perfectly_balanced(self):
        outcome = simulate_discussion(
            self.PARTICIPANTS, minutes=60, policy=Facilitation.ROUND_ROBIN
        )
        assert outcome.silent_participants == 0
        assert outcome.balanced(tolerance=1.5)

    def test_prompting_rescues_the_quiet(self):
        """Inviting the least-heard in every third turn removes silence and
        reduces dominance versus the open floor."""
        open_floor = simulate_discussion(
            self.PARTICIPANTS, policy=Facilitation.NONE, seed=3
        )
        prompted = simulate_discussion(
            self.PARTICIPANTS, policy=Facilitation.PROMPTED, seed=3
        )
        assert prompted.silent_participants == 0
        assert prompted.dominance <= open_floor.dominance

    def test_deterministic_for_seed(self):
        a = simulate_discussion(self.PARTICIPANTS, seed=11)
        b = simulate_discussion(self.PARTICIPANTS, seed=11)
        assert a.turns == b.turns

    def test_explicit_extroversion_respected(self):
        extroversion = {p: 0.01 for p in self.PARTICIPANTS}
        extroversion["p00"] = 100.0
        outcome = simulate_discussion(
            self.PARTICIPANTS,
            extroversion=extroversion,
            policy=Facilitation.NONE,
            seed=1,
        )
        assert outcome.turns["p00"] == max(outcome.turns.values())
        assert outcome.dominance > 0.9

    def test_turn_conservation(self):
        outcome = simulate_discussion(self.PARTICIPANTS, minutes=45, seed=2)
        assert outcome.total_turns == 45

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_discussion([])
        with pytest.raises(ValueError):
            simulate_discussion(["a"], minutes=0)
