"""Quiz building and grading from a module's question bank."""

import pytest

from repro.runestone import (
    build_distributed_module,
    build_quiz,
    build_raspberry_pi_module,
)


@pytest.fixture(scope="module")
def pi_module():
    return build_raspberry_pi_module()


class TestBuildQuiz:
    def test_samples_k_distinct_questions(self, pi_module):
        quiz = build_quiz(pi_module, k=4, seed=1)
        ids = quiz.question_ids()
        assert len(ids) == 4
        assert len(set(ids)) == 4

    def test_reproducible_for_seed(self, pi_module):
        a = build_quiz(pi_module, k=5, seed=9)
        b = build_quiz(pi_module, k=5, seed=9)
        assert a.question_ids() == b.question_ids()

    def test_different_seeds_differ(self, pi_module):
        samples = {
            tuple(build_quiz(pi_module, k=4, seed=s).question_ids())
            for s in range(10)
        }
        assert len(samples) > 1

    def test_k_larger_than_bank_rejected(self, pi_module):
        with pytest.raises(ValueError, match="cannot build"):
            build_quiz(pi_module, k=999)

    def test_k_zero_rejected(self, pi_module):
        with pytest.raises(ValueError):
            build_quiz(pi_module, k=0)

    def test_works_on_both_modules(self):
        quiz = build_quiz(build_distributed_module(), k=3, seed=2)
        assert len(quiz) == 3


class TestQuizAttempt:
    def test_full_correct_submission(self, pi_module):
        quiz = build_quiz(pi_module, k=len(pi_module.all_questions()), seed=0)
        attempt = quiz.start("sam")
        answers = {
            "sp_mc_1": "C",
            "sp_mc_2": "C",
            "sp_mc_3": "B",
            "sp_mc_4": "B",
            "sp_fib_1": 4,
            "sp_fib_2": 3.14,
            "sp_dnd_1": {
                "process": "an executing program with its own address space",
                "thread": "an execution stream sharing its process's memory",
                "core": "a hardware unit that executes one stream at a time",
            },
        }
        attempt.submit_all(answers)
        assert attempt.complete
        assert attempt.score == 1.0

    def test_partial_score(self, pi_module):
        quiz = build_quiz(pi_module, k=2, seed=3)
        attempt = quiz.start("sam")
        first = quiz.questions[0]
        # answer only the first question, deliberately wrong where possible
        from repro.runestone.questions import FillInTheBlank, MultipleChoice

        if isinstance(first, MultipleChoice):
            attempt.answer(first.activity_id, first.correct_label)
        elif isinstance(first, FillInTheBlank):
            attempt.answer(first.activity_id, first.numeric_answer)
        else:
            attempt.answer(first.activity_id, dict(first.pairs))
        assert not attempt.complete
        assert attempt.score == pytest.approx(0.5)

    def test_reanswer_replaces_grade(self, pi_module):
        quiz = build_quiz(pi_module, k=len(pi_module.all_questions()), seed=0)
        attempt = quiz.start("sam")
        attempt.answer("sp_mc_2", "A")
        assert attempt.results["sp_mc_2"].correct is False
        attempt.answer("sp_mc_2", "C")
        assert attempt.results["sp_mc_2"].correct is True

    def test_off_quiz_question_rejected(self, pi_module):
        quiz = build_quiz(pi_module, k=1, seed=0)
        attempt = quiz.start("sam")
        with pytest.raises(KeyError):
            attempt.answer("definitely-not-on-quiz", "A")

    def test_feedback_in_quiz_order(self, pi_module):
        quiz = build_quiz(pi_module, k=len(pi_module.all_questions()), seed=0)
        attempt = quiz.start("sam")
        attempt.answer("sp_mc_2", "B")
        fb = attempt.feedback()
        assert fb and fb[0][0] in quiz.question_ids()
