"""Rendered-module LRU cache: policy, counters, and edit invalidation."""

from __future__ import annotations

import pytest

from repro.serve import Client, CourseApp
from repro.serve.cache import RenderCache


class TestLRUPolicy:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RenderCache(0)

    def test_miss_then_hit(self):
        cache = RenderCache(4)
        calls = []

        def render():
            calls.append(1)
            return "rendered"

        assert cache.get("m", "v1:html", render) == "rendered"
        assert cache.get("m", "v1:html", render) == "rendered"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_distinct_variants_cached_separately(self):
        cache = RenderCache(4)
        cache.get("m", "v1:html", lambda: "html")
        assert cache.get("m", "v1:text", lambda: "text") == "text"
        assert len(cache) == 2

    def test_lru_evicts_least_recently_used(self):
        cache = RenderCache(2)
        cache.get("a", "v", lambda: "A")
        cache.get("b", "v", lambda: "B")
        cache.get("a", "v", lambda: "A")  # refresh a; b is now LRU
        cache.get("c", "v", lambda: "C")  # evicts b
        assert cache.stats()["evictions"] == 1
        cache.get("a", "v", lambda: "A2")
        assert cache.stats()["hits"] == 2  # a survived
        assert cache.get("b", "v", lambda: "B2") == "B2"  # b was evicted

    def test_invalidate_drops_all_variants_of_one_module(self):
        cache = RenderCache(8)
        cache.get("m", "v1:html", lambda: "h")
        cache.get("m", "v1:text", lambda: "t")
        cache.get("other", "v1:html", lambda: "o")
        assert cache.invalidate("m") == 2
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 2

    def test_invalidate_unknown_module_is_a_noop(self):
        cache = RenderCache(2)
        assert cache.invalidate("ghost") == 0

    def test_clear(self):
        cache = RenderCache(2)
        cache.get("m", "v", lambda: "x")
        cache.clear()
        assert len(cache) == 0


class TestEditInvalidation:
    """The bug these pin: a stale render must not outlive a module edit."""

    INSTRUCTOR = [("x-instructor-key", "instructor")]

    def test_edit_invalidates_served_renders(self):
        app = CourseApp(metrics_name=None)
        try:
            client = Client(app)
            client.get("/m/raspberry-pi-handout")  # cached (warm boot)
            misses_before = app.cache.stats()["misses"]

            doc = client.post(
                "/m/raspberry-pi-handout/edit", json_body={},
                headers=self.INSTRUCTOR,
            ).json()
            assert doc["version"] == 2

            read = client.get("/m/raspberry-pi-handout").json()
            assert read["version"] == 2
            assert app.cache.stats()["misses"] == misses_before + 1  # re-rendered
            assert app.cache.stats()["invalidations"] >= 1
        finally:
            app.close()

    def test_registry_edit_callback_reaches_the_cache(self):
        app = CourseApp(metrics_name=None)
        try:
            Client(app).get("/m/mpi-distributed-handout?format=text")
            dropped_before = app.cache.stats()["invalidations"]
            app.registry.edit_module("mpi-distributed-handout")
            assert app.cache.stats()["invalidations"] > dropped_before
            # Other modules' entries survive the targeted invalidation.
            assert len(app.cache) >= 1
        finally:
            app.close()

    def test_edit_with_mutation_changes_the_render(self):
        app = CourseApp(metrics_name=None, warm=False)
        try:
            client = Client(app)
            before = client.get("/m/raspberry-pi-handout?format=text").json()

            def retitle(module):
                module.title = "Edited Title"

            app.registry.edit_module("raspberry-pi-handout", retitle)
            after = client.get("/m/raspberry-pi-handout?format=text").json()
            assert after["rendered"] != before["rendered"]
            assert "Edited Title" in after["rendered"]
        finally:
            app.close()
