"""CourseApp routes: tenancy, envelopes, instructor auth, metrics."""

from __future__ import annotations

import pytest

from repro.obs import snapshot_providers
from repro.serve import Client, CourseApp, demo_registry


@pytest.fixture()
def app():
    app = CourseApp(metrics_name=None)
    yield app
    app.close()


@pytest.fixture()
def client(app):
    return Client(app)


INSTRUCTOR = [("x-instructor-key", "instructor")]


class TestHealth:
    def test_healthz(self, client):
        r = client.get("/healthz")
        assert r.status == 200 and r.json()["status"] == "ok"

    def test_readyz_after_boot(self, client):
        r = client.get("/readyz")
        doc = r.json()
        assert r.status == 200
        assert doc["modules"] == 2 and doc["cohorts"] == 2

    def test_readyz_before_boot_is_503(self, app, client):
        app.ready = False
        r = client.get("/readyz")
        assert r.status == 503 and r.json()["error"]["code"] == "not_ready"

    def test_metricz_shape(self, client):
        client.get("/healthz")
        doc = client.get("/metricz").json()
        assert doc["requests"] >= 1
        assert "p99_ms" in doc["latency"]
        assert "cache" in doc and "backpressure" in doc

    def test_cohorts_overview(self, client):
        doc = client.get("/cohorts").json()
        assert {c["slug"] for c in doc["cohorts"]} == {"pi-2020", "mpi-2020"}
        assert doc["modules"]["raspberry-pi-handout"]["version"] == 1


class TestJoin:
    def test_join_creates_then_idempotent(self, client):
        r = client.post("/join/PI2020", json_body={"learner": "alice"})
        assert r.status == 201 and r.json()["already_enrolled"] is False
        r = client.post("/join/PI2020", json_body={"learner": "alice"})
        assert r.status == 200 and r.json()["already_enrolled"] is True

    def test_join_code_is_case_insensitive(self, client):
        assert client.post("/join/pi2020", json_body={"learner": "bob"}).status == 201

    def test_unknown_class_code(self, client):
        r = client.post("/join/NOPE", json_body={"learner": "x"})
        assert r.status == 404
        assert r.json()["error"]["code"] == "unknown_class_code"

    @pytest.mark.parametrize("body", [{}, {"learner": ""}, {"learner": 7}])
    def test_bad_learner_payloads(self, client, body):
        r = client.post("/join/PI2020", json_body=body)
        assert r.status == 400 and r.json()["error"]["code"] == "bad_request"

    def test_malformed_json_body(self, app):
        from repro.serve.asgi import run_app

        r = run_app(app, "POST", "/join/PI2020", body=b"{not json")
        assert r.status == 400
        assert "malformed" in r.json()["error"]["message"]

    def test_empty_body(self, client):
        r = client.post("/join/PI2020")
        assert r.status == 400


class TestReadModule:
    def test_html_render_with_activities(self, client):
        doc = client.get("/m/raspberry-pi-handout").json()
        assert doc["format"] == "html" and doc["version"] == 1
        assert "sp_mc_1" in doc["activities"]
        assert "<" in doc["rendered"]

    def test_text_render(self, client):
        doc = client.get("/m/raspberry-pi-handout?format=text").json()
        assert doc["format"] == "text" and "<html" not in doc["rendered"]

    def test_section_render(self, client):
        doc = client.get("/m/raspberry-pi-handout?section=1.1").json()
        assert doc["section"] == "1.1"

    def test_unknown_module(self, client):
        r = client.get("/m/nope")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_module"
        # KeyError repr-quoting must not leak into the envelope message.
        assert not r.json()["error"]["message"].startswith('"')

    def test_unknown_section(self, client):
        r = client.get("/m/raspberry-pi-handout?section=99.9")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_section"

    def test_bad_format(self, client):
        r = client.get("/m/raspberry-pi-handout?format=pdf")
        assert r.status == 400 and r.json()["error"]["code"] == "bad_format"

    def test_reads_hit_the_cache(self, app, client):
        before = app.cache.stats()["hits"]
        client.get("/m/raspberry-pi-handout")
        client.get("/m/raspberry-pi-handout")
        assert app.cache.stats()["hits"] >= before + 2  # warm boot pre-rendered


class TestSubmit:
    def _join(self, client, learner="alice"):
        client.post("/join/PI2020", json_body={"learner": learner})

    def _submit(self, client, **over):
        body = {
            "cohort": "pi-2020",
            "learner": "alice",
            "activity_id": "sp_mc_1",
            "answer": "A",
        }
        body.update(over)
        return client.post("/m/raspberry-pi-handout/submit", json_body=body)

    def test_graded_round_trip(self, client):
        self._join(client)
        doc = self._submit(client).json()
        assert doc["activity_id"] == "sp_mc_1"
        assert isinstance(doc["correct"], bool) and doc["feedback"]

    def test_unknown_cohort(self, client):
        r = self._submit(client, cohort="ghost")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_cohort"

    def test_cohort_module_mismatch(self, client):
        self._join(client)
        r = client.post(
            "/m/mpi-distributed-handout/submit",
            json_body={
                "cohort": "pi-2020",
                "learner": "alice",
                "activity_id": "sp_mc_1",
                "answer": "A",
            },
        )
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_module"

    def test_unenrolled_learner(self, client):
        r = self._submit(client, learner="ghost")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_learner"

    def test_unknown_activity_id(self, client):
        self._join(client)
        r = self._submit(client, activity_id="nope_99")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_activity"

    @pytest.mark.parametrize(
        "missing", ["cohort", "learner", "activity_id", "answer"]
    )
    def test_missing_fields(self, client, missing):
        body = {
            "cohort": "pi-2020",
            "learner": "alice",
            "activity_id": "sp_mc_1",
            "answer": "A",
        }
        del body[missing]
        r = client.post("/m/raspberry-pi-handout/submit", json_body=body)
        assert r.status == 400 and r.json()["error"]["code"] == "bad_request"

    def test_non_object_body(self, client):
        r = client.post("/m/raspberry-pi-handout/submit", json_body=[1, 2])
        assert r.status == 400

    @pytest.mark.parametrize("answer", [None, 7, {"a": 1}, ["x"], "zzz"])
    def test_untrusted_answer_shapes_never_500(self, client, answer):
        """Arbitrary JSON answers grade (possibly wrong) or 400 — never 500."""
        self._join(client)
        r = self._submit(client, answer=answer)
        assert r.status in (200, 400)
        if r.status == 200:
            assert r.json()["correct"] is False


class TestInstructorSurfaces:
    def test_gradebook_requires_key(self, client):
        assert client.get("/gradebook/pi-2020").status == 403
        wrong = client.get("/gradebook/pi-2020", headers=[("x-instructor-key", "no")])
        assert wrong.status == 403

    def test_gradebook_with_key(self, client):
        client.post("/join/PI2020", json_body={"learner": "alice"})
        doc = client.get("/gradebook/pi-2020", headers=INSTRUCTOR).json()
        assert doc["learners"] == 1 and "alice" in doc["records"]

    def test_gradebook_unknown_cohort(self, client):
        r = client.get("/gradebook/ghost", headers=INSTRUCTOR)
        assert r.status == 404

    def test_edit_requires_key(self, client):
        assert client.post("/m/raspberry-pi-handout/edit", json_body={}).status == 403

    def test_edit_bumps_version(self, client):
        doc = client.post(
            "/m/raspberry-pi-handout/edit", json_body={}, headers=INSTRUCTOR
        ).json()
        assert doc["version"] == 2
        assert client.get("/m/raspberry-pi-handout").json()["version"] == 2

    def test_edit_unknown_module(self, client):
        r = client.post("/m/ghost/edit", json_body={}, headers=INSTRUCTOR)
        assert r.status == 404


class TestRoutingAndMetrics:
    def test_unknown_route(self, client):
        r = client.get("/nope/deep/path")
        assert r.status == 404 and r.json()["error"]["code"] == "unknown_route"

    def test_wrong_method(self, client):
        assert client.post("/healthz").status == 404

    def test_metrics_provider_registration(self):
        app = CourseApp(metrics_name="serve-test")
        try:
            Client(app).get("/healthz")
            snap = snapshot_providers()
            assert snap["serve-test"]["requests"] >= 1
        finally:
            app.close()
        assert "serve-test" not in snapshot_providers()

    def test_route_templates_not_raw_paths(self, app, client):
        client.post("/join/PI2020", json_body={"learner": "a"})
        routes = app.metrics.snapshot()["routes"]
        assert "POST /join/<code>" in routes
        assert all("/PI2020" not in route for route in routes)


class TestTenantIsolation:
    def test_cohorts_do_not_share_gradebooks(self, client):
        client.post("/join/PI2020", json_body={"learner": "alice"})
        client.post("/join/MPI2020", json_body={"learner": "mallory"})
        pi = client.get("/gradebook/pi-2020", headers=INSTRUCTOR).json()
        mpi = client.get("/gradebook/mpi-2020", headers=INSTRUCTOR).json()
        assert set(pi["records"]) == {"alice"}
        assert set(mpi["records"]) == {"mallory"}

    def test_per_cohort_instructor_keys(self):
        registry = demo_registry(instructor_key="sekrit")
        app = CourseApp(registry, metrics_name=None)
        try:
            client = Client(app)
            assert client.get("/gradebook/pi-2020", headers=INSTRUCTOR).status == 403
            ok = client.get(
                "/gradebook/pi-2020", headers=[("x-instructor-key", "sekrit")]
            )
            assert ok.status == 200
        finally:
            app.close()
