"""Static <-> dynamic agreement: pdclint's flow facts vs the runtime checkers.

The flow-sensitive linter and the dynamic detectors look at the same
patternlet corpus from opposite ends — source text vs executions.  This
suite pins down that they agree on the curriculum: patternlets the linter
marks suspicious (including intentionally planted, suppressed bugs) are
exactly the ones the race detector / MPI checker flags at runtime, and the
lint-seeded explorer reaches the race witness in strictly fewer schedules
than the unseeded search.
"""

import pytest

from repro.analysis import analyze
from repro.analysis.lint import explore_hints, lint_patternlet
from repro.testkit.explore import explore_target

# (patternlet, paradigm, statically suspicious?, dynamically flagged?)
CORPUS = [
    ("race", "openmp", True, True),
    ("critical", "openmp", False, False),
    ("atomic", "openmp", False, False),
    ("reduction", "openmp", False, False),
    ("deadlock", "mpi", True, True),
    ("sendReceive", "mpi", False, False),
    ("broadcast", "mpi", False, False),
]


def _static_suspicious(name: str, paradigm: str) -> bool:
    hints = explore_hints(lint_patternlet(name, paradigm))
    return bool(hints["racy"] or hints["deadlock"])


def _dynamic_flagged(name: str, paradigm: str) -> bool:
    return bool(analyze(name, paradigm).errors)


class TestCorpusAgreement:
    @pytest.mark.parametrize("name,paradigm,static,dynamic", CORPUS)
    def test_static_matches_expectation(self, name, paradigm, static, dynamic):
        assert _static_suspicious(name, paradigm) is static

    @pytest.mark.parametrize("name,paradigm,static,dynamic", CORPUS)
    def test_dynamic_matches_expectation(self, name, paradigm, static, dynamic):
        assert _dynamic_flagged(name, paradigm) is dynamic

    def test_verdicts_agree_across_corpus(self):
        disagreements = [
            name
            for name, paradigm, _, _ in CORPUS
            if _static_suspicious(name, paradigm)
            != _dynamic_flagged(name, paradigm)
        ]
        assert not disagreements

    def test_race_hint_names_the_racy_rule(self):
        hints = explore_hints(lint_patternlet("race", "openmp"))
        assert any(h["rule"] == "PDC101" for h in hints["racy"])

    def test_deadlock_hint_names_the_protocol_rule(self):
        hints = explore_hints(lint_patternlet("deadlock", "mpi"))
        assert any(h["rule"] == "PDC103" for h in hints["deadlock"])


class TestSeededExploration:
    """Acceptance: lint hints make the explorer find the witness faster."""

    def _first_witness_index(self, result) -> int:
        for i, outcome in enumerate(result.outcomes):
            if outcome.flagged:
                return i
        raise AssertionError("no flagged schedule found")

    def test_seeded_reaches_witness_strictly_earlier(self):
        hints = explore_hints(lint_patternlet("race", "openmp"))
        assert hints["racy"]
        unseeded = explore_target("race", "openmp", max_schedules=8)
        seeded = explore_target(
            "race", "openmp", max_schedules=8, seed_hints=hints
        )
        assert seeded.flagged and unseeded.flagged
        seeded_idx = self._first_witness_index(seeded)
        unseeded_idx = self._first_witness_index(unseeded)
        assert seeded_idx < unseeded_idx
        # deterministic: the conflict-eager schedule runs first and wins
        assert seeded_idx == 0

    def test_seeding_is_deterministic(self):
        hints = explore_hints(lint_patternlet("race", "openmp"))
        first = explore_target("race", "openmp", max_schedules=8,
                               seed_hints=hints)
        second = explore_target("race", "openmp", max_schedules=8,
                                seed_hints=hints)
        assert [o.token for o in first.outcomes] == [
            o.token for o in second.outcomes
        ]

    def test_seeded_result_records_its_hints(self):
        hints = explore_hints(lint_patternlet("race", "openmp"))
        result = explore_target("race", "openmp", max_schedules=4,
                                seed_hints=hints)
        assert result.to_dict()["seeded"] == hints

    def test_unseeded_result_omits_seeded_key(self):
        result = explore_target("race", "openmp", max_schedules=4)
        assert "seeded" not in result.to_dict()

    def test_clean_patternlet_unaffected_by_seeding(self):
        hints = explore_hints(lint_patternlet("critical", "openmp"))
        assert not hints["racy"]
        seeded = explore_target("critical", "openmp", max_schedules=6,
                                seed_hints=hints)
        unseeded = explore_target("critical", "openmp", max_schedules=6)
        assert not seeded.flagged and not unseeded.flagged
        assert [o.token for o in seeded.outcomes] == [
            o.token for o in unseeded.outcomes
        ]

    def test_witnesses_confirmed_by_detector(self):
        # every lint-seeded witness must also be a true dynamic race:
        # the detector reruns flagged schedules and must agree
        hints = explore_hints(lint_patternlet("race", "openmp"))
        result = explore_target("race", "openmp", max_schedules=8,
                                seed_hints=hints)
        assert all(o.detector_errors for o in result.flagged)
