"""CLI: every subcommand through main() with captured output."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestList:
    def test_lists_both_paradigms(self, capsys):
        code, out, _err = run_cli(capsys, "list")
        assert code == 0
        assert "openmp" in out and "mpi" in out
        assert out.count("\n") == 29

    def test_filter_by_paradigm(self, capsys):
        code, out, _err = run_cli(capsys, "list", "openmp")
        assert code == 0
        assert "mpi " not in out
        assert "race" in out


class TestRun:
    def test_run_mpi_spmd(self, capsys):
        code, out, _err = run_cli(capsys, "run", "mpi", "spmd", "--np", "3")
        assert code == 0
        assert out.count("Greetings from process") == 3

    def test_run_openmp_reduction(self, capsys):
        code, out, _err = run_cli(capsys, "run", "openmp", "reduction")
        assert code == 0
        assert "expected" in out

    def test_source_listing(self, capsys):
        code, out, _err = run_cli(capsys, "run", "mpi", "spmd", "--source")
        assert code == 0
        assert "def spmd" in out

    def test_unknown_patternlet(self, capsys):
        with pytest.raises(KeyError):
            main(["run", "mpi", "nope"])


class TestNotebook:
    def test_colab_runs(self, capsys):
        code, out, _err = run_cli(capsys, "notebook", "colab", "--np", "3")
        assert code == 0
        assert "Greetings from process" in out

    def test_export_ipynb(self, capsys, tmp_path):
        target = tmp_path / "nb.ipynb"
        code, out, _err = run_cli(
            capsys, "notebook", "colab", "--export", str(target)
        )
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["nbformat"] == 4

    def test_chameleon_runs(self, capsys):
        code, out, _err = run_cli(capsys, "notebook", "chameleon", "--np", "2")
        assert code == 0
        assert "% burned" in out


class TestHandout:
    def test_full_text(self, capsys):
        code, out, _err = run_cli(capsys, "handout")
        assert code == 0
        assert "Race Conditions" in out

    def test_single_section(self, capsys):
        code, out, _err = run_cli(capsys, "handout", "--section", "2.3")
        assert code == 0
        assert out.startswith("2.3 Race Conditions")

    def test_html_export(self, capsys, tmp_path):
        target = tmp_path / "handout.html"
        code, out, _err = run_cli(capsys, "handout", "--html", str(target))
        assert code == 0
        assert target.read_text().startswith("<!DOCTYPE html>")


class TestStudyAndReport:
    def test_study(self, capsys):
        code, out, _err = run_cli(capsys, "study", "forestfire", "stolaf-vm")
        assert code == 0
        assert "speedup" in out and "St. Olaf" in out

    def test_report_contains_all_artifacts(self, capsys):
        code, out, _err = run_cli(capsys, "report")
        assert code == 0
        assert "TABLE I" in out
        assert "TABLE II" in out
        assert "Figure 3" in out and "Figure 4" in out
        assert "highest rated" in out


class TestMpirun:
    def test_runs_script_file(self, capsys, tmp_path):
        script = tmp_path / "hello.py"
        script.write_text(
            "from mpi4py import MPI\n"
            "print('rank', MPI.COMM_WORLD.Get_rank())\n"
        )
        code, out, _err = run_cli(capsys, "mpirun", "-np", "3", str(script))
        assert code == 0
        assert sorted(out.strip().splitlines()) == ["rank 0", "rank 1", "rank 2"]


class TestValidate:
    def test_shipped_modules_are_clean(self, capsys):
        code, out, _err = run_cli(capsys, "validate")
        assert code == 0
        assert out.count("clean") == 2
