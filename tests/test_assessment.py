"""Assessment: Likert scales, from-scratch t-test vs scipy, reports."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.assessment import (
    CONFIDENCE,
    CONFIDENCE_PAIRS,
    PREPAREDNESS,
    PREPAREDNESS_PAIRS,
    USEFULNESS,
    LikertScale,
    PrePostItem,
    SessionRatings,
    SurveyItem,
    figure3,
    figure4,
    paired_t_test,
    regularized_incomplete_beta,
    student_t_sf,
    table2,
    workshop_cohort,
)

FAST = settings(max_examples=60, deadline=None)


class TestLikertScale:
    def test_labels_and_bounds(self):
        assert USEFULNESS.min == 1 and USEFULNESS.max == 5
        assert USEFULNESS.label(5) == "extremely useful"
        assert PREPAREDNESS.label(2) == "a little bit"

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            USEFULNESS.validate(0)
        with pytest.raises(ValueError):
            USEFULNESS.validate(6)

    def test_validate_rejects_non_integers(self):
        with pytest.raises(TypeError):
            USEFULNESS.validate(4.5)
        with pytest.raises(TypeError):
            USEFULNESS.validate(True)

    def test_histogram_in_scale_order(self):
        h = CONFIDENCE.histogram([1, 3, 3, 5])
        assert list(h) == list(CONFIDENCE.labels)
        assert h["moderately"] == 2 and h["extremely"] == 1

    def test_mean(self):
        assert CONFIDENCE.mean([1, 2, 3]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            CONFIDENCE.mean([])

    def test_scale_needs_two_anchors(self):
        with pytest.raises(ValueError):
            LikertScale("x", ("only",))


class TestTTestMachinery:
    def test_incomplete_beta_boundaries(self):
        assert regularized_incomplete_beta(2, 3, 0.0) == 0.0
        assert regularized_incomplete_beta(2, 3, 1.0) == 1.0

    def test_incomplete_beta_symmetric_case(self):
        # I_0.5(a, a) = 0.5 by symmetry
        assert regularized_incomplete_beta(4, 4, 0.5) == pytest.approx(0.5)

    @FAST
    @given(
        a=st.floats(0.5, 20),
        b=st.floats(0.5, 20),
        x=st.floats(0.01, 0.99),
    )
    def test_incomplete_beta_matches_scipy(self, a, b, x):
        ours = regularized_incomplete_beta(a, b, x)
        assert ours == pytest.approx(scipy_stats.beta.cdf(x, a, b), abs=1e-9)

    @FAST
    @given(t=st.floats(-8, 8), df=st.integers(1, 60))
    def test_student_sf_matches_scipy(self, t, df):
        # abs tolerance 5e-9: for |t| near 0 the x = df/(df+t^2) transform
        # loses a couple of digits relative to scipy's dedicated stdtr path.
        assert student_t_sf(t, df) == pytest.approx(
            scipy_stats.t.sf(t, df), abs=5e-9
        )

    def test_t_sf_symmetry(self):
        assert student_t_sf(1.7, 10) + student_t_sf(-1.7, 10) == pytest.approx(1.0)

    @FAST
    @given(
        data=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            min_size=3,
            max_size=40,
        )
    )
    def test_paired_t_matches_scipy(self, data):
        pre = [a for a, _b in data]
        post = [b for _a, b in data]
        diffs = [b - a for a, b in data]
        if len(set(diffs)) == 1:  # zero-variance: both implementations degenerate
            return
        ours = paired_t_test(pre, post)
        theirs = scipy_stats.ttest_rel(post, pre)
        assert ours.t_statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([1, 2], [1])
        with pytest.raises(ValueError):
            paired_t_test([1], [2])
        with pytest.raises(ValueError, match="identical"):
            paired_t_test([1, 2, 3], [2, 3, 4])  # all diffs equal


class TestSurveyInstruments:
    def test_session_ratings_rows_round_to_two_decimals(self):
        item = SurveyItem("useful?", USEFULNESS)
        ratings = SessionRatings("Demo", item, item)
        for a, b in [(5, 4), (4, 4), (5, 5)]:
            ratings.add(a, b)
        session, a, b = ratings.row()
        assert (session, a, b) == ("Demo", 4.67, 4.33)

    def test_none_means_skipped_column(self):
        item = SurveyItem("useful?", USEFULNESS)
        ratings = SessionRatings("Demo", item, item)
        ratings.add(5, None)
        ratings.add(4, 3)
        assert len(ratings.ratings_a) == 2
        assert len(ratings.ratings_b) == 1

    def test_prepost_item_histograms(self):
        item = PrePostItem("conf?", CONFIDENCE)
        item.add_pairs([(2, 4), (3, 3), (1, 5)])
        pre, post = item.histograms()
        assert pre["slightly"] == 1 and post["extremely"] == 1

    def test_invalid_response_rejected_on_add(self):
        item = PrePostItem("conf?", CONFIDENCE)
        with pytest.raises(ValueError):
            item.add_pair(0, 3)


class TestCalibratedCohort:
    def test_cohort_demographics_match_paper(self):
        cohort = workshop_cohort()
        assert len(cohort) == 22
        assert sum(p.role == "faculty" for p in cohort) == 19
        assert sum(p.role == "graduate-student" for p in cohort) == 3
        assert sum(p.gender == "male" for p in cohort) == 17
        assert sum(p.gender == "female" for p in cohort) == 4
        assert sum(p.gender == "other" for p in cohort) == 1
        assert sum(p.location == "continental-us" for p in cohort) == 19
        assert sum(p.location == "puerto-rico" for p in cohort) == 1
        assert sum(p.location == "international" for p in cohort) == 2
        assert sum(p.track == "tenured-or-tenure-track" for p in cohort) == 10
        assert sum(p.track == "non-tenure-track" for p in cohort) == 9

    def test_all_pairs_are_valid_likert_values(self):
        for pre, post in CONFIDENCE_PAIRS + PREPAREDNESS_PAIRS:
            assert 1 <= pre <= 5 and 1 <= post <= 5

    def test_nobody_regressed(self):
        assert all(post >= pre for pre, post in CONFIDENCE_PAIRS)
        assert all(post >= pre for pre, post in PREPAREDNESS_PAIRS)


class TestPaperNumbers:
    def test_table2_reproduces_paper_row_for_row(self):
        rows = table2().rows
        assert rows[0] == ("OpenMP on Raspberry Pi", 4.55, 4.45)
        assert rows[1] == ("MPI & Distr. Cluster Computing", 4.38, 4.29)

    def test_openmp_session_rated_highest(self):
        rows = table2().rows
        assert rows[0][1] > rows[1][1] and rows[0][2] > rows[1][2]

    def test_figure3_statistics(self):
        f3 = figure3()
        assert round(f3.test.pre_mean, 2) == 2.82
        assert round(f3.test.post_mean, 2) == 3.59
        assert f3.test.n == 22 and f3.test.df == 21
        # paper reports p = 0.0004
        assert f3.test.p_value == pytest.approx(4.33e-4, rel=0.01)
        assert f3.test.significant()

    def test_figure4_statistics(self):
        f4 = figure4()
        assert round(f4.test.pre_mean, 2) == 2.59
        assert round(f4.test.post_mean, 2) == 3.77
        # paper reports p = 4.18e-08
        assert f4.test.p_value == pytest.approx(4.18e-8, rel=0.01)

    def test_histograms_sum_to_cohort_size(self):
        for fig in (figure3(), figure4()):
            assert sum(fig.pre_histogram.values()) == 22
            assert sum(fig.post_histogram.values()) == 22

    def test_renders_mention_key_stats(self):
        assert "4.55" in table2().render()
        assert "pre_m = 2.82" in figure3().render()
        assert "pre_m = 2.59" in figure4().render()

    def test_preparedness_gain_larger_than_confidence_gain(self):
        # visible in the figures: preparedness moved more
        assert figure4().test.mean_diff > figure3().test.mean_diff
