"""Units for the static MPI protocol checker (repro.analysis.flow.protocol)."""

import ast
from pathlib import Path

from repro.analysis.flow.protocol import (
    check_protocol,
    extract_traces,
    simulate,
    spmd_roots,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
PATTERNLETS = REPO_ROOT / "src" / "repro" / "patternlets"


def _module_func(path: Path, name: str) -> tuple[ast.AST, ast.Module]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and n.name == name
    )
    return func, tree


def _inline(src: str, name: str = "body") -> tuple[ast.AST, ast.Module]:
    tree = ast.parse(src)
    func = next(
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )
    return func, tree


class TestDeadlockPatternlet:
    """Acceptance: the deadlock patternlet's cycle is caught statically."""

    def test_broken_reports_symmetric_recv_first_cycle(self):
        func, tree = _module_func(
            PATTERNLETS / "mpi" / "pointtopoint.py", "broken"
        )
        findings = check_protocol(func, tree)
        assert findings, "expected a static deadlock finding on broken()"
        errors = [f for f in findings if f.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "PDC103"
        assert "recv" in errors[0].message

    def test_repaired_is_clean(self):
        func, tree = _module_func(
            PATTERNLETS / "mpi" / "pointtopoint.py", "repaired"
        )
        findings = check_protocol(func, tree)
        assert not findings

    def test_zero_error_findings_on_correct_patternlet_roots(self):
        # Every analyzable SPMD root in the point-to-point and collective
        # patternlet modules is protocol-clean except the intentionally
        # broken exchange.
        for module in ("pointtopoint.py", "collective.py"):
            path = PATTERNLETS / "mpi" / module
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for root in spmd_roots(tree):
                findings = check_protocol(root, tree)
                if findings is None:
                    continue  # ambiguous: checker abstains, no finding
                errors = [f for f in findings if f.severity == "error"]
                if root.name == "broken":
                    assert errors
                else:
                    assert not errors, (
                        f"{module}:{root.name} -> "
                        f"{[f.message for f in errors]}"
                    )


class TestCollectiveSplit:
    def test_collective_in_rank_branch(self):
        # Same shape mpicheck flags dynamically as a collective mismatch.
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        comm.bcast('x', root=0)\n"
            "    return rank\n"
        )
        findings = check_protocol(func, tree)
        assert findings
        assert any(
            f.rule == "PDC104" and f.severity == "error" for f in findings
        )

    def test_collective_for_all_ranks_is_clean(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    value = comm.bcast('x', root=0)\n"
            "    return value\n"
        )
        assert not check_protocol(func, tree)


class TestOrderingAndCounts:
    def test_divergent_collective_order(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        comm.bcast('x', root=0)\n"
            "        comm.gather(rank, root=0)\n"
            "    else:\n"
            "        comm.gather(rank, root=0)\n"
            "        comm.bcast('x', root=0)\n"
        )
        findings = check_protocol(func, tree)
        assert findings
        assert any(f.rule == "PDC111" for f in findings)

    def test_recv_from_finished_rank(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        return comm.recv(source=1, tag=3)\n"
            "    return None\n"
        )
        findings = check_protocol(func, tree)
        assert findings
        assert any(
            f.rule == "PDC112" and f.severity == "error" for f in findings
        )

    def test_leftover_buffered_send_is_warning_only(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        comm.send('x', dest=1, tag=9)\n"
            "    return None\n"
        )
        findings = check_protocol(func, tree)
        assert findings
        assert all(f.severity == "warning" for f in findings)
        assert any(f.rule == "PDC112" for f in findings)

    def test_crossed_waits_cycle(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        got = comm.recv(source=1, tag=1)\n"
            "        comm.send('a', dest=1, tag=2)\n"
            "    else:\n"
            "        got = comm.recv(source=0, tag=2)\n"
            "        comm.send('b', dest=0, tag=1)\n"
            "    return got\n"
        )
        findings = check_protocol(func, tree)
        assert findings
        assert any(
            f.rule == "PDC110" and f.severity == "error" for f in findings
        )

    def test_request_reply_with_tags_is_clean(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        comm.send('req', dest=1, tag=1)\n"
            "        reply = comm.recv(source=1, tag=2)\n"
            "    else:\n"
            "        req = comm.recv(source=0, tag=1)\n"
            "        comm.send('ack', dest=0, tag=2)\n"
            "        reply = req\n"
            "    return reply\n"
        )
        assert not check_protocol(func, tree)


class TestAmbiguity:
    def test_while_loop_with_comm_abstains(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    while True:\n"
            "        task = comm.recv(source=0, tag=1)\n"
            "        if task is None:\n"
            "            break\n"
            "    return rank\n"
        )
        assert check_protocol(func, tree) is None

    def test_wildcard_source_abstains(self):
        func, tree = _inline(
            "from repro.mpi import ANY_SOURCE\n"
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        got = comm.recv(source=ANY_SOURCE, tag=1)\n"
            "    else:\n"
            "        comm.send(rank, dest=0, tag=1)\n"
            "    return rank\n"
        )
        assert check_protocol(func, tree) is None

    def test_unknown_guard_without_comm_is_fine(self):
        # An unanalyzable condition is only fatal when comm hides behind it.
        func, tree = _inline(
            "def body(comm, data):\n"
            "    rank = comm.Get_rank()\n"
            "    if len(data) > 3:\n"
            "        total = sum(data)\n"
            "    comm.barrier()\n"
            "    return rank\n"
        )
        assert check_protocol(func, tree) == []


class TestRoots:
    def test_spmd_roots_pick_comm_functions(self):
        tree = ast.parse(
            "def body(comm):\n"
            "    comm.barrier()\n"
            "def plain(x):\n"
            "    return x + 1\n"
        )
        names = {f.name for f in spmd_roots(tree)}
        assert "body" in names and "plain" not in names

    def test_called_helper_is_not_a_root(self):
        # A comm-taking helper invoked from another root is analyzed as part
        # of its caller's trace, not as an independent SPMD entry point.
        tree = ast.parse(
            "def receive_then_send(comm, partner):\n"
            "    got = comm.recv(source=partner, tag=1)\n"
            "    comm.send('x', dest=partner, tag=1)\n"
            "    return got\n"
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    partner = rank ^ 1\n"
            "    if rank % 2 == 0:\n"
            "        comm.send('x', dest=partner, tag=1)\n"
            "        got = comm.recv(source=partner, tag=1)\n"
            "    else:\n"
            "        got = receive_then_send(comm, partner)\n"
            "    return got\n"
        )
        names = {f.name for f in spmd_roots(tree)}
        assert names == {"body"}

    def test_traces_and_simulate_roundtrip(self):
        func, tree = _inline(
            "def body(comm):\n"
            "    rank = comm.Get_rank()\n"
            "    if rank == 0:\n"
            "        comm.send('x', dest=1, tag=5)\n"
            "    else:\n"
            "        got = comm.recv(source=0, tag=5)\n"
            "    return rank\n"
        )
        traces = extract_traces(func, tree, size=2)
        assert len(traces) == 2
        assert simulate(traces) == []
