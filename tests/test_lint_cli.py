"""The ``repro lint`` CLI: exit codes, JSON output, and golden reports."""

import json
import re
from pathlib import Path

from repro.analysis.lint import lint_path, lint_patternlet
from repro.cli import main

HERE = Path(__file__).parent
REPO_ROOT = HERE.parent
FIXTURES = HERE / "fixtures" / "lint"
GOLDENS = HERE / "goldens"


def _normalize(text: str) -> str:
    """Mask volatile file:line sites (quotes excluded so JSON stays valid)."""
    return re.sub(r"[\w./\\-]+\.(?:py|c):\d+", "<site>", text)


class TestLintCommand:
    def test_error_finding_exits_one(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "== repro lint:" in out
        assert "[shared-write-in-parallel]" in out
        assert "verdict: 1 error(s)" in out

    def test_warning_only_exits_zero(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc105_tp.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "WARN" in out

    def test_clean_file_exits_zero(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tn.py")])
        assert rc == 0
        assert "verdict: clean" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["engine"] == "pdclint"
        assert payload["clean"] is False
        assert payload["diagnostics"][0]["details"]["rule"] == "PDC101"

    def test_select_narrows_rules(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--select", "PDC106"])
        assert rc == 0
        assert "verdict: clean" in capsys.readouterr().out

    def test_ignore_drops_rules(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--ignore", "PDC101"])
        assert rc == 0

    def test_unknown_rule_id_exits_two(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--select", "PDC999"])
        assert rc == 2
        assert "PDC999" in capsys.readouterr().err

    def test_unknown_target_exits_two(self, capsys):
        rc = main(["lint", "nosuchpatternlet"])
        assert rc == 2
        assert "nosuchpatternlet" in capsys.readouterr().err

    def test_patternlet_target_surfaces_intentional_bug(self, capsys):
        rc = main(["lint", "race", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["target"] == "race"
        assert payload["diagnostics"][0]["details"]["rule"] == "PDC202"
        assert payload["diagnostics"][0]["location"] == "clisting:race:9"
        # the Python-side bug is acknowledged in-source, not reported
        assert payload["suppressed"] == 1

    def test_clean_patternlet_target(self, capsys):
        rc = main(["lint", "atomic"])
        assert rc == 0
        assert "verdict: clean" in capsys.readouterr().out

    def test_clistings_target(self, capsys):
        rc = main(["lint", "clistings"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "C listings checked" in out

    def test_multiple_targets_combine(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tn.py"), "clistings"])
        assert rc == 0


class TestSelfLint:
    """pdclint applied to the repo's own teaching code."""

    def test_patternlets_and_examples_are_clean(self, capsys):
        rc = main(["lint", str(REPO_ROOT / "src" / "repro" / "patternlets"),
                   str(REPO_ROOT / "examples"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0, payload
        assert payload["clean"] is True
        # the two intentional teaching bugs ride suppression directives
        assert payload["suppressed"] >= 2


class TestGoldenReports:
    def _check(self, report, golden):
        got = json.loads(_normalize(report.to_json()))
        want = json.loads((GOLDENS / golden).read_text())
        assert got == want

    def test_pdc101_report_matches_golden(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        self._check(lint_path("tests/fixtures/lint/pdc101_tp.py"),
                    "lint_pdc101.json")

    def test_suppressed_report_matches_golden(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        self._check(lint_path("tests/fixtures/lint/suppressed_tp.py"),
                    "lint_suppressed.json")

    def test_race_patternlet_report_matches_golden(self):
        self._check(lint_patternlet("race"), "lint_race_clisting.json")

    def test_text_render_structure(self):
        report = lint_path(FIXTURES / "pdc101_tp.py")
        lines = report.render().splitlines()
        assert lines[0].startswith("== repro lint:")
        assert lines[-1] == "verdict: 1 error(s), 0 warning(s)"
        assert any(line.startswith("ERROR") for line in lines)


class TestGithubFormat:
    def test_error_annotation_and_exit_code(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out
        assert "title=pdclint PDC101::" in out
        assert ",line=" in out
        assert "pdclint:" in out.splitlines()[-1]  # summary trailer

    def test_clean_file_exits_zero(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tn.py"),
                   "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "::error" not in out

    def test_annotation_carries_full_statement_span(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        match = re.search(
            r"line=(\d+),endLine=(\d+),col=(\d+),endColumn=(\d+)", out)
        assert match, out
        line, end_line, col, end_col = map(int, match.groups())
        assert end_line >= line
        assert col >= 1 and end_col >= col

    def test_c_finding_without_span_stays_line_only(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc202_tp.c"),
                   "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out
        assert "endLine=" not in out  # no AST spans for C pragma findings

    def test_format_json_equals_json_flag(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tp.py"),
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["engine"] == "pdclint"


class TestBaselineRatchet:
    LEGACY = FIXTURES / "legacy"
    BASELINE = FIXTURES / "legacy_baseline.json"

    def test_committed_baseline_silences_legacy_corpus(self, capsys,
                                                       monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "--baseline", str(self.BASELINE), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0, payload
        assert payload["clean"] is True
        assert payload["suppressed"] >= 2

    def test_new_finding_still_fails_under_baseline(self, capsys,
                                                    monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "tests/fixtures/lint/pdc101_tp.py",
                   "--baseline", str(self.BASELINE), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["clean"] is False
        # the legacy findings stay baselined; only the new site surfaces
        labels = {d["location"].rsplit(":", 1)[0]
                  for d in payload["diagnostics"]}
        assert labels == {"tests/fixtures/lint/pdc101_tp.py"}

    def test_update_baseline_roundtrip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "--update-baseline", str(baseline)])
        capsys.readouterr()
        assert rc == 0
        data = json.loads(baseline.read_text())
        assert data["engine"] == "pdclint"
        assert len(data["fingerprints"]) == 2
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "--baseline", str(baseline)])
        capsys.readouterr()
        assert rc == 0

    def test_update_baseline_prunes_stale_fingerprints(self, capsys,
                                                       tmp_path, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "--update-baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "+2 new" in out
        assert "pruned" not in out
        # the legacy debt is paid off: re-baselining a clean target must
        # drop the stale fingerprints, never carry them forward
        rc = main(["lint", str(FIXTURES / "pdc101_tn.py"),
                   "--update-baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 finding(s) accepted" in out
        assert "-2 pruned" in out
        assert json.loads(baseline.read_text())["fingerprints"] == []

    def test_update_baseline_reports_no_delta_when_unchanged(self, capsys,
                                                             tmp_path,
                                                             monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = tmp_path / "baseline.json"
        for _ in range(2):
            rc = main(["lint", "tests/fixtures/lint/legacy",
                       "--update-baseline", str(baseline)])
            assert rc == 0
        out = capsys.readouterr().out
        assert out.count("2 finding(s) accepted") == 2
        # the second write is a no-op delta
        assert out.splitlines()[-1].endswith("(2 finding(s) accepted)")

    def test_update_baseline_over_corrupt_file_recovers(self, capsys,
                                                        tmp_path, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        rc = main(["lint", "tests/fixtures/lint/legacy",
                   "--update-baseline", str(baseline)])
        capsys.readouterr()
        assert rc == 0
        assert len(json.loads(baseline.read_text())["fingerprints"]) == 2

    def test_missing_baseline_file_exits_two(self, capsys):
        rc = main(["lint", str(FIXTURES / "pdc101_tn.py"),
                   "--baseline", "/nonexistent/baseline.json"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "baseline" in err


class TestSeedExplore:
    def test_seed_explore_adds_hints_to_json(self, capsys):
        rc = main(["lint", "race", "--json", "--seed-explore"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1  # the C listing carries an unsuppressed PDC202
        hints = payload["explore_hints"]
        assert hints["racy"]
        # both the live finding and the suppressed intentional bug count
        rules = {h["rule"] for h in hints["racy"]}
        assert {"PDC101", "PDC202"} <= rules

    def test_json_without_flag_has_no_hints_key(self, capsys):
        main(["lint", "race", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert "explore_hints" not in payload

    def test_explore_seed_from_lint_flags_witness_first(self, capsys):
        rc = main(["explore", "race", "--seed-from-lint",
                   "--schedules", "8", "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert rc == 1
        assert payload["seeded"]["racy"]
        assert payload["outcomes"][0]["flagged"] is True
        assert "seeded from lint:" in captured.err
