"""Tooling gates that ride the test entry point: CLI smoke run + lint.

The lint step is *gated*: it runs ``ruff check`` with the repo's
``[tool.ruff]`` configuration when ruff is installed (the ``lint`` extra)
and skips cleanly when it is not, so the tier-1 suite never depends on an
optional tool being present.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _run(argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        argv, cwd=REPO, env=env, capture_output=True, text=True,
        timeout=180, **kwargs,
    )


class TestCliSmoke:
    def test_python_m_repro_analyze_race_json(self):
        proc = _run([sys.executable, "-m", "repro", "analyze", "race", "--json"])
        assert proc.returncode == 1, proc.stderr  # a race *was* found
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        assert payload["diagnostics"][0]["kind"] == "data-race"

    def test_python_m_repro_analyze_clean_exits_zero(self):
        proc = _run([sys.executable, "-m", "repro", "analyze", "atomic"])
        assert proc.returncode == 0, proc.stderr
        assert "verdict: clean" in proc.stdout

    def test_python_m_repro_lint_examples_json(self):
        proc = _run([sys.executable, "-m", "repro", "lint", "examples",
                     "--json"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["engine"] == "pdclint"
        assert payload["clean"] is True


class TestLint:
    def test_ruff_check_src_tests_examples(self):
        ruff = shutil.which("ruff")
        if ruff is None:
            pytest.skip("ruff not installed (pip install -e .[lint])")
        proc = _run([ruff, "check", "src", "tests", "examples"])
        assert proc.returncode == 0, proc.stdout + proc.stderr
