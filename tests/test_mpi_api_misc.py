"""The MPI namespace's module-level API surface and request utilities."""

import time

import pytest

from repro.mpi import MPI, Request
from tests.conftest import spmd


class TestModuleLevelAPI:
    def test_wtime_monotone(self):
        a = MPI.Wtime()
        time.sleep(0.002)
        b = MPI.Wtime()
        assert b > a

    def test_wtick_positive(self):
        assert 0 < MPI.Wtick() < 1.0

    def test_compute_dims_both_signatures(self):
        assert MPI.Compute_dims(12, 2) == [4, 3]
        assert MPI.Compute_dims(12, [0, 0]) == [4, 3]

    def test_thread_support_level(self):
        assert MPI.Query_thread() == MPI.THREAD_MULTIPLE

    def test_init_finalize_flags(self):
        assert MPI.Is_initialized() is True
        assert MPI.Is_finalized() is False

    def test_exception_alias(self):
        from repro.mpi import MPIError

        assert MPI.Exception is MPIError

    def test_comm_world_repr_outside_context(self):
        assert "no active mpirun context" in repr(MPI.COMM_WORLD)

    def test_datatype_constants_are_distinct(self):
        names = {dt.name for dt in (MPI.INT, MPI.LONG, MPI.FLOAT, MPI.DOUBLE,
                                    MPI.BYTE, MPI.BOOL)}
        assert len(names) == 6


class TestRequestUtilities:
    def test_waitany_returns_first_completed(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                # only rank 2's message is sent immediately
                comm.barrier()
                reqs = [comm.irecv(source=s, tag=s) for s in (1, 2)]
                index, payload = Request.Waitany(reqs)
                # drain the other to leave the world clean
                comm.send("go", dest=1, tag=9)
                reqs[0].wait()
                return (index, payload)
            if rank == 1:
                comm.barrier()
                comm.recv(source=0, tag=9)  # wait until rank 0 polled
                comm.send("slow", dest=0, tag=1)
                return None
            if rank == 2:
                comm.send("fast", dest=0, tag=2)
                comm.barrier()
                return None
            return None

        outs = spmd(body, 3)
        assert outs[0] == (1, "fast")

    def test_waitall_with_statuses(self):
        from repro.mpi import Status

        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                reqs = [comm.irecv(source=s, tag=5) for s in (1, 2)]
                statuses: list[Status] = []
                payloads = Request.Waitall(reqs, statuses)
                return (payloads, [s.Get_source() for s in statuses])
            comm.send(rank * 11, dest=0, tag=5)
            return None

        payloads, sources = spmd(body, 3)[0]
        assert payloads == [11, 22]
        assert sources == [1, 2]

    def test_uppercase_wait_aliases(self):
        def body(comm):
            rank = comm.Get_rank()
            if rank == 0:
                req = comm.isend("x", dest=1)
                req.Wait()
                done, _ = req.Test()
                return done
            return comm.irecv(source=0).Wait()

        outs = spmd(body, 2)
        assert outs == [True, "x"]


class TestProcessorName:
    def test_inside_world_uses_simulated_hostname(self):
        def body(comm):
            return MPI.Get_processor_name()

        assert spmd(body, 2, hostname="pi-node") == ["pi-node"] * 2

    def test_nested_helper_sees_comm_world(self):
        """Library code can use MPI.COMM_WORLD without plumbing comm."""

        def helper():
            return MPI.COMM_WORLD.Get_size()

        def body(comm):
            return helper()

        assert spmd(body, 3) == [3, 3, 3]
