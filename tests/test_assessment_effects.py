"""Effect sizes, Wilcoxon signed-rank, and the qualitative coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.assessment import (
    CONFIDENCE_PAIRS,
    PAPER_QUOTES,
    PREPAREDNESS_PAIRS,
    THEMES,
    WilcoxonResult,
    cohens_d_label,
    cohens_d_paired,
    evidence_for_strategy,
    quotes_for,
    theme_counts,
    wilcoxon_signed_rank,
)

FAST = settings(max_examples=50, deadline=None)


class TestCohensD:
    def test_paper_effects_are_large(self):
        """Both pre/post gains the paper reports are large effects."""
        for pairs in (CONFIDENCE_PAIRS, PREPAREDNESS_PAIRS):
            pre = [a for a, _b in pairs]
            post = [b for _a, b in pairs]
            d = cohens_d_paired(pre, post)
            assert cohens_d_label(d) == "large"

    def test_preparedness_effect_larger(self):
        d_conf = cohens_d_paired(
            [a for a, _ in CONFIDENCE_PAIRS], [b for _, b in CONFIDENCE_PAIRS]
        )
        d_prep = cohens_d_paired(
            [a for a, _ in PREPAREDNESS_PAIRS], [b for _, b in PREPAREDNESS_PAIRS]
        )
        assert d_prep > d_conf

    def test_d_equals_t_over_sqrt_n(self):
        from math import sqrt

        from repro.assessment import paired_t_test

        pre = [a for a, _ in CONFIDENCE_PAIRS]
        post = [b for _, b in CONFIDENCE_PAIRS]
        t = paired_t_test(pre, post).t_statistic
        assert cohens_d_paired(pre, post) == pytest.approx(t / sqrt(len(pre)))

    @pytest.mark.parametrize(
        "d,label",
        [(0.1, "negligible"), (0.3, "small"), (0.6, "medium"), (1.2, "large"),
         (-0.9, "large")],
    )
    def test_labels(self, d, label):
        assert cohens_d_label(d) == label

    def test_validation(self):
        with pytest.raises(ValueError):
            cohens_d_paired([1, 2], [1])
        with pytest.raises(ValueError):
            cohens_d_paired([1, 2, 3], [2, 3, 4])  # zero-variance diffs


class TestWilcoxon:
    def test_paper_data_significant_nonparametrically(self):
        """The robustness check: the gains survive the ordinal-scale test."""
        for pairs in (CONFIDENCE_PAIRS, PREPAREDNESS_PAIRS):
            pre = [a for a, _b in pairs]
            post = [b for _a, b in pairs]
            result = wilcoxon_signed_rank(pre, post)
            assert result.significant()
            assert result.w_minus == 0.0  # nobody regressed

    def test_matches_scipy_on_paper_data(self):
        pre = [a for a, _ in CONFIDENCE_PAIRS]
        post = [b for _, b in CONFIDENCE_PAIRS]
        ours = wilcoxon_signed_rank(pre, post)
        theirs = scipy_stats.wilcoxon(
            post, pre, zero_method="wilcox", correction=True, mode="approx"
        )
        assert ours.w_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    @FAST
    @given(
        data=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            min_size=5,
            max_size=40,
        )
    )
    def test_property_matches_scipy(self, data):
        pre = [a for a, _b in data]
        post = [b for _a, b in data]
        if sum(1 for a, b in data if a != b) < 2:
            return  # degenerate: both implementations reject or are unstable
        ours = wilcoxon_signed_rank(pre, post)
        theirs = scipy_stats.wilcoxon(
            post, pre, zero_method="wilcox", correction=True, mode="approx"
        )
        assert ours.w_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9, abs=1e-12)

    def test_all_zero_differences_rejected(self):
        with pytest.raises(ValueError, match="all paired differences are zero"):
            wilcoxon_signed_rank([1, 2, 3], [1, 2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1, 2], [1])

    def test_summary_text(self):
        result = wilcoxon_signed_rank([1, 2, 3, 4], [3, 4, 5, 4])
        assert isinstance(result, WilcoxonResult)
        assert "Wilcoxon signed-rank" in result.summary()


class TestQualitativeCoding:
    def test_every_quote_has_a_known_theme(self):
        counts = theme_counts()
        assert sum(counts.values()) == len(PAPER_QUOTES)
        assert set(counts) <= set(THEMES)

    def test_quotes_for_theme(self):
        quotes = quotes_for("python-viable")
        assert len(quotes) == 1
        assert "MPI can be used in Python" in quotes[0].text

    def test_unknown_theme_raises(self):
        with pytest.raises(KeyError):
            quotes_for("blockchain")

    def test_each_strategy_has_supporting_evidence(self):
        for strategy in (1, 2, 3):
            evidence = evidence_for_strategy(strategy)
            assert evidence["supporting"], strategy

    def test_challenges_recorded_where_the_paper_reports_them(self):
        # strategy 2: "The platform switches seem to be a little confusing."
        assert evidence_for_strategy(2)["challenging"]
        # strategy 3: the shy-participant comment
        assert evidence_for_strategy(3)["challenging"]

    def test_theme_counts_rejects_uncoded(self):
        from repro.assessment import OpenEndedResponse

        with pytest.raises(KeyError, match="uncoded"):
            theme_counts((OpenEndedResponse("x", "not-a-theme"),))
