"""pdclint rules against the true-positive/true-negative fixture pairs."""

import json

import pytest
from pathlib import Path

from repro.analysis.lint import lint_path, lint_source, rule_ids

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

# (fixture, rule id, line the finding anchors to, severity)
TRUE_POSITIVES = [
    ("pdc101_tp.py", "PDC101", 11, "error"),
    ("pdc102_tp.py", "PDC102", 9, "error"),
    ("pdc103_tp.py", "PDC103", 10, "error"),
    ("pdc104_tp.py", "PDC104", 11, "error"),
    ("pdc105_tp.py", "PDC105", 8, "warning"),
    ("pdc106_tp.py", "PDC106", 10, "warning"),
    ("pdc107_tp.py", "PDC107", 14, "warning"),
    ("pdc108_tp.py", "PDC108", 17, "error"),
    ("pdc110_tp.py", "PDC110", 10, "error"),
    ("pdc111_tp.py", "PDC111", 10, "error"),
    ("pdc112_tp.py", "PDC112", 10, "error"),
    ("pdc201_tp.c", "PDC201", 9, "error"),
    ("pdc202_tp.c", "PDC202", 10, "error"),
    ("pdc203_tp.c", "PDC203", 9, "warning"),
    # Flow-sensitivity flips: true positives the lexical rules missed.
    ("pdc101_tp_helper.py", "PDC101", 14, "error"),
    ("pdc103_tp_size_guard.py", "PDC103", 11, "error"),
    ("pdc104_tp_rank_alias.py", "PDC104", 12, "error"),
    ("pdc106_tp_early_return.py", "PDC106", 12, "warning"),
]

TRUE_NEGATIVES = [
    "pdc101_tn.py",
    "pdc102_tn.py",
    "pdc103_tn.py",
    "pdc104_tn.py",
    "pdc105_tn.py",
    "pdc106_tn.py",
    "pdc107_tn.py",
    "pdc108_tn.py",
    "pdc110_tn.py",
    "pdc111_tn.py",
    "pdc112_tn.py",
    "pdc201_tn.c",
    "pdc202_tn.c",
    "pdc203_tn.c",
    # Flow-sensitivity flips: false positives the lexical rules reported.
    "pdc101_tn_lock_object.py",
    "pdc101_tn_single_thread.py",
    "pdc103_tn_helper.py",
    "pdc104_tn_size_branch.py",
]


# Opt-in scalability rules: fixtures lint with --cost style enablement.
COST_RULES = ["PDC120", "PDC121", "PDC122"]

COST_TRUE_POSITIVES = [
    ("pdc120_tp.py", "PDC120", 15, "warning"),
    ("pdc121_tp.py", "PDC121", 15, "warning"),
    ("pdc122_tp.py", "PDC122", 14, "warning"),
]

COST_TRUE_NEGATIVES = [
    "pdc120_tn.py",
    "pdc121_tn.py",
    "pdc122_tn.py",
]


class TestFixturePairs:
    @pytest.mark.parametrize("fixture,rule,line,severity", TRUE_POSITIVES)
    def test_true_positive_fires_its_rule(self, fixture, rule, line, severity):
        report = lint_path(FIXTURES / fixture)
        assert len(report.diagnostics) == 1, report.render()
        diag = report.diagnostics[0]
        assert diag.details["rule"] == rule
        assert diag.severity == severity
        assert diag.location.endswith(f"{fixture}:{line}")
        assert diag.details["fix"]  # every rule ships a fix hint

    @pytest.mark.parametrize("fixture", TRUE_NEGATIVES)
    def test_true_negative_is_clean(self, fixture):
        report = lint_path(FIXTURES / fixture)
        assert report.clean, report.render()
        assert not report.diagnostics
        assert not report.suppressed

    @pytest.mark.parametrize("fixture,rule,line,severity", COST_TRUE_POSITIVES)
    def test_cost_true_positive_fires_its_rule(self, fixture, rule, line,
                                               severity):
        report = lint_path(FIXTURES / fixture, enable=COST_RULES)
        assert len(report.diagnostics) == 1, report.render()
        diag = report.diagnostics[0]
        assert diag.details["rule"] == rule
        assert diag.severity == severity
        assert diag.location.endswith(f"{fixture}:{line}")
        assert diag.details["fix"]

    @pytest.mark.parametrize("fixture", COST_TRUE_NEGATIVES)
    def test_cost_true_negative_is_clean(self, fixture):
        report = lint_path(FIXTURES / fixture, enable=COST_RULES)
        assert report.clean, report.render()
        assert not report.diagnostics

    @pytest.mark.parametrize(
        "fixture", [f for f, *_ in COST_TRUE_POSITIVES])
    def test_cost_rules_stay_dormant_by_default(self, fixture):
        report = lint_path(FIXTURES / fixture)
        assert not report.diagnostics, report.render()

    def test_every_rule_has_a_fixture_pair(self):
        covered = {rule for _, rule, _, _ in TRUE_POSITIVES}
        covered |= {rule for _, rule, _, _ in COST_TRUE_POSITIVES}
        assert covered == set(rule_ids())


class TestSuppression:
    def test_trailing_directive_suppresses_that_line(self):
        report = lint_path(FIXTURES / "suppressed_tp.py")
        assert report.clean
        assert not report.diagnostics
        assert [d.details["rule"] for d in report.suppressed] == ["PDC101"]

    def test_suppression_round_trips_through_json(self):
        report = lint_path(FIXTURES / "suppressed_tp.py")
        payload = json.loads(report.to_json())
        assert payload["suppressed"] == 1
        assert payload["clean"] is True
        assert payload["diagnostics"] == []

    def test_file_wide_directive_on_comment_line(self):
        text = "# pdclint: disable=PDC101\n" + (
            FIXTURES / "pdc101_tp.py").read_text()
        report = lint_source(text, "snippet.py")
        assert report.clean
        assert len(report.suppressed) == 1

    def test_disable_all(self):
        text = "# pdclint: disable=all\n" + (
            FIXTURES / "pdc101_tp.py").read_text()
        report = lint_source(text, "snippet.py")
        assert report.clean
        assert report.suppressed

    def test_directive_for_other_rule_does_not_suppress(self):
        text = (FIXTURES / "pdc101_tp.py").read_text().replace(
            "total = total + 1", "total = total + 1  # pdclint: disable=PDC106")
        report = lint_source(text, "snippet.py")
        assert [d.details["rule"] for d in report.diagnostics] == ["PDC101"]
        assert not report.suppressed

    def test_suppressed_count_in_render(self):
        report = lint_path(FIXTURES / "suppressed_tp.py")
        assert "suppressed: 1 finding(s) via pdclint directives" in report.render()


class TestSelectIgnore:
    def test_select_limits_to_listed_rules(self):
        report = lint_path(FIXTURES / "pdc101_tp.py", select=["PDC106"])
        assert report.clean

    def test_ignore_drops_listed_rules(self):
        report = lint_path(FIXTURES / "pdc101_tp.py", ignore="PDC101")
        assert report.clean

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="PDC999"):
            lint_path(FIXTURES / "pdc101_tp.py", select=["PDC999"])


class TestEngineEdges:
    def test_python_syntax_error_becomes_parse_error_diagnostic(self):
        report = lint_source("def broken(:\n", "bad.py")
        assert not report.clean
        assert report.diagnostics[0].kind == "parse-error"
        assert report.diagnostics[0].details["rule"] == "parse-error"

    def test_lint_path_on_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_path(FIXTURES / "nope.py")

    def test_directory_lint_aggregates_all_fixtures(self):
        report = lint_path(FIXTURES)
        rules = sorted({d.details["rule"] for d in report.diagnostics})
        default_ids = [r for r in rule_ids() if r not in COST_RULES]
        assert rules == sorted(default_ids)
        assert len(report.suppressed) == 1

    def test_directory_lint_with_cost_rules_covers_everything(self):
        report = lint_path(FIXTURES, enable=COST_RULES)
        rules = sorted({d.details["rule"] for d in report.diagnostics})
        assert rules == sorted(rule_ids())
