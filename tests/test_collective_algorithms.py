"""Differential property suite for the pluggable collective algorithms.

Every registered algorithm must be *bit-identical* to the linear
reference — on both backends, for object and typed-buffer payloads, at
world sizes 2, 3, 5, and 8, including non-commutative operations and
empty/odd payload shapes.  Reductions use exact dtypes (ints, strings)
so "identical" means identical, not approximately equal: any reordering
bug shows up as a hard mismatch rather than a tolerance miss.

Also covers: the ``create_communicator`` topology variants, cost-model
``resolve`` policy (env overrides, non-commutative downgrade), the
``coll_algo`` observability event, the gather/Gatherv overflow
diagnostics, fault-injection behaviour per algorithm, and a coarse
"auto-pick never loses to the worst algorithm by more than 2x" race.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mpi import (
    ALGORITHMS,
    COMMUNICATOR_NAMES,
    DeadlockError,
    MAX,
    Op,
    RankFailedError,
    SUM,
    TruncationError,
    available,
    create_communicator,
    fork_available,
    resolve,
    run,
    run_procs,
)
from repro.mpi import hooks as mpi_hooks
from repro.mpi.algorithms import algorithm_cost, message_count
from repro.testkit import fault_injection

TIMEOUT = 30.0
WORLD_SIZES = (2, 3, 5, 8)
SEEDS = (0, 1)

#: Non-commutative reduction: string concatenation.  Rank order matters,
#: so any algorithm that reorders the fold produces a scrambled string.
CONCAT = Op(lambda a, b: a + b, name="concat", commute=False, elementwise=False)

BACKENDS = [
    pytest.param("threads", id="threads"),
    pytest.param(
        "procs",
        id="procs",
        marks=pytest.mark.skipif(
            not fork_available(), reason="process ranks need the fork start method"
        ),
    ),
]


def _launch(backend, body, size, *args):
    runner = run if backend == "threads" else run_procs
    return runner(body, size, *args, deadlock_timeout=TIMEOUT)


# ---------------------------------------------------------------------------
# Object-mode differential: every algorithm vs the linear reference
# ---------------------------------------------------------------------------

BCAST_ALGOS = tuple(ALGORITHMS["bcast"])
REDUCE_ALGOS = tuple(ALGORITHMS["reduce"])
ALLREDUCE_ALGOS = tuple(ALGORITHMS["allreduce"])
ALLGATHER_ALGOS = tuple(ALGORITHMS["allgather"])


def _object_body(comm, seed):
    """Run every object-mode algorithm; return {(collective, algo): result}."""
    rank, size = comm.Get_rank(), comm.Get_size()
    root = seed % size
    out = {}

    payloads = {
        "dict": {"seed": seed, "rows": list(range(11))},
        "empty": [],
        "odd": bytes(range(7)) * (seed + 1) + b"!",
    }
    for shape, payload in payloads.items():
        for algo in BCAST_ALGOS:
            obj = payload if rank == root else None
            out[("bcast", shape, algo)] = comm.bcast(obj, root, algorithm=algo)

    mine = (rank, f"r{rank}" * (rank % 3 + 1), seed)
    for algo in ALLGATHER_ALGOS:
        out[("allgather", algo)] = comm.allgather(mine, algorithm=algo)

    value = [rank + 1, rank * seed, -rank]
    for algo in REDUCE_ALGOS:
        out[("reduce", "sum", algo)] = comm.reduce(value, SUM, root, algorithm=algo)
        out[("reduce", "concat", algo)] = comm.reduce(
            f"r{rank}.", CONCAT, root, algorithm=algo
        )

    for algo in ALLREDUCE_ALGOS:
        out[("allreduce", "sum", algo)] = comm.allreduce(value, SUM, algorithm=algo)
        out[("allreduce", "concat", algo)] = comm.allreduce(
            f"r{rank}.", CONCAT, algorithm=algo
        )
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", WORLD_SIZES)
@pytest.mark.parametrize("seed", SEEDS)
def test_object_algorithms_match_linear_reference(backend, size, seed):
    results = _launch(backend, _object_body, size, seed)
    root = seed % size

    expected_bcasts = {
        "dict": {"seed": seed, "rows": list(range(11))},
        "empty": [],
        "odd": bytes(range(7)) * (seed + 1) + b"!",
    }
    expected_sum = [sum(r + 1 for r in range(size)),
                    sum(r * seed for r in range(size)),
                    sum(-r for r in range(size))]
    expected_concat = "".join(f"r{r}." for r in range(size))
    expected_gather = [(r, f"r{r}" * (r % 3 + 1), seed) for r in range(size)]

    for rank, out in enumerate(results):
        for shape, payload in expected_bcasts.items():
            for algo in BCAST_ALGOS:
                assert out[("bcast", shape, algo)] == payload, (rank, shape, algo)
        for algo in ALLGATHER_ALGOS:
            assert out[("allgather", algo)] == expected_gather, (rank, algo)
        for algo in REDUCE_ALGOS:
            want_sum = expected_sum if rank == root else None
            want_cat = expected_concat if rank == root else None
            assert out[("reduce", "sum", algo)] == want_sum, (rank, algo)
            assert out[("reduce", "concat", algo)] == want_cat, (rank, algo)
        for algo in ALLREDUCE_ALGOS:
            assert out[("allreduce", "sum", algo)] == expected_sum, (rank, algo)
            assert out[("allreduce", "concat", algo)] == expected_concat, (
                rank, algo,
            )


@pytest.mark.skipif(not fork_available(), reason="needs both backends")
@pytest.mark.parametrize("size", (2, 5))
def test_backends_bit_identical(size):
    """Threads and forked processes produce byte-for-byte the same results."""
    threads = _launch("threads", _object_body, size, 0)
    procs = _launch("procs", _object_body, size, 0)
    assert threads == procs
    # Same value *and* same wire type: every payload is an exact dtype
    # (int/str/bytes), so equality here is bit-identity, not tolerance.
    flat_t = [(k, type(v).__name__) for out in threads for k, v in sorted(out.items())]
    flat_p = [(k, type(v).__name__) for out in procs for k, v in sorted(out.items())]
    assert flat_t == flat_p


# ---------------------------------------------------------------------------
# Buffer-mode differential (exact dtypes: int64 sums, float64 max)
# ---------------------------------------------------------------------------

def _buffer_body(comm, seed):
    rank, size = comm.Get_rank(), comm.Get_size()
    rng = np.random.default_rng(1000 * seed + rank)
    out = {}

    for count in (1, 37):  # odd lengths exercise uneven ring chunking
        src = np.arange(count, dtype=np.int64) * (seed + 3) + 7
        for algo in BCAST_ALGOS:
            buf = src.copy() if rank == 0 else np.zeros(count, dtype=np.int64)
            comm.Bcast(buf, 0, algorithm=algo)
            out[("Bcast", count, algo)] = buf

    local = rng.integers(-999, 999, size=33).astype(np.int64)
    out["local"] = local.copy()
    for algo in ALLGATHER_ALGOS:
        gathered = np.zeros(33 * size, dtype=np.int64)
        comm.Allgather(local, gathered, algorithm=algo)
        out[("Allgather", algo)] = gathered

    for algo in REDUCE_ALGOS:
        total = np.zeros(33, dtype=np.int64)
        comm.Reduce(local, total, SUM, 0, algorithm=algo)
        out[("Reduce", algo)] = total

    fmax = rng.random(33)
    out["fmax"] = fmax.copy()
    for algo in ALLREDUCE_ALGOS:
        total = np.zeros(33, dtype=np.int64)
        comm.Allreduce(local, total, SUM, algorithm=algo)
        out[("Allreduce", "sum", algo)] = total
        peak = np.zeros(33)
        comm.Allreduce(fmax, peak, MAX, algorithm=algo)
        out[("Allreduce", "max", algo)] = peak
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", WORLD_SIZES)
def test_buffer_algorithms_match_linear_reference(backend, size):
    seed = 1
    results = _launch(backend, _buffer_body, size, seed)
    locals_ = [out["local"] for out in results]
    expected_sum = np.sum(locals_, axis=0)
    expected_gather = np.concatenate(locals_)
    expected_max = np.max([out["fmax"] for out in results], axis=0)

    for rank, out in enumerate(results):
        for count in (1, 37):
            src = np.arange(count, dtype=np.int64) * (seed + 3) + 7
            for algo in BCAST_ALGOS:
                assert np.array_equal(out[("Bcast", count, algo)], src), (
                    rank, count, algo,
                )
        for algo in ALLGATHER_ALGOS:
            assert np.array_equal(out[("Allgather", algo)], expected_gather)
        for algo in REDUCE_ALGOS:
            if rank == 0:
                assert np.array_equal(out[("Reduce", algo)], expected_sum)
        for algo in ALLREDUCE_ALGOS:
            assert np.array_equal(out[("Allreduce", "sum", algo)], expected_sum)
            assert np.array_equal(out[("Allreduce", "max", algo)], expected_max)


# ---------------------------------------------------------------------------
# Topology-aware communicator variants
# ---------------------------------------------------------------------------

def _variant_body(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    out = {}
    for name in COMMUNICATOR_NAMES:
        kwargs = {"ranks_per_node": 2} if name == "hierarchical" else {}
        view = create_communicator(name, comm, **kwargs)
        assert view.Get_size() == size  # delegation works
        out[(name, "sum")] = view.allreduce([rank + 1, -rank], SUM)
        out[(name, "concat")] = view.allreduce(f"r{rank}.", CONCAT)
        buf = np.arange(9, dtype=np.int64) + rank
        total = np.zeros(9, dtype=np.int64)
        view.Allreduce(buf, total)
        out[(name, "buf")] = total
    return out


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("size", WORLD_SIZES)
def test_communicator_variants_agree(backend, size):
    results = _launch(backend, _variant_body, size)
    expected_sum = [sum(r + 1 for r in range(size)), sum(-r for r in range(size))]
    expected_concat = "".join(f"r{r}." for r in range(size))
    expected_buf = np.sum(
        [np.arange(9, dtype=np.int64) + r for r in range(size)], axis=0
    )
    for rank, out in enumerate(results):
        for name in COMMUNICATOR_NAMES:
            assert out[(name, "sum")] == expected_sum, (rank, name)
            assert out[(name, "concat")] == expected_concat, (rank, name)
            assert np.array_equal(out[(name, "buf")], expected_buf), (rank, name)


def test_create_communicator_validation():
    with pytest.raises(TypeError):
        create_communicator("flat")
    with pytest.raises(ValueError, match="unknown communicator variant"):
        create_communicator("torus", object())

    class _FakeComm:
        size = 6

    with pytest.raises(ValueError, match="must divide"):
        create_communicator("two_dimensional", _FakeComm(), rows=4)


# ---------------------------------------------------------------------------
# Selection policy: cost model, env overrides, downgrades
# ---------------------------------------------------------------------------

class TestResolve:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        """Auto-pick assertions need a clean slate: the CI collectives
        matrix exports REPRO_COLL_ALGO globally, and these tests pin the
        cost model, not the override.  Tests that exercise the env path
        re-set it through their own monkeypatch."""
        monkeypatch.delenv("REPRO_COLL_ALGO", raising=False)
        monkeypatch.delenv("REPRO_COLL_PLATFORM", raising=False)

    def test_available_catalogue(self):
        assert set(ALGORITHMS) >= {
            "bcast", "reduce", "allreduce", "allgather", "barrier",
        }
        names = available("allreduce")
        assert "ring" in names and "linear" in names

    def test_resolution_is_registered(self):
        for coll, registry in ALGORITHMS.items():
            picked = resolve(coll, size=4, nbytes=1024)
            assert picked in registry

    def test_small_allreduce_prefers_recursive_doubling(self):
        assert resolve("allreduce", size=4, nbytes=0) == "recursive_doubling"

    def test_large_chunked_allreduce_prefers_ring(self):
        assert resolve("allreduce", size=4, nbytes=1 << 20, chunked=True) == "ring"

    def test_large_bcast_prefers_scatter_allgather(self):
        assert resolve("bcast", size=4, nbytes=64) == "binomial"
        assert resolve("bcast", size=4, nbytes=1 << 20) == "scatter_allgather"

    def test_non_commutative_downgrades_to_fallback(self):
        picked = resolve(
            "allreduce", size=4, commute=False, requested="recursive_doubling"
        )
        assert picked == "linear"
        assert resolve("reduce", size=4, commute=False) == "linear"

    def test_unknown_request_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve("allreduce", size=4, requested="bogus")

    def test_env_bare_name_applies_where_registered(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLL_ALGO", "ring")
        assert resolve("allreduce", size=4) == "ring"
        assert resolve("allgather", size=4) == "ring"
        # 'ring' is not a bcast algorithm: the bare name is ignored there.
        assert resolve("bcast", size=4) in ALGORITHMS["bcast"]

    def test_env_per_collective_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLL_ALGO", "allreduce=linear,bcast=binomial")
        assert resolve("allreduce", size=8, nbytes=1 << 20) == "linear"
        assert resolve("bcast", size=8, nbytes=1 << 20) == "binomial"

    def test_env_per_collective_unknown_is_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLL_ALGO", "allreduce=bogus")
        with pytest.raises(ValueError, match="bogus"):
            resolve("allreduce", size=4)

    def test_keyword_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLL_ALGO", "allreduce=linear")
        assert resolve("allreduce", size=4, requested="ring") == "ring"

    def test_costs_are_finite_and_positive(self):
        for coll, registry in ALGORITHMS.items():
            for algo in registry:
                for size in (2, 3, 8, 64):
                    cost = algorithm_cost(coll, algo, size=size, nbytes=4096)
                    assert 0.0 < cost < float("inf"), (coll, algo, size)

    def test_message_counts(self):
        assert message_count("allreduce", "recursive_doubling", 6) == 12
        assert message_count("barrier", "dissemination", 4) == 8
        assert message_count("allgather", "ring", 4) == 12
        assert message_count("bcast", "binomial", 8) == 7


# ---------------------------------------------------------------------------
# Observability: the chosen algorithm is a visible trace event
# ---------------------------------------------------------------------------

class TestAlgoEvents:
    def _capture(self, body, size):
        events = []

        def observer(event, *args):
            if event == "coll_algo":
                events.append(args)

        mpi_hooks.attach(observer)
        try:
            run(body, size, deadlock_timeout=TIMEOUT)
        finally:
            mpi_hooks.detach(observer)
        return events

    def test_forced_algorithm_is_emitted(self):
        def body(comm):
            comm.allreduce(comm.Get_rank(), SUM, algorithm="ring")

        events = self._capture(body, 3)
        picks = {(coll, algo) for _cid, _rank, coll, algo in events}
        assert picks == {("allreduce", "ring")}
        assert sorted(rank for _c, rank, _n, _a in events) == [0, 1, 2]

    def test_auto_pick_is_emitted(self):
        def body(comm):
            comm.bcast("x" if comm.Get_rank() == 0 else None, 0)

        events = self._capture(body, 4)
        algos = {algo for _c, _r, coll, algo in events if coll == "bcast"}
        assert len(algos) == 1 and algos <= set(ALGORITHMS["bcast"])

    def test_downgrade_is_visible(self):
        """A commutative-only request with a non-commutative op shows the
        fallback in the trace, not the requested name."""
        def body(comm):
            comm.allreduce(
                f"r{comm.Get_rank()}", CONCAT, algorithm="recursive_doubling"
            )

        events = self._capture(body, 2)
        assert {algo for *_rest, algo in events} == {"linear"}

    def test_trace_report_includes_algorithms(self):
        from repro.obs.events import Event
        from repro.obs.profile import build_profile, render_text

        evs = [
            Event(ts=0.0, source="mpi", name="coll_enter", args=(0, 0, "allreduce")),
            Event(ts=0.1, source="mpi", name="coll_algo", args=(0, 0, "allreduce", "ring")),
            Event(ts=0.2, source="mpi", name="coll_exit", args=(0, 0, "allreduce")),
        ]
        profile = build_profile(evs)
        assert profile.coll_algos == {"allreduce": {"ring": 1}}
        assert profile.to_dict()["collective_algorithms"] == {
            "allreduce": {"ring": 1}
        }
        assert "collective algorithms: allreduce=ring" in render_text(profile)


# ---------------------------------------------------------------------------
# Overflow diagnostics name the offending rank and sizes
# ---------------------------------------------------------------------------

class TestOverflowDiagnostics:
    def test_gatherv_overflow_names_rank_and_counts(self):
        def body(comm):
            rank = comm.Get_rank()
            data = np.ones(3 if rank != 1 else 5)  # rank 1 sends too much
            if rank == 0:
                recv = np.zeros(9)
                counts = (3, 3, 3)
                try:
                    comm.Gatherv(data, (recv, counts, (0, 3, 6)), 0)
                except ValueError as exc:
                    return str(exc)
                return "no error"
            comm.Gatherv(data, None, 0)
            return None

        message = _launch("threads", body, 3)[0]
        assert "rank 1" in message and "5" in message and "3" in message

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gather_overflow_names_rank_and_sizes(self, backend):
        def body(comm):
            rank = comm.Get_rank()
            data = np.ones(4 if rank != 2 else 9)  # rank 2 overflows the slot
            recv = np.zeros(12) if rank == 0 else None
            try:
                comm.Gather(data, recv, 0)
            except TruncationError as exc:
                return str(exc)
            return "no error"

        message = _launch(backend, body, 3)[0]
        assert "rank 2" in message and "9" in message and "12" in message


# ---------------------------------------------------------------------------
# Fault injection: every algorithm surfaces crashes and drops
# ---------------------------------------------------------------------------

class TestAlgorithmFaults:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("algo", ALLREDUCE_ALGOS)
    def test_crash_surfaces_per_algorithm(self, backend, algo):
        def body(comm):
            return comm.allreduce([comm.Get_rank()], SUM, algorithm=algo)

        runner = run if backend == "threads" else run_procs
        with fault_injection("crash:rank=1,at=1"):
            with pytest.raises((RankFailedError, DeadlockError)):
                runner(body, 3, deadlock_timeout=4.0)

    @pytest.mark.parametrize("algo", ALLREDUCE_ALGOS)
    def test_drop_deadlocks_per_algorithm(self, algo):
        def body(comm):
            return comm.allreduce([comm.Get_rank()], SUM, algorithm=algo)

        with fault_injection("drop:src=0,dst=1,nth=1"):
            with pytest.raises((DeadlockError, RankFailedError)):
                run(body, 3, deadlock_timeout=4.0)

    @pytest.mark.parametrize("algo", BCAST_ALGOS)
    def test_bcast_crash_surfaces_per_algorithm(self, algo):
        def body(comm):
            data = "payload" if comm.Get_rank() == 0 else None
            return comm.bcast(data, 0, algorithm=algo)

        with fault_injection("crash:rank=1,at=1"):
            with pytest.raises((RankFailedError, DeadlockError)):
                run(body, 3, deadlock_timeout=4.0)


# ---------------------------------------------------------------------------
# Auto-pick quality: never worse than 2x the worst forced algorithm
# ---------------------------------------------------------------------------

def test_auto_pick_never_loses_badly_to_worst():
    count, size, repeats = 4096, 4, 5

    def timed_body(comm, algorithm):
        local = np.arange(count, dtype=np.int64) + comm.Get_rank()
        total = np.zeros(count, dtype=np.int64)
        comm.Allreduce(local, total, SUM)  # warm the transport
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            comm.Allreduce(local, total, SUM, algorithm=algorithm)
            best = min(best, time.perf_counter() - t0)
        return best

    def best_of(algorithm):
        times = run(timed_body, size, algorithm, deadlock_timeout=TIMEOUT)
        return max(times)  # collective finishes when the slowest rank does

    forced = {algo: best_of(algo) for algo in ALLREDUCE_ALGOS}
    auto = best_of(None)
    assert auto <= 2.0 * max(forced.values()), (auto, forced)
