"""Middleware stack: deadlines, envelopes, latency, and backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import Client, CourseApp
from repro.serve.asgi import HTTPError, json_response, run_app, send_response
from repro.serve.middleware import (
    Backpressure,
    Deadline,
    ErrorEnvelope,
    Latency,
    ServeMetrics,
    check_deadline,
)


def ok_app(scope, receive, send):
    send_response(send, json_response({"ok": True}))


class TestCheckDeadline:
    def test_no_deadline_is_fine(self):
        check_deadline({})

    def test_future_deadline_is_fine(self):
        check_deadline({"deadline": time.monotonic() + 60})

    def test_past_deadline_raises_504(self):
        with pytest.raises(HTTPError) as exc:
            check_deadline({"deadline": time.monotonic() - 0.01})
        assert exc.value.status == 504 and exc.value.code == "deadline_exceeded"


class TestErrorEnvelope:
    def test_http_error_becomes_envelope(self):
        def failing(scope, receive, send):
            raise HTTPError(418, "teapot", "short and stout", retry_after=1.5)

        metrics = ServeMetrics()
        r = run_app(ErrorEnvelope(failing, metrics), "GET", "/x")
        doc = r.json()["error"]
        assert r.status == 418 and doc["code"] == "teapot"
        assert r.header("retry-after") == "1.5"

    def test_unexpected_exception_becomes_500(self):
        def crashing(scope, receive, send):
            raise RuntimeError("boom")

        r = run_app(ErrorEnvelope(crashing, ServeMetrics()), "GET", "/x")
        assert r.status == 500
        assert r.json()["error"]["code"] == "internal"
        assert "boom" in r.json()["error"]["message"]

    def test_504_counts_deadline_hits(self):
        def late(scope, receive, send):
            raise HTTPError(504, "deadline_exceeded", "too late")

        metrics = ServeMetrics()
        run_app(ErrorEnvelope(late, metrics), "GET", "/x")
        assert metrics.deadline_hits.count == 1


class TestDeadline:
    def test_stamps_scope(self):
        seen = {}

        def capture(scope, receive, send):
            seen.update(scope)
            send_response(send, json_response({}))

        run_app(Deadline(capture, timeout_s=5.0), "GET", "/x")
        assert seen["deadline"] > time.monotonic()

    def test_late_response_suppressed_into_504(self):
        """Work that finishes after its deadline answers 504, exactly once."""

        def slow(scope, receive, send):
            scope["deadline"] = time.monotonic() - 0.01  # already expired
            send_response(send, json_response({"should": "not escape"}))

        metrics = ServeMetrics()
        stack = ErrorEnvelope(Deadline(slow, timeout_s=10.0), metrics)
        r = run_app(stack, "GET", "/x")
        assert r.status == 504
        assert r.json()["error"]["code"] == "deadline_exceeded"
        assert metrics.deadline_hits.count == 1


class TestLatency:
    def test_observes_route_and_status(self):
        metrics = ServeMetrics()

        def routed(scope, receive, send):
            scope["route"] = "GET /thing"
            send_response(send, json_response({}, status=201))

        run_app(Latency(routed, metrics), "GET", "/thing/7")
        snap = metrics.snapshot()
        assert snap["requests"] == 1
        assert snap["statuses"] == {"201": 1}
        assert snap["routes"]["GET /thing"]["count"] == 1

    def test_observes_even_when_inner_raises(self):
        metrics = ServeMetrics()

        def crashing(scope, receive, send):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_app(Latency(crashing, metrics), "GET", "/x")
        assert metrics.requests.count == 1


class TestBackpressure:
    def test_validation(self):
        with pytest.raises(ValueError):
            Backpressure(ok_app, ServeMetrics(), max_inflight=0)
        with pytest.raises(ValueError):
            Backpressure(ok_app, ServeMetrics(), max_queue=-1)

    def test_pass_through_under_capacity(self):
        bp = Backpressure(ok_app, ServeMetrics(), max_inflight=2, max_queue=2)
        assert run_app(bp, "GET", "/x").status == 200
        assert bp.depths() == (0, 0)

    def test_saturation_sheds_with_503(self):
        """Full inflight + full queue → immediate 503 with Retry-After."""
        metrics = ServeMetrics()
        release = threading.Event()
        entered = threading.Semaphore(0)

        def slow(scope, receive, send):
            entered.release()
            release.wait(5.0)
            send_response(send, json_response({}))

        bp = Backpressure(slow, metrics, max_inflight=1, max_queue=1,
                          retry_after_s=0.25)
        statuses: list[int] = []

        def hit():
            try:
                statuses.append(run_app(bp, "GET", "/x").status)
            except HTTPError as exc:
                assert exc.retry_after == 0.25
                statuses.append(exc.status)

        threads = [threading.Thread(target=hit) for _ in range(4)]
        first = threads[0]
        first.start()
        entered.acquire(timeout=5.0)  # the slow request is definitely inflight
        for t in threads[1:]:
            t.start()
        # 1 running + 1 queued; the remaining 2 must shed quickly.
        deadline = time.monotonic() + 5.0
        while statuses.count(503) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        for t in threads:
            t.join()

        assert sorted(statuses) == [200, 200, 503, 503]
        assert metrics.rejected.count == 2
        assert metrics.queued.count == 1
        assert metrics.peak_inflight == 1 and metrics.peak_queue == 1
        assert bp.depths() == (0, 0)

    def test_queued_request_respects_its_deadline(self):
        """A queued request whose deadline passes is shed, not stuck."""
        metrics = ServeMetrics()
        release = threading.Event()

        def slow(scope, receive, send):
            release.wait(5.0)
            send_response(send, json_response({}))

        bp = Backpressure(slow, metrics, max_inflight=1, max_queue=4)
        blocker = threading.Thread(
            target=lambda: run_app(bp, "GET", "/x"), daemon=True
        )
        blocker.start()
        deadline = time.monotonic() + 5.0
        while bp.depths()[0] < 1 and time.monotonic() < deadline:
            time.sleep(0.005)

        scope_deadline = time.monotonic() + 0.05
        with pytest.raises(HTTPError) as exc:
            bp._admit({"deadline": scope_deadline})
        assert exc.value.status == 503
        release.set()
        blocker.join()


class TestFullStack503:
    def test_saturated_app_returns_503_with_retry_after(self):
        app = CourseApp(metrics_name=None, max_inflight=1, max_queue=0)
        try:
            client = Client(app)
            hold = threading.Event()
            entered = threading.Semaphore(0)
            inner_healthz = app._healthz

            def slow_healthz(request):
                entered.release()
                hold.wait(5.0)
                return inner_healthz(request)

            app._healthz = slow_healthz
            statuses: list[tuple[int, str | None]] = []

            def hit():
                r = client.get("/healthz")
                statuses.append((r.status, r.headers.get("retry-after")))

            threads = [threading.Thread(target=hit) for _ in range(3)]
            threads[0].start()
            entered.acquire(timeout=5.0)
            for t in threads[1:]:
                t.start()
            deadline = time.monotonic() + 5.0
            while sum(s == 503 for s, _ in statuses) < 2 and (
                time.monotonic() < deadline
            ):
                time.sleep(0.01)
            hold.set()
            for t in threads:
                t.join()

            assert sorted(s for s, _ in statuses) == [200, 503, 503]
            shed = [ra for s, ra in statuses if s == 503]
            assert all(ra is not None and float(ra) > 0 for ra in shed)
            doc = client.get("/metricz").json()
            assert doc["backpressure"]["rejected_total"] == 2
        finally:
            app.close()
