"""Persistence: backends, snapshot/replay, and the concurrent-submit hammer."""

from __future__ import annotations

import json
import threading

import pytest

from repro.runestone import build_raspberry_pi_module
from repro.serve.store import (
    JsonlBackend,
    MemoryBackend,
    ProgressStore,
    open_backend,
)


@pytest.fixture(scope="module")
def module():
    return build_raspberry_pi_module()


@pytest.fixture()
def store(module):
    return ProgressStore(module)


class TestBackends:
    def test_memory_round_trip(self):
        backend = MemoryBackend()
        backend.append({"op": "enroll", "learner": "a"})
        backend.append({"op": "enroll", "learner": "b"})
        assert [r["learner"] for r in backend.replay()] == ["a", "b"]
        backend.rewrite([{"op": "enroll", "learner": "c"}])
        assert len(backend) == 1

    def test_jsonl_round_trip(self, tmp_path):
        backend = JsonlBackend(tmp_path / "log.jsonl")
        backend.append({"op": "enroll", "learner": "a"})
        backend.append({"op": "submit", "learner": "a", "answer": [1, 2]})
        records = list(backend.replay())
        assert records[1]["answer"] == [1, 2]

    def test_jsonl_skips_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        backend = JsonlBackend(path)
        backend.append({"op": "enroll", "learner": "a"})
        with path.open("a") as fh:
            fh.write('{"op": "enroll", "lear')  # crash mid-append
        records = list(backend.replay())
        assert len(records) == 1 and backend.skipped_lines == 1

    def test_jsonl_rewrite_is_atomic(self, tmp_path):
        path = tmp_path / "log.jsonl"
        backend = JsonlBackend(path)
        backend.append({"op": "enroll", "learner": "a"})
        backend.rewrite([{"op": "enroll", "learner": "z"}])
        assert not path.with_suffix(".jsonl.tmp").exists()
        assert [r["learner"] for r in backend.replay()] == ["z"]

    def test_jsonl_missing_file_replays_empty(self, tmp_path):
        assert list(JsonlBackend(tmp_path / "none.jsonl").replay()) == []

    def test_open_backend_factory(self, tmp_path):
        assert isinstance(open_backend(None, None, "x"), MemoryBackend)
        assert isinstance(open_backend("memory", None, "x"), MemoryBackend)
        jb = open_backend("jsonl", str(tmp_path), "pi")
        assert isinstance(jb, JsonlBackend) and jb.path.name == "pi.jsonl"
        with pytest.raises(ValueError, match="unknown persistence"):
            open_backend("sqlite", None, "x")


class TestProgressStore:
    def test_enroll_is_idempotent(self, store):
        p1, created1 = store.enroll("alice")
        p2, created2 = store.enroll("alice")
        assert created1 and not created2 and p1 is p2
        assert store.learners() == ["alice"]

    def test_enroll_rejects_bad_names(self, store):
        with pytest.raises(ValueError):
            store.enroll("")
        with pytest.raises(ValueError):
            store.enroll(None)

    def test_submit_requires_enrollment(self, store):
        with pytest.raises(KeyError, match="not enrolled"):
            store.submit("ghost", "sp_mc_1", "A")

    def test_submit_journals_inside_the_lock(self, store):
        store.enroll("alice")
        store.submit("alice", "sp_mc_1", "A")
        ops = [r["op"] for r in store.backend.replay()]
        assert ops == ["enroll", "submit"]

    def test_unjsonable_answer_degrades_to_repr(self, store):
        store.enroll("alice")
        store.submit("alice", "sp_mc_1", object())
        record = list(store.backend.replay())[-1]
        assert "__repr__" in record["answer"]
        # The journal line itself must be serializable.
        json.dumps(record)

    def test_gradebook_report_shape(self, store):
        store.enroll("alice")
        store.submit("alice", "sp_mc_1", "zzz")  # wrong
        report = store.gradebook_report()
        assert report["learners"] == 1
        assert report["records"]["alice"]["attempts"] == 1
        assert report["hardest_questions"][0]["activity_id"] == "sp_mc_1"


class TestSnapshotReplay:
    def test_replay_reproduces_the_gradebook(self, module, tmp_path):
        backend = JsonlBackend(tmp_path / "c.jsonl")
        store = ProgressStore(module, backend)
        store.enroll("alice")
        store.submit("alice", "sp_mc_1", "A")
        store.complete("alice", "1.1")
        original = store.gradebook_report()

        rebuilt = ProgressStore(module, JsonlBackend(tmp_path / "c.jsonl"))
        assert rebuilt.replay() == 3
        assert rebuilt.gradebook_report() == original

    def test_replay_skips_unknown_ids(self, module):
        backend = MemoryBackend()
        backend.append({"op": "enroll", "learner": "a"})
        backend.append({"op": "submit", "learner": "a", "activity_id": "gone_1",
                        "answer": "A"})
        backend.append({"op": "submit", "learner": "ghost", "activity_id": "sp_mc_1",
                        "answer": "A"})
        backend.append({"op": "dance"})
        backend.append({"bad": "record"})
        store = ProgressStore(module, backend)
        assert store.replay() == 1  # just the enroll survives
        assert store.learners() == ["a"]

    def test_snapshot_compacts_and_preserves_state(self, module, tmp_path):
        backend = JsonlBackend(tmp_path / "c.jsonl")
        store = ProgressStore(module, backend)
        store.enroll("alice")
        for _ in range(5):
            store.submit("alice", "sp_mc_1", "zzz")
        before = store.gradebook_report()
        kept = store.snapshot()
        assert kept == 6  # 1 enroll + 5 attempts (attempt history is state)
        rebuilt = ProgressStore(module, JsonlBackend(tmp_path / "c.jsonl"))
        rebuilt.replay()
        assert rebuilt.gradebook_report() == before


class TestConcurrentSubmits:
    """The satellite-1 regression: hammer submit; no attempt may be lost."""

    THREADS = 8
    PER_THREAD = 25

    def test_same_learner_no_lost_attempts(self, store):
        store.enroll("alice")
        barrier = threading.Barrier(self.THREADS)

        def hammer():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                store.submit("alice", "sp_mc_1", "A")

        threads = [threading.Thread(target=hammer) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = self.THREADS * self.PER_THREAD
        progress = store.progress("alice")
        assert len(progress.attempts) == total
        assert len(list(store.backend.replay())) == total + 1  # + enroll

    def test_mixed_learners_and_enrolls(self, store):
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker: int):
            name = f"learner-{worker % 4}"  # deliberate enroll collisions
            barrier.wait()
            store.enroll(name)
            for _ in range(self.PER_THREAD):
                store.submit(name, "sp_mc_1", "A")

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        report = store.gradebook_report()
        assert report["learners"] == 4
        total_attempts = sum(r["attempts"] for r in report["records"].values())
        assert total_attempts == self.THREADS * self.PER_THREAD

    def test_progress_submit_is_thread_safe_directly(self, module):
        """LearnerProgress's own lock holds without the store layer."""
        from repro.runestone.progress import LearnerProgress

        progress = LearnerProgress("solo", module)
        threads = [
            threading.Thread(
                target=lambda: [
                    progress.submit("sp_mc_1", "A") for _ in range(self.PER_THREAD)
                ]
            )
            for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(progress.attempts) == self.THREADS * self.PER_THREAD

    def test_racing_gradebook_enrolls_one_winner(self, module):
        from repro.runestone.progress import Gradebook

        gradebook = Gradebook(module)
        outcomes: list[str] = []
        barrier = threading.Barrier(4)

        def race():
            barrier.wait()
            try:
                gradebook.enroll("dup")
                outcomes.append("won")
            except ValueError:
                outcomes.append("lost")

        threads = [threading.Thread(target=race) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("won") == 1 and len(gradebook.records) == 1
